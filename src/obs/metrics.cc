#include "metrics.hh"

#include <algorithm>
#include <map>
#include <sstream>

#include "util/logging.hh"
#include "util/mutex.hh"
#include "util/thread_annotations.hh"

namespace lag::obs
{

Histogram::Histogram(std::vector<std::int64_t> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1)
{
    lag_assert(!bounds_.empty(), "histogram needs at least one bucket");
    lag_assert(std::is_sorted(bounds_.begin(), bounds_.end()),
               "histogram bounds must be ascending");
}

void
Histogram::record(std::int64_t value)
{
    // First bucket with value <= bound; past the last bound the
    // search lands on the implicit overflow slot.
    const std::size_t i = static_cast<std::size_t>(
        std::lower_bound(bounds_.begin(), bounds_.end(), value) -
        bounds_.begin());
    counts_[i].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
}

std::uint64_t
MetricsSnapshot::counterValue(std::string_view name) const
{
    for (const CounterValue &c : counters) {
        if (c.name == name)
            return c.value;
    }
    return 0;
}

std::int64_t
MetricsSnapshot::gaugeMax(std::string_view name) const
{
    for (const GaugeValue &g : gauges) {
        if (g.name == name)
            return g.max;
    }
    return 0;
}

namespace
{

Mutex &
metricsMutex()
{
    static Mutex mutex{LockRank::Obs, "obs-metrics-registry"};
    return mutex;
}

/** Instrument tables. std::map nodes are address-stable, so the
 * references counter()/gauge()/histogram() hand out survive later
 * insertions; leaked so atexit dumps never race destruction. */
struct Tables
{
    std::map<std::string, Counter, std::less<>> counters;
    std::map<std::string, Gauge, std::less<>> gauges;
    std::map<std::string, Histogram, std::less<>> histograms;
};

Tables &
tables() LAG_REQUIRES(metricsMutex())
{
    static auto *t = new Tables();
    return *t;
}

void
appendJsonKey(std::string &out, const std::string &name)
{
    // Plain names are dotted ASCII, but labeled instruments render
    // as `base{key="value"}` — the quotes (and anything a label
    // value carries) need real escaping.
    out += '"';
    for (const char c : name) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                static const char *digits = "0123456789abcdef";
                out += "\\u00";
                out += digits[(c >> 4) & 0xF];
                out += digits[c & 0xF];
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

/** `base{key="v"}` → {base, `key="v"`}; plain name → {name, ""}. */
struct ParsedName
{
    std::string_view base;
    std::string_view labels; ///< without the braces
};

ParsedName
parseRendered(const std::string &name)
{
    const std::size_t brace = name.find('{');
    if (brace == std::string::npos || name.back() != '}')
        return {name, {}};
    return {std::string_view(name).substr(0, brace),
            std::string_view(name).substr(brace + 1,
                                          name.size() - brace - 2)};
}

/** Prometheus family name: `lag_` + base with non-alnum → '_'. */
std::string
promName(std::string_view base)
{
    std::string out = "lag_";
    for (const char c : base) {
        const bool alnum = (c >= 'a' && c <= 'z') ||
                           (c >= 'A' && c <= 'Z') ||
                           (c >= '0' && c <= '9');
        out += alnum ? c : '_';
    }
    return out;
}

void
appendPromHeader(std::string &out, const std::string &family,
                 std::string_view base, const char *type)
{
    out += "# HELP ";
    out += family;
    out += ' ';
    out += base; // dotted registry name doubles as the help text
    out += "\n# TYPE ";
    out += family;
    out += ' ';
    out += type;
    out += '\n';
}

void
appendPromSample(std::string &out, const std::string &family,
                 std::string_view labels, std::string_view extra,
                 const std::string &value)
{
    out += family;
    if (!labels.empty() || !extra.empty()) {
        out += '{';
        out += labels;
        if (!labels.empty() && !extra.empty())
            out += ',';
        out += extra;
        out += '}';
    }
    out += ' ';
    out += value;
    out += '\n';
}

} // namespace

Counter &
MetricsRegistry::counter(std::string_view name)
{
    MutexLock lock(metricsMutex());
    auto it = tables().counters.find(name);
    if (it == tables().counters.end()) {
        it = tables()
                 .counters
                 .emplace(std::piecewise_construct,
                          std::forward_as_tuple(name),
                          std::forward_as_tuple())
                 .first;
    }
    return it->second;
}

Gauge &
MetricsRegistry::gauge(std::string_view name)
{
    MutexLock lock(metricsMutex());
    auto it = tables().gauges.find(name);
    if (it == tables().gauges.end()) {
        it = tables()
                 .gauges
                 .emplace(std::piecewise_construct,
                          std::forward_as_tuple(name),
                          std::forward_as_tuple())
                 .first;
    }
    return it->second;
}

Histogram &
MetricsRegistry::histogram(std::string_view name,
                           std::vector<std::int64_t> bounds)
{
    MutexLock lock(metricsMutex());
    auto it = tables().histograms.find(name);
    if (it == tables().histograms.end()) {
        it = tables()
                 .histograms
                 .emplace(std::piecewise_construct,
                          std::forward_as_tuple(name),
                          std::forward_as_tuple(std::move(bounds)))
                 .first;
    } else {
        lag_assert(it->second.bounds() == bounds,
                   "histogram '", it->first,
                   "' re-registered with different bounds");
    }
    return it->second;
}

Counter &
MetricsRegistry::counter(std::string_view base,
                         std::string_view key,
                         std::string_view value)
{
    return counter(labeledMetricName(base, key, value));
}

Gauge &
MetricsRegistry::gauge(std::string_view base, std::string_view key,
                       std::string_view value)
{
    return gauge(labeledMetricName(base, key, value));
}

Histogram &
MetricsRegistry::histogram(std::string_view base,
                           std::vector<std::int64_t> bounds,
                           std::string_view key,
                           std::string_view value)
{
    return histogram(labeledMetricName(base, key, value),
                     std::move(bounds));
}

std::string
promLabelEscape(std::string_view value)
{
    std::string out;
    out.reserve(value.size());
    for (const char c : value) {
        switch (c) {
        case '\\':
            out += "\\\\";
            break;
        case '"':
            out += "\\\"";
            break;
        case '\n':
            out += "\\n";
            break;
        default:
            out += c;
        }
    }
    return out;
}

std::string
labeledMetricName(std::string_view base, std::string_view key,
                  std::string_view value)
{
    std::string out;
    out.reserve(base.size() + key.size() + value.size() + 5);
    out += base;
    out += '{';
    out += key;
    out += "=\"";
    out += promLabelEscape(value);
    out += "\"}";
    return out;
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    MetricsSnapshot snap;
    MutexLock lock(metricsMutex());
    // std::map iteration is already name-sorted.
    for (const auto &[name, c] : tables().counters)
        snap.counters.push_back({name, c.value()});
    for (const auto &[name, g] : tables().gauges)
        snap.gauges.push_back({name, g.value(), g.max()});
    for (const auto &[name, h] : tables().histograms) {
        MetricsSnapshot::HistogramValue hv;
        hv.name = name;
        hv.bounds = h.bounds();
        hv.counts.reserve(hv.bounds.size() + 1);
        for (std::size_t i = 0; i <= hv.bounds.size(); ++i)
            hv.counts.push_back(h.bucketCount(i));
        hv.count = h.count();
        hv.sum = h.sum();
        snap.histograms.push_back(std::move(hv));
    }
    return snap;
}

std::string
MetricsRegistry::dumpText() const
{
    const MetricsSnapshot snap = snapshot();
    std::ostringstream os;
    for (const auto &c : snap.counters)
        os << c.name << " counter " << c.value << '\n';
    for (const auto &g : snap.gauges)
        os << g.name << " gauge " << g.value << " max " << g.max
           << '\n';
    for (const auto &h : snap.histograms) {
        os << h.name << " histogram count " << h.count << " sum "
           << h.sum;
        for (std::size_t i = 0; i < h.bounds.size(); ++i)
            os << " le" << h.bounds[i] << '=' << h.counts[i];
        os << " overflow=" << h.counts.back() << '\n';
    }
    return os.str();
}

std::string
MetricsRegistry::dumpJson() const
{
    const MetricsSnapshot snap = snapshot();
    std::string out;
    out += "{\n  \"counters\": {";
    bool first = true;
    for (const auto &c : snap.counters) {
        out += first ? "\n    " : ",\n    ";
        first = false;
        appendJsonKey(out, c.name);
        out += ": ";
        out += std::to_string(c.value);
    }
    out += "\n  },\n  \"gauges\": {";
    first = true;
    for (const auto &g : snap.gauges) {
        out += first ? "\n    " : ",\n    ";
        first = false;
        appendJsonKey(out, g.name);
        out += ": {\"value\": ";
        out += std::to_string(g.value);
        out += ", \"max\": ";
        out += std::to_string(g.max);
        out += '}';
    }
    out += "\n  },\n  \"histograms\": {";
    first = true;
    for (const auto &h : snap.histograms) {
        out += first ? "\n    " : ",\n    ";
        first = false;
        appendJsonKey(out, h.name);
        out += ": {\"bounds\": [";
        for (std::size_t i = 0; i < h.bounds.size(); ++i) {
            if (i > 0)
                out += ", ";
            out += std::to_string(h.bounds[i]);
        }
        out += "], \"counts\": [";
        for (std::size_t i = 0; i < h.counts.size(); ++i) {
            if (i > 0)
                out += ", ";
            out += std::to_string(h.counts[i]);
        }
        out += "], \"count\": ";
        out += std::to_string(h.count);
        out += ", \"sum\": ";
        out += std::to_string(h.sum);
        out += '}';
    }
    out += "\n  }\n}\n";
    return out;
}

std::string
MetricsRegistry::dumpProm() const
{
    const MetricsSnapshot snap = snapshot();
    std::string out;

    // Group instruments by base so each prom family gets exactly
    // one HELP/TYPE header even when labeled variants exist. A
    // sorted walk is not enough: '{' sorts above alphanumerics, so
    // `a.b{…}` rows can interleave with an unrelated `a.bz` name.
    std::map<std::string,
             std::vector<const MetricsSnapshot::CounterValue *>>
        counter_groups;
    for (const auto &c : snap.counters)
        counter_groups[std::string(parseRendered(c.name).base)]
            .push_back(&c);
    for (const auto &[base, group] : counter_groups) {
        const std::string family = promName(base) + "_total";
        appendPromHeader(out, family, base, "counter");
        for (const auto *c : group) {
            appendPromSample(out, family,
                             parseRendered(c->name).labels, {},
                             std::to_string(c->value));
        }
    }

    std::map<std::string,
             std::vector<const MetricsSnapshot::GaugeValue *>>
        gauge_groups;
    for (const auto &g : snap.gauges)
        gauge_groups[std::string(parseRendered(g.name).base)]
            .push_back(&g);
    for (const auto &[base, group] : gauge_groups) {
        const std::string family = promName(base);
        appendPromHeader(out, family, base, "gauge");
        for (const auto *g : group) {
            appendPromSample(out, family,
                             parseRendered(g->name).labels, {},
                             std::to_string(g->value));
        }
        const std::string max_family = family + "_max";
        appendPromHeader(out, max_family, base, "gauge");
        for (const auto *g : group) {
            appendPromSample(out, max_family,
                             parseRendered(g->name).labels, {},
                             std::to_string(g->max));
        }
    }

    std::map<std::string,
             std::vector<const MetricsSnapshot::HistogramValue *>>
        histogram_groups;
    for (const auto &h : snap.histograms)
        histogram_groups[std::string(parseRendered(h.name).base)]
            .push_back(&h);
    for (const auto &[base, group] : histogram_groups) {
        const std::string family = promName(base);
        appendPromHeader(out, family, base, "histogram");
        for (const auto *h : group) {
            const std::string_view labels =
                parseRendered(h->name).labels;
            std::uint64_t cumulative = 0;
            for (std::size_t i = 0; i < h->bounds.size(); ++i) {
                cumulative += h->counts[i];
                appendPromSample(
                    out, family + "_bucket", labels,
                    "le=\"" + std::to_string(h->bounds[i]) + "\"",
                    std::to_string(cumulative));
            }
            // +Inf folds in the overflow bucket and must equal
            // _count — scrapers reject a histogram where it
            // doesn't.
            appendPromSample(out, family + "_bucket", labels,
                             "le=\"+Inf\"",
                             std::to_string(h->count));
            appendPromSample(out, family + "_sum", labels, {},
                             std::to_string(h->sum));
            appendPromSample(out, family + "_count", labels, {},
                             std::to_string(h->count));
        }
    }
    return out;
}

std::string
MetricsRegistry::summaryLine() const
{
    const MetricsSnapshot snap = snapshot();
    std::ostringstream os;
    os << "metrics:";
    bool any = false;
    for (const auto &c : snap.counters) {
        if (c.value == 0)
            continue;
        os << ' ' << c.name << '=' << c.value;
        any = true;
    }
    for (const auto &g : snap.gauges) {
        if (g.max == 0)
            continue;
        os << ' ' << g.name << ".max=" << g.max;
        any = true;
    }
    if (!any)
        os << " (all zero)";
    return os.str();
}

MetricsRegistry &
metrics()
{
    static auto *registry = new MetricsRegistry();
    return *registry;
}

} // namespace lag::obs
