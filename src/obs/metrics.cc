#include "metrics.hh"

#include <algorithm>
#include <map>
#include <sstream>

#include "util/logging.hh"
#include "util/mutex.hh"
#include "util/thread_annotations.hh"

namespace lag::obs
{

Histogram::Histogram(std::vector<std::int64_t> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1)
{
    lag_assert(!bounds_.empty(), "histogram needs at least one bucket");
    lag_assert(std::is_sorted(bounds_.begin(), bounds_.end()),
               "histogram bounds must be ascending");
}

void
Histogram::record(std::int64_t value)
{
    // First bucket with value <= bound; past the last bound the
    // search lands on the implicit overflow slot.
    const std::size_t i = static_cast<std::size_t>(
        std::lower_bound(bounds_.begin(), bounds_.end(), value) -
        bounds_.begin());
    counts_[i].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
}

std::uint64_t
MetricsSnapshot::counterValue(std::string_view name) const
{
    for (const CounterValue &c : counters) {
        if (c.name == name)
            return c.value;
    }
    return 0;
}

std::int64_t
MetricsSnapshot::gaugeMax(std::string_view name) const
{
    for (const GaugeValue &g : gauges) {
        if (g.name == name)
            return g.max;
    }
    return 0;
}

namespace
{

Mutex &
metricsMutex()
{
    static Mutex mutex{LockRank::Obs, "obs-metrics-registry"};
    return mutex;
}

/** Instrument tables. std::map nodes are address-stable, so the
 * references counter()/gauge()/histogram() hand out survive later
 * insertions; leaked so atexit dumps never race destruction. */
struct Tables
{
    std::map<std::string, Counter, std::less<>> counters;
    std::map<std::string, Gauge, std::less<>> gauges;
    std::map<std::string, Histogram, std::less<>> histograms;
};

Tables &
tables() LAG_REQUIRES(metricsMutex())
{
    static auto *t = new Tables();
    return *t;
}

void
appendJsonKey(std::string &out, const std::string &name)
{
    // Metric names are dotted ASCII identifiers by convention; no
    // escaping beyond quoting is needed.
    out += '"';
    out += name;
    out += '"';
}

} // namespace

Counter &
MetricsRegistry::counter(std::string_view name)
{
    MutexLock lock(metricsMutex());
    auto it = tables().counters.find(name);
    if (it == tables().counters.end()) {
        it = tables()
                 .counters
                 .emplace(std::piecewise_construct,
                          std::forward_as_tuple(name),
                          std::forward_as_tuple())
                 .first;
    }
    return it->second;
}

Gauge &
MetricsRegistry::gauge(std::string_view name)
{
    MutexLock lock(metricsMutex());
    auto it = tables().gauges.find(name);
    if (it == tables().gauges.end()) {
        it = tables()
                 .gauges
                 .emplace(std::piecewise_construct,
                          std::forward_as_tuple(name),
                          std::forward_as_tuple())
                 .first;
    }
    return it->second;
}

Histogram &
MetricsRegistry::histogram(std::string_view name,
                           std::vector<std::int64_t> bounds)
{
    MutexLock lock(metricsMutex());
    auto it = tables().histograms.find(name);
    if (it == tables().histograms.end()) {
        it = tables()
                 .histograms
                 .emplace(std::piecewise_construct,
                          std::forward_as_tuple(name),
                          std::forward_as_tuple(std::move(bounds)))
                 .first;
    } else {
        lag_assert(it->second.bounds() == bounds,
                   "histogram '", it->first,
                   "' re-registered with different bounds");
    }
    return it->second;
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    MetricsSnapshot snap;
    MutexLock lock(metricsMutex());
    // std::map iteration is already name-sorted.
    for (const auto &[name, c] : tables().counters)
        snap.counters.push_back({name, c.value()});
    for (const auto &[name, g] : tables().gauges)
        snap.gauges.push_back({name, g.value(), g.max()});
    for (const auto &[name, h] : tables().histograms) {
        MetricsSnapshot::HistogramValue hv;
        hv.name = name;
        hv.bounds = h.bounds();
        hv.counts.reserve(hv.bounds.size() + 1);
        for (std::size_t i = 0; i <= hv.bounds.size(); ++i)
            hv.counts.push_back(h.bucketCount(i));
        hv.count = h.count();
        hv.sum = h.sum();
        snap.histograms.push_back(std::move(hv));
    }
    return snap;
}

std::string
MetricsRegistry::dumpText() const
{
    const MetricsSnapshot snap = snapshot();
    std::ostringstream os;
    for (const auto &c : snap.counters)
        os << c.name << " counter " << c.value << '\n';
    for (const auto &g : snap.gauges)
        os << g.name << " gauge " << g.value << " max " << g.max
           << '\n';
    for (const auto &h : snap.histograms) {
        os << h.name << " histogram count " << h.count << " sum "
           << h.sum;
        for (std::size_t i = 0; i < h.bounds.size(); ++i)
            os << " le" << h.bounds[i] << '=' << h.counts[i];
        os << " overflow=" << h.counts.back() << '\n';
    }
    return os.str();
}

std::string
MetricsRegistry::dumpJson() const
{
    const MetricsSnapshot snap = snapshot();
    std::string out;
    out += "{\n  \"counters\": {";
    bool first = true;
    for (const auto &c : snap.counters) {
        out += first ? "\n    " : ",\n    ";
        first = false;
        appendJsonKey(out, c.name);
        out += ": ";
        out += std::to_string(c.value);
    }
    out += "\n  },\n  \"gauges\": {";
    first = true;
    for (const auto &g : snap.gauges) {
        out += first ? "\n    " : ",\n    ";
        first = false;
        appendJsonKey(out, g.name);
        out += ": {\"value\": ";
        out += std::to_string(g.value);
        out += ", \"max\": ";
        out += std::to_string(g.max);
        out += '}';
    }
    out += "\n  },\n  \"histograms\": {";
    first = true;
    for (const auto &h : snap.histograms) {
        out += first ? "\n    " : ",\n    ";
        first = false;
        appendJsonKey(out, h.name);
        out += ": {\"bounds\": [";
        for (std::size_t i = 0; i < h.bounds.size(); ++i) {
            if (i > 0)
                out += ", ";
            out += std::to_string(h.bounds[i]);
        }
        out += "], \"counts\": [";
        for (std::size_t i = 0; i < h.counts.size(); ++i) {
            if (i > 0)
                out += ", ";
            out += std::to_string(h.counts[i]);
        }
        out += "], \"count\": ";
        out += std::to_string(h.count);
        out += ", \"sum\": ";
        out += std::to_string(h.sum);
        out += '}';
    }
    out += "\n  }\n}\n";
    return out;
}

std::string
MetricsRegistry::summaryLine() const
{
    const MetricsSnapshot snap = snapshot();
    std::ostringstream os;
    os << "metrics:";
    bool any = false;
    for (const auto &c : snap.counters) {
        if (c.value == 0)
            continue;
        os << ' ' << c.name << '=' << c.value;
        any = true;
    }
    for (const auto &g : snap.gauges) {
        if (g.max == 0)
            continue;
        os << ' ' << g.name << ".max=" << g.max;
        any = true;
    }
    if (!any)
        os << " (all zero)";
    return os.str();
}

MetricsRegistry &
metrics()
{
    static auto *registry = new MetricsRegistry();
    return *registry;
}

} // namespace lag::obs
