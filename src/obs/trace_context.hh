/**
 * @file
 * Request-scoped trace identity, propagated across threads.
 *
 * A TraceContext is a 128-bit id minted once per external request
 * (lagd mints one per accepted connection). It lives in a
 * thread-local slot: `currentTraceContext()` reads the calling
 * thread's context, `TraceContextScope` installs one for a lexical
 * region and restores the previous on exit. The engine's
 * ThreadPool::submit captures the submitting thread's context and
 * re-installs it inside the worker running the task, so a context
 * set at the serve layer flows through every pool hop — TaskGraph
 * dependents and parallelFor splits are submitted from inside
 * context-scoped worker tasks and inherit it transitively.
 *
 * Every span recorded while a context is active is stamped with it
 * (see SpanEvent::traceHi/traceLo), which is what lets the
 * Chrome-trace export and the flight recorder attribute engine work
 * (shard mine, cache load, merges) to the request that caused it.
 *
 * Ids are minted from a process-local counter mixed through
 * splitmix64 — unique within the process, stable across runs of the
 * same request sequence, and cheap (no OS entropy on the accept
 * path). The zero id means "no context" and is never minted.
 */

#ifndef LAG_OBS_TRACE_CONTEXT_HH
#define LAG_OBS_TRACE_CONTEXT_HH

#include <cstdint>
#include <string>
#include <string_view>

namespace lag::obs
{

/** A 128-bit request identity; {0,0} means "no context". */
struct TraceContext
{
    std::uint64_t hi = 0;
    std::uint64_t lo = 0;

    bool active() const { return (hi | lo) != 0; }

    bool operator==(const TraceContext &other) const
    {
        return hi == other.hi && lo == other.lo;
    }
    bool operator!=(const TraceContext &other) const
    {
        return !(*this == other);
    }
};

/** The calling thread's context; inactive when none installed. */
TraceContext currentTraceContext();

/** Mint a fresh, never-zero id (counter + epoch, splitmix64). */
TraceContext mintTraceContext();

/** 32 lowercase hex chars (hi then lo, zero-padded). */
std::string traceIdHex(const TraceContext &ctx);

/** Parse traceIdHex output; false on anything else. */
bool parseTraceIdHex(std::string_view hex, TraceContext &out);

/** Install @p ctx for this scope; restores the previous on exit. */
class TraceContextScope
{
  public:
    explicit TraceContextScope(const TraceContext &ctx);
    ~TraceContextScope();

    TraceContextScope(const TraceContextScope &) = delete;
    TraceContextScope &operator=(const TraceContextScope &) = delete;

  private:
    TraceContext previous_;
};

} // namespace lag::obs

#endif // LAG_OBS_TRACE_CONTEXT_HH
