/**
 * @file
 * Process watchdog: a sampling thread feeding process-level gauges.
 *
 * Counters and histograms record what the code does; nobody records
 * what the *process* looks like while doing it. The watchdog fills
 * that gap for lagd: every period it samples
 *
 *  - `process.rss_bytes`   resident set size (/proc/self/statm),
 *  - `process.open_fds`    open descriptor count (/proc/self/fd),
 *  - `process.uptime_ms`   processElapsedNs() in milliseconds,
 *
 * so a Prometheus scrape of /metricsz?format=prom shows memory and
 * fd leaks without any external exporter. It also watches the
 * engine pool: when `pool.queue.depth` stays positive while
 * `pool.task.count` makes no progress for `stallSamples`
 * consecutive samples, it logs a warning, bumps
 * `watchdog.pool.stalled`, and drops a flight-recorder event — the
 * signature of a deadlocked or wedged worker set.
 *
 * The thread holds no lock while sampling (the metrics registry
 * takes its own LockRank::Obs lock internally); stop() joins it.
 * sampleOnce() is public so tests can drive the logic without
 * timing dependence.
 */

#ifndef LAG_OBS_WATCHDOG_HH
#define LAG_OBS_WATCHDOG_HH

#include <atomic>
#include <cstdint>
#include <thread>

namespace lag::obs
{

struct WatchdogOptions
{
    int periodMs = 1000;
    /** Consecutive no-progress samples (with queued work) before a
     * stall is reported. */
    int stallSamples = 5;
};

class Watchdog
{
  public:
    explicit Watchdog(WatchdogOptions options = {});
    ~Watchdog();

    Watchdog(const Watchdog &) = delete;
    Watchdog &operator=(const Watchdog &) = delete;

    /** Launch the sampling thread (no-op when already running). */
    void start();

    /** Stop and join the sampling thread (idempotent). */
    void stop();

    /** Take one sample now; called by the thread every period and
     * by tests directly. Returns true when this sample tripped the
     * stall detector. */
    bool sampleOnce();

  private:
    void threadMain();

    WatchdogOptions options_;
    std::atomic<bool> stop_{false};
    std::thread thread_;
    bool running_ = false;

    std::uint64_t lastTaskCount_ = 0;
    bool havePrevSample_ = false;
    int stallStreak_ = 0;
};

} // namespace lag::obs

#endif // LAG_OBS_WATCHDOG_HH
