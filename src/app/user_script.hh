/**
 * @file
 * The scripted "user" driving an interactive session.
 *
 * The paper's sessions were performed manually ("we planned the
 * sessions to cover a reasonable and realistic usage scenario");
 * here a UserScript replays a stochastic but seeded plan: think
 * time, then an interaction burst (typing, a click/command, or a
 * mouse drag), repeated until the session ends. Clicks may be
 * followed by posted repaints; a background repaint source models
 * window-system damage. Four sessions of one app are four seeds of
 * the same script.
 */

#ifndef LAG_APP_USER_SCRIPT_HH
#define LAG_APP_USER_SCRIPT_HH

#include <cstdint>

#include "handlers.hh"
#include "jvm/vm.hh"
#include "params.hh"
#include "util/random.hh"

namespace lag::app
{

/** Generates the user-input event stream for one session. */
class UserScript
{
  public:
    UserScript(jvm::Jvm &vm, const AppParams &params,
               HandlerFactory &factory, std::uint64_t seed);

    /** Schedule the first action; the script then self-perpetuates
     * on the VM's event queue until the session horizon. */
    void start();

    /** Input events posted so far (diagnostics). */
    std::uint64_t eventsPosted() const { return events_posted_; }

  private:
    void scheduleNextAction(DurationNs delay);
    void performAction();
    void continueTyping(int remaining);
    void continueDrag(int remaining);
    void scheduleSystemRepaint();

    jvm::Jvm &vm_;
    const AppParams &params_;
    HandlerFactory &factory_;
    Rng rng_;
    std::uint64_t events_posted_ = 0;
    std::uint64_t drag_events_ = 0;
};

} // namespace lag::app

#endif // LAG_APP_USER_SCRIPT_HH
