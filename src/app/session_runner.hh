/**
 * @file
 * Runs one interactive session: app model + simulated JVM + LiLa.
 *
 * This is the "measurement side" of the reproduction: what the
 * paper's authors did by sitting in front of each application for
 * ~8 minutes with the LiLa profiler attached. The output is a
 * trace::Trace ready for LagAlyzer.
 */

#ifndef LAG_APP_SESSION_RUNNER_HH
#define LAG_APP_SESSION_RUNNER_HH

#include <cstdint>

#include "jvm/vm.hh"
#include "params.hh"
#include "trace/trace.hh"

namespace lag::app
{

/** Measurement-side options (profiler and platform). */
struct SessionOptions
{
    /** LiLa's episode/interval filter (paper: 3 ms). */
    DurationNs filterThreshold = msToNs(3);

    /** Stack-sampling period. */
    DurationNs samplePeriod = msToNs(10);

    /** CPU cores (paper platform: Core 2 Duo). */
    int cores = 2;

    /** Profiler perturbation: CPU charged per instrumented call
     * (0 = the unperturbed baseline all calibration assumes). */
    DurationNs instrumentationOverhead = 0;
};

/** Everything a session run produces. */
struct SessionRunResult
{
    trace::Trace trace;
    jvm::JvmStats vmStats;
    std::uint64_t userEvents = 0;
};

/** Derive the seed of (app, session). */
std::uint64_t sessionSeed(const AppParams &params,
                          std::uint32_t session_index);

/** Simulate one session of @p params and return its trace. */
SessionRunResult runSession(const AppParams &params,
                            std::uint32_t session_index,
                            const SessionOptions &options = {});

} // namespace lag::app

#endif // LAG_APP_SESSION_RUNNER_HH
