/**
 * @file
 * Handler factory: builds the activity trees an application runs.
 *
 * Traced episode variety is driven by a pool of episode *templates*
 * grown by a Chinese-restaurant process: each traced interaction
 * either reuses an existing template (with probability proportional
 * to its popularity) or mints a new one (with probability
 * concentration / (n + concentration)). This produces the power-law
 * pattern popularity behind the paper's Figure 3 ("roughly 80% of
 * episodes are covered by only 20% of the patterns") without
 * hand-tuning a popularity table.
 *
 * Templates fix the interval *structure* (which is what LagAlyzer's
 * pattern mining keys on); instantiation re-draws every node cost
 * with multiplicative jitter, so episodes of one pattern vary in
 * duration — some perceptible, some not — exactly the behaviour the
 * always/sometimes/once/never analysis (§IV.B) classifies.
 */

#ifndef LAG_APP_HANDLERS_HH
#define LAG_APP_HANDLERS_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "jvm/activity.hh"
#include "params.hh"
#include "util/random.hh"

namespace lag::app
{

/** Draw a duration from a cost model. */
DurationNs drawCost(Rng &rng, const CostModel &cost);

/** Factory for one application's handler trees. */
class HandlerFactory
{
  public:
    /**
     * @param params        the application model
     * @param session_seed  drives per-session decisions (which
     *                      template each event uses, cost jitter)
     * @param template_seed drives template *content*; pass the same
     *                      value for every session of one app so the
     *                      k-th minted template is identical across
     *                      sessions — the same handler code exists in
     *                      every run of a real application, which is
     *                      what makes cross-session pattern merging
     *                      (core/aggregate.hh) meaningful.
     */
    HandlerFactory(const AppParams &params, std::uint64_t session_seed,
                   std::uint64_t template_seed);

    /** Keystroke handler (canonical, sub-threshold). */
    jvm::GuiEvent typingEvent();

    /** Mouse-drag handler (canonical, sub-threshold). */
    jvm::GuiEvent dragEvent();

    /** Click / command handler: template-pool draw, may carry paint
     * subtrees, natives and the app's quirks. */
    jvm::GuiEvent clickEvent();

    /** Repaint handler (output episode). @p via_repaint_manager
     * marks the posted-by-background path of the paper's §IV.C
     * footnote (an Async interval wrapping the Paint). */
    jvm::GuiEvent repaintEvent(bool via_repaint_manager);

    /** Handler posted by timer thread @p index. */
    jvm::GuiEvent timerEvent(std::size_t index);

    /** Async model-update handler posted by loader @p index. */
    jvm::GuiEvent loaderEvent(std::size_t index);

    /** Number of templates minted so far (diagnostics). */
    std::size_t templateCount() const;

  private:
    using NodePtr = std::shared_ptr<const jvm::ActivityNode>;

    /** One template pool (clicks, repaints, per-timer, ...).
     * Each pool owns its template-content RNG, seeded from the
     * app-stable template seed plus the pool's name, so the k-th
     * template of a pool is identical across sessions regardless of
     * how minting interleaves between pools. */
    struct Pool
    {
        explicit Pool(std::uint64_t template_seed)
            : templateRng(template_seed)
        {
        }

        Rng templateRng;
        std::vector<NodePtr> templates;
        std::vector<std::uint64_t> uses;
        std::uint64_t totalUses = 0;
        std::vector<bool> firstUsePending;
    };

    /** CRP draw from @p pool with concentration @p alpha, minting
     * with @p make when needed; instances get an episode-level cost
     * multiplier of lognormal spread @p sigma. */
    template <typename MakeFn>
    NodePtr drawFromPool(Pool &pool, double alpha, double sigma,
                         MakeFn &&make);

    /**
     * Deep copy of a template with costs scaled by @p multiplier
     * (one draw per episode — this is what spreads one pattern's
     * durations across the perceptibility threshold) plus small
     * per-node jitter, and with sleep/wait durations re-drawn.
     */
    jvm::ActivityNode instantiate(const jvm::ActivityNode &node,
                                  double multiplier,
                                  bool add_first_use);

    /** Pick a class name with Zipf-like skew using @p rng. */
    const std::string &pickSkewed(Rng &rng,
                                  const std::vector<std::string> &pool);

    /** Frame of a work (Plain) node: library or app code. */
    jvm::Frame workFrame(Rng &rng);

    /** Fresh click-episode template. */
    jvm::ActivityNode makeClickTemplate(Rng &rng);

    /** Fresh repaint template (paint tree from the window root). */
    jvm::ActivityNode makeRepaintTemplate(Rng &rng);

    /** Fresh paint subtree of the given remaining depth. */
    jvm::ActivityNode makePaintSubtree(Rng &rng, int depth);

    /** Fresh native call node. */
    jvm::ActivityNode makeNativeNode(Rng &rng);

    /** Attach allocation volume proportional to node costs. */
    void assignAllocations(jvm::ActivityNode &node,
                           std::uint64_t bytes_per_ms) const;

    const AppParams &params_;
    Rng rng_; ///< per-session decisions

    std::vector<std::string> app_listener_classes_;
    std::vector<std::string> app_paint_classes_;
    std::vector<std::string> app_work_classes_;

    NodePtr typing_template_;
    NodePtr drag_template_;
    Pool click_pool_;
    Pool repaint_pool_;
    std::vector<Pool> timer_pools_;
    std::vector<Pool> loader_pools_;
};

} // namespace lag::app

#endif // LAG_APP_HANDLERS_HH
