#include "background.hh"

#include <algorithm>

#include "jvm/vm.hh"
#include "util/logging.hh"

namespace lag::app
{

using jvm::ActivityKind;
using jvm::ActivityNode;
using jvm::ProgramStep;

TimerProgram::TimerProgram(const AppParams &params,
                           std::size_t timer_index,
                           HandlerFactory &factory, std::uint64_t seed)
    : params_(params), index_(timer_index), factory_(factory), rng_(seed)
{
    lag_assert(timer_index < params.timers.size(), "bad timer index");
}

jvm::ProgramStep
TimerProgram::next(jvm::Jvm &vm, jvm::VThread &)
{
    const TimerSpec &spec = params_.timers[index_];
    const auto start = static_cast<TimeNs>(
        spec.activeFrom * static_cast<double>(params_.sessionLength));
    const auto stop = static_cast<TimeNs>(
        spec.activeTo * static_cast<double>(params_.sessionLength));

    if (vm.now() < start) {
        started_ = false;
        return ProgramStep::sleepFor(start - vm.now());
    }
    if (vm.now() >= stop)
        return ProgramStep::exitThread();
    if (started_)
        vm.postGuiEvent(factory_.timerEvent(index_));
    started_ = true;
    return ProgramStep::sleepFor(spec.period);
}

LoaderProgram::LoaderProgram(const AppParams &params,
                             std::size_t loader_index,
                             HandlerFactory &factory, std::uint64_t seed)
    : params_(params), index_(loader_index), factory_(factory),
      rng_(seed)
{
    lag_assert(loader_index < params.loaders.size(), "bad loader index");
}

jvm::ProgramStep
LoaderProgram::next(jvm::Jvm &vm, jvm::VThread &)
{
    const LoaderSpec &spec = params_.loaders[index_];
    const auto start = static_cast<TimeNs>(
        spec.startAt * static_cast<double>(params_.sessionLength));
    const auto stop = static_cast<TimeNs>(
        spec.endAt * static_cast<double>(params_.sessionLength));

    if (vm.now() < start) {
        started_ = false;
        return ProgramStep::sleepFor(start - vm.now());
    }
    if (vm.now() >= stop)
        return ProgramStep::exitThread();

    if (started_ && spec.postProb > 0.0 && rng_.chance(spec.postProb))
        vm.postGuiEvent(factory_.loaderEvent(index_));
    started_ = true;

    ActivityNode chunk;
    chunk.frame = jvm::Frame{params_.appPackage + ".io.ProjectLoader",
                             "loadNextEntry"};
    chunk.selfCost = std::max<DurationNs>(
        usToNs(100),
        static_cast<DurationNs>(
            static_cast<double>(spec.chunkCost) *
            rng_.uniformReal(0.6, 1.4)));
    if (spec.allocPerMs > 0) {
        chunk.allocBytes =
            spec.allocPerMs *
            static_cast<std::uint64_t>(chunk.selfCost) /
            static_cast<std::uint64_t>(kMillisecond);
    }
    if (spec.restBetweenChunks > 0 && rest_next_) {
        rest_next_ = false;
        return ProgramStep::sleepFor(static_cast<DurationNs>(
            static_cast<double>(spec.restBetweenChunks) *
            rng_.uniformReal(0.5, 1.5)));
    }
    rest_next_ = true;
    return ProgramStep::runActivity(
        std::make_shared<const ActivityNode>(std::move(chunk)));
}

HogProgram::HogProgram(const AppParams &params, std::size_t hog_index,
                       std::uint64_t seed)
    : params_(params), index_(hog_index), rng_(seed)
{
    lag_assert(hog_index < params.hogs.size(), "bad hog index");
}

jvm::ProgramStep
HogProgram::next(jvm::Jvm &, jvm::VThread &)
{
    const HogSpec &spec = params_.hogs[index_];
    if (!hold_next_) {
        hold_next_ = true;
        const auto gap = static_cast<DurationNs>(rng_.exponential(
            static_cast<double>(std::max<DurationNs>(spec.period, 1))));
        return ProgramStep::sleepFor(std::max<DurationNs>(gap, msToNs(1)));
    }
    hold_next_ = false;
    ActivityNode hold;
    hold.frame = jvm::Frame{"java.awt.GraphicsEnvironment",
                            "getDefaultScreenDevice"};
    hold.selfCost = drawCost(rng_, spec.holdCost);
    hold.monitorId = spec.monitorId;
    return ProgramStep::runActivity(
        std::make_shared<const ActivityNode>(std::move(hold)));
}

} // namespace lag::app
