#include "study.hh"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <utility>

#include "catalog.hh"
#include "engine/pool.hh"
#include "engine/study_driver.hh"
#include "trace/io.hh"
#include "util/hash.hh"
#include "util/logging.hh"

namespace lag::app
{

namespace fs = std::filesystem;

StudyConfig
StudyConfig::paperStudy()
{
    StudyConfig config;
    config.apps = defaultCatalog();
    return config;
}

StudyConfig
StudyConfig::quickStudy(int session_seconds)
{
    StudyConfig config;
    config.apps = defaultCatalog();
    for (auto &app : config.apps) {
        const double shrink =
            static_cast<double>(secToNs(session_seconds)) /
            static_cast<double>(app.sessionLength);
        app.sessionLength = secToNs(session_seconds);
        // Keep rates, shrink pattern variety with the session so
        // the CRP still saturates realistically.
        app.patternConcentration =
            std::max(5.0, app.patternConcentration * shrink * 4.0);
        // Long drag bursts would span most of a short session.
        app.dragBurstLen = std::min(app.dragBurstLen, 200.0);
    }
    config.cacheDir = "lagalyzer-cache-quick";
    return config;
}

namespace
{

/** Bumped whenever generator behaviour (not parameters) changes, so
 * stale caches from older binaries are regenerated. */
constexpr int kStudyBehaviorVersion = 5;

} // namespace

std::string
StudyConfig::fingerprint() const
{
    std::ostringstream out;
    out << kStudyBehaviorVersion << '|';
    out << trace::kFormatVersion << '|' << sessionsPerApp << '|'
        << sessionOptions.filterThreshold << '|'
        << sessionOptions.samplePeriod << '|' << sessionOptions.cores
        << '|' << perceptibleThreshold << '|';
    for (const auto &app : apps)
        out << app.fingerprint() << '\n';
    Fnv1aHasher hasher;
    hasher.addString(out.str());
    std::ostringstream hex;
    hex << std::hex << hasher.digest();
    return hex.str();
}

Study::Study(StudyConfig config) : config_(std::move(config))
{
    lag_assert(!config_.apps.empty(), "study needs at least one app");
    lag_assert(config_.sessionsPerApp > 0, "study needs sessions");
}

std::string
Study::tracePath(std::size_t app_index,
                 std::uint32_t session_index) const
{
    const AppParams &app = config_.apps[app_index];
    return config_.cacheDir + "/" + app.name + "_s" +
           std::to_string(session_index) + ".lag";
}

bool
Study::cacheValid() const
{
    std::ifstream manifest(config_.cacheDir + "/manifest");
    if (!manifest)
        return false;
    std::string stored;
    std::getline(manifest, stored);
    return stored == config_.fingerprint();
}

void
Study::writeManifest() const
{
    const std::string path = config_.cacheDir + "/manifest";
    const std::string temp = path + ".tmp";
    {
        std::ofstream manifest(temp, std::ios::trunc);
        manifest << config_.fingerprint() << '\n';
        if (!manifest) {
            warn("study: cannot write manifest temp file '", temp,
                 "'");
            return;
        }
    }
    // Atomic rename: a crash mid-write leaves the old manifest (or
    // none), never a torn one, so the cache stays self-describing.
    fs::rename(temp, path);
}

void
Study::validate()
{
    validateCache();
}

void
Study::validateCache()
{
    if (validated_)
        return;
    fs::create_directories(config_.cacheDir);
    if (!cacheValid()) {
        inform("study: configuration changed; clearing trace cache "
               "in ",
               config_.cacheDir);
        for (const auto &entry :
             fs::directory_iterator(config_.cacheDir)) {
            if (entry.path().extension() == ".lag")
                fs::remove(entry.path());
        }
        // Stale analysis results are keyed by the old fingerprint
        // and would only pile up; drop them with the traces.
        fs::remove_all(config_.cacheDir + "/analysis");
        writeManifest();
    }
    validated_ = true;
}

void
Study::simulateMissing(
    const std::vector<std::vector<std::uint32_t>> &missing)
{
    std::vector<std::size_t> items_per_shard;
    items_per_shard.reserve(missing.size());
    for (const auto &sessions : missing)
        items_per_shard.push_back(sessions.size());

    // Stage slots indexed [app][missing item]: each task writes its
    // own slot, keeping the run independent of scheduling order.
    std::vector<std::vector<trace::Trace>> pending(missing.size());
    for (std::size_t a = 0; a < missing.size(); ++a)
        pending[a].resize(missing[a].size());

    engine::ThreadPool pool(config_.jobs);
    engine::StudyDriver driver(std::move(items_per_shard));
    driver.addStage("simulate", [&](std::size_t a, std::size_t i) {
        const std::uint32_t s = missing[a][i];
        inform("study: simulating ", config_.apps[a].name,
               " session ", s + 1, "/", config_.sessionsPerApp,
               " ...");
        pending[a][i] =
            runSession(config_.apps[a], s, config_.sessionOptions)
                .trace;
    });
    driver.addStage("encode", [&](std::size_t a, std::size_t i) {
        trace::writeTraceFileAtomic(pending[a][i],
                                    tracePath(a, missing[a][i]));
        pending[a][i] = trace::Trace{};
    });
    driver.run(pool);
}

std::vector<std::vector<std::string>>
Study::ensureTraces()
{
    validateCache();

    std::vector<std::vector<std::string>> paths(config_.apps.size());
    std::vector<std::vector<std::uint32_t>> missing(
        config_.apps.size());
    std::size_t missing_count = 0;
    for (std::size_t a = 0; a < config_.apps.size(); ++a) {
        for (std::uint32_t s = 0; s < config_.sessionsPerApp; ++s) {
            const std::string path = tracePath(a, s);
            if (!fs::exists(path)) {
                missing[a].push_back(s);
                ++missing_count;
            }
            paths[a].push_back(path);
        }
    }
    if (missing_count > 0)
        simulateMissing(missing);
    return paths;
}

core::Session
Study::loadSession(std::size_t app_index,
                   std::uint32_t session_index) const
{
    lag_assert(app_index < config_.apps.size(), "bad app index");
    lag_assert(session_index < config_.sessionsPerApp,
               "bad session index");
    const std::string path = tracePath(app_index, session_index);
    if (fs::exists(path)) {
        try {
            return core::Session::fromTrace(
                trace::readTraceFile(path));
        } catch (const trace::TraceError &e) {
            warn("study: trace '", path, "' unreadable (", e.what(),
                 "); re-simulating");
        }
    }
    inform("study: simulating ", config_.apps[app_index].name,
           " session ", session_index + 1, "/",
           config_.sessionsPerApp, " ...");
    SessionRunResult result = runSession(
        config_.apps[app_index], session_index,
        config_.sessionOptions);
    fs::create_directories(config_.cacheDir);
    trace::writeTraceFileAtomic(result.trace, path);
    return core::Session::fromTrace(std::move(result.trace));
}

AppSessions
Study::loadApp(std::size_t app_index)
{
    lag_assert(app_index < config_.apps.size(), "bad app index");
    ensureTraces();
    AppSessions loaded;
    loaded.params = config_.apps[app_index];
    loaded.sessions.reserve(config_.sessionsPerApp);
    for (std::uint32_t s = 0; s < config_.sessionsPerApp; ++s)
        loaded.sessions.push_back(loadSession(app_index, s));
    return loaded;
}

std::vector<AppSessions>
Study::loadAll()
{
    ensureTraces();

    const std::size_t sessions = config_.sessionsPerApp;
    const std::size_t total = config_.apps.size() * sessions;
    std::vector<std::optional<core::Session>> staging(total);

    engine::ThreadPool pool(config_.jobs);
    engine::parallelFor(pool, total, [&](std::size_t i) {
        staging[i] = loadSession(
            i / sessions, static_cast<std::uint32_t>(i % sessions));
    });

    // Deterministic merge: results move into [app][session] order
    // regardless of which worker decoded what.
    std::vector<AppSessions> all;
    all.reserve(config_.apps.size());
    for (std::size_t a = 0; a < config_.apps.size(); ++a) {
        AppSessions loaded;
        loaded.params = config_.apps[a];
        loaded.sessions.reserve(sessions);
        for (std::size_t s = 0; s < sessions; ++s)
            loaded.sessions.push_back(
                std::move(*staging[a * sessions + s]));
        all.push_back(std::move(loaded));
    }
    return all;
}

} // namespace lag::app
