#include "study.hh"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "catalog.hh"
#include "trace/io.hh"
#include "util/hash.hh"
#include "util/logging.hh"
#include "util/strings.hh"

namespace lag::app
{

namespace fs = std::filesystem;

StudyConfig
StudyConfig::paperStudy()
{
    StudyConfig config;
    config.apps = defaultCatalog();
    return config;
}

StudyConfig
StudyConfig::quickStudy(int session_seconds)
{
    StudyConfig config;
    config.apps = defaultCatalog();
    for (auto &app : config.apps) {
        const double shrink =
            static_cast<double>(secToNs(session_seconds)) /
            static_cast<double>(app.sessionLength);
        app.sessionLength = secToNs(session_seconds);
        // Keep rates, shrink pattern variety with the session so
        // the CRP still saturates realistically.
        app.patternConcentration =
            std::max(5.0, app.patternConcentration * shrink * 4.0);
        // Long drag bursts would span most of a short session.
        app.dragBurstLen = std::min(app.dragBurstLen, 200.0);
    }
    config.cacheDir = "lagalyzer-cache-quick";
    return config;
}

namespace
{

/** Bumped whenever generator behaviour (not parameters) changes, so
 * stale caches from older binaries are regenerated. */
constexpr int kStudyBehaviorVersion = 5;

} // namespace

std::string
StudyConfig::fingerprint() const
{
    std::ostringstream out;
    out << kStudyBehaviorVersion << '|';
    out << trace::kFormatVersion << '|' << sessionsPerApp << '|'
        << sessionOptions.filterThreshold << '|'
        << sessionOptions.samplePeriod << '|' << sessionOptions.cores
        << '|' << perceptibleThreshold << '|';
    for (const auto &app : apps)
        out << app.fingerprint() << '\n';
    Fnv1aHasher hasher;
    hasher.addString(out.str());
    std::ostringstream hex;
    hex << std::hex << hasher.digest();
    return hex.str();
}

Study::Study(StudyConfig config) : config_(std::move(config))
{
    lag_assert(!config_.apps.empty(), "study needs at least one app");
    lag_assert(config_.sessionsPerApp > 0, "study needs sessions");
}

std::string
Study::tracePath(std::size_t app_index,
                 std::uint32_t session_index) const
{
    const AppParams &app = config_.apps[app_index];
    return config_.cacheDir + "/" + app.name + "_s" +
           std::to_string(session_index) + ".lag";
}

bool
Study::cacheValid() const
{
    std::ifstream manifest(config_.cacheDir + "/manifest");
    if (!manifest)
        return false;
    std::string stored;
    std::getline(manifest, stored);
    return stored == config_.fingerprint();
}

void
Study::writeManifest() const
{
    std::ofstream manifest(config_.cacheDir + "/manifest",
                           std::ios::trunc);
    manifest << config_.fingerprint() << '\n';
}

std::vector<std::vector<std::string>>
Study::ensureTraces()
{
    if (!validated_) {
        fs::create_directories(config_.cacheDir);
        if (!cacheValid()) {
            inform("study: configuration changed; clearing trace cache "
                   "in ",
                   config_.cacheDir);
            for (const auto &entry :
                 fs::directory_iterator(config_.cacheDir)) {
                if (entry.path().extension() == ".lag")
                    fs::remove(entry.path());
            }
            writeManifest();
        }
        validated_ = true;
    }

    std::vector<std::vector<std::string>> paths(config_.apps.size());
    for (std::size_t a = 0; a < config_.apps.size(); ++a) {
        for (std::uint32_t s = 0; s < config_.sessionsPerApp; ++s) {
            const std::string path = tracePath(a, s);
            if (!fs::exists(path)) {
                inform("study: simulating ", config_.apps[a].name,
                       " session ", s + 1, "/",
                       config_.sessionsPerApp, " ...");
                SessionRunResult result = runSession(
                    config_.apps[a], s, config_.sessionOptions);
                trace::writeTraceFile(result.trace, path);
            }
            paths[a].push_back(path);
        }
    }
    return paths;
}

AppSessions
Study::loadApp(std::size_t app_index)
{
    lag_assert(app_index < config_.apps.size(), "bad app index");
    const auto paths = ensureTraces();
    AppSessions loaded;
    loaded.params = config_.apps[app_index];
    for (const auto &path : paths[app_index]) {
        loaded.sessions.push_back(
            core::Session::fromTrace(trace::readTraceFile(path)));
    }
    return loaded;
}

std::vector<AppSessions>
Study::loadAll()
{
    std::vector<AppSessions> all;
    all.reserve(config_.apps.size());
    for (std::size_t a = 0; a < config_.apps.size(); ++a)
        all.push_back(loadApp(a));
    return all;
}

} // namespace lag::app
