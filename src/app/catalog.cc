#include "catalog.hh"

#include "util/logging.hh"

namespace lag::app
{

namespace
{

/**
 * Calibration notes
 * -----------------
 * actionsPerSec is the inverse of the mean think time between
 * interaction bursts; bursts themselves take time, so the realized
 * action rate is 1 / (think + E[burst duration]). Rates below were
 * derived from Table III per app:
 *
 *   shorts/s  = drag + typing event rates,
 *   traced/s  = clicks*(1+postRepaintProb) + repaint sources +
 *               lognormal tails of drag/typing costs above the 3 ms
 *               filter + timer/loader posts,
 *   In-Eps%   = event rates x mean handler costs (the dispatch
 *               overhead of ~80 us rides on every episode),
 *
 * and the perceptible column from the heavy-click probability, the
 * paint-tree sizes, quirk probabilities, and lognormal upper tails.
 */

/** Common defaults shared by all models. */
AppParams
base(const char *name, const char *version, int classes,
     const char *description, const char *pkg, int session_seconds)
{
    AppParams p;
    p.name = name;
    p.version = version;
    p.classCount = classes;
    p.description = description;
    p.appPackage = pkg;
    p.sessionLength = secToNs(session_seconds);
    return p;
}

AppParams
arabeske()
{
    // Texture editor: near-continuous drawing strokes; a fifth of
    // the commands call System.gc() explicitly (paper §IV.C: 57% of
    // perceptible episodes are "empty" GC episodes; §IV.D: GC is
    // ~60% of perceptible lag); a worker thread keeps concurrency
    // above one (Figure 7).
    AppParams p = base("Arabeske", "2.0.1", 222,
                       "Arabeske texture editor", "org.arabeske", 461);
    p.actionsPerSec = 8.0;
    p.typingShare = 0.05;
    p.dragShare = 0.55;
    p.clickShare = 0.40;
    p.typingBurstLen = 10;
    p.typingRate = 8;
    p.dragBurstLen = 520;
    p.dragRate = 1500;
    p.dragRepaintEvery = 65;
    p.dragCost = CostModel::of(usToNs(50), 0.5, usToNs(10), msToNs(20));
    p.typeCost = CostModel::of(usToNs(250), 0.5, usToNs(20), msToNs(20));
    p.clickCost = CostModel::of(msToNs(6), 0.9, usToNs(200), msToNs(600));
    p.heavyClickProb = 0.08;
    p.explicitGcProb = 0.22;
    p.paintDepthMin = 2;
    p.paintDepthMax = 4;
    p.paintNodeCost =
        CostModel::of(usToNs(500), 1.0, usToNs(80), msToNs(300));
    p.postRepaintProb = 0.4;
    p.systemRepaintRate = 0.3;
    p.libraryTimeShare = 0.45;
    p.patternConcentration = 400;
    p.repaintConcentration = 40;
    p.majorPauseMedian = msToNs(260);
    p.loaders.push_back(LoaderSpec{"TextureWorker", 0.02, 0.98,
                                   msToNs(2), msToNs(3), 40 << 10, 0.02,
                                   CostModel::of(msToNs(4), 0.6,
                                                 msToNs(1), msToNs(40))});
    return p;
}

AppParams
argouml()
{
    // UML CASE tool: input-dominated perceptible lag (78%, §IV.C),
    // a very high allocation rate — minor collections spread across
    // all episodes (16% of episode time overall, 26% of perceptible
    // lag, §IV.D) — and the largest pattern count in Table III.
    AppParams p = base("ArgoUML", "0.28", 5349, "UML CASE tool",
                       "org.argouml", 630);
    p.actionsPerSec = 14.0;
    p.typingShare = 0.30;
    p.dragShare = 0.25;
    p.clickShare = 0.45;
    p.typingBurstLen = 8;
    p.typingRate = 12;
    p.dragBurstLen = 500;
    p.dragRate = 900;
    p.typeCost = CostModel::of(usToNs(700), 0.6, usToNs(50), msToNs(40));
    p.dragCost = CostModel::of(usToNs(450), 0.95, usToNs(40),
                               msToNs(80));
    p.clickCost = CostModel::of(msToNs(7), 0.95, usToNs(300),
                                msToNs(800));
    p.heavyClickProb = 0.22;
    p.heavyClickCost =
        CostModel::of(msToNs(110), 0.7, msToNs(40), secToNs(3));
    p.postRepaintProb = 0.8;
    p.systemRepaintRate = 0.5;
    p.paintDepthMin = 3;
    p.paintDepthMax = 5;
    p.paintNodeCost =
        CostModel::of(msToNs(3) + usToNs(500), 0.9, usToNs(200),
                      msToNs(400));
    p.allocPerMsWork = 350 << 10;
    p.libraryTimeShare = 0.55;
    p.patternConcentration = 12000;
    p.repaintConcentration = 1500;
    p.listenerClassCount = 40;
    p.paintClassCount = 24;
    return p;
}

AppParams
crosswordsage()
{
    // Small, focused crossword editor: the smallest pattern count
    // and the lowest in-episode share of Table III. Word checks on
    // keystrokes put a slice of typing above the trace filter.
    AppParams p = base("CrosswordSage", "0.3.5", 34,
                       "Crossword puzzle editor", "crosswordsage", 367);
    p.actionsPerSec = 6.7;
    p.typingShare = 0.50;
    p.dragShare = 0.30;
    p.clickShare = 0.20;
    p.typingBurstLen = 14;
    p.typingRate = 9;
    p.dragBurstLen = 700;
    p.dragRate = 1500;
    p.dragCost = CostModel::of(usToNs(150), 0.7, usToNs(10), msToNs(15));
    p.typeCost =
        CostModel::of(msToNs(2), 0.8, usToNs(40),
                      msToNs(60));
    p.clickCost = CostModel::of(msToNs(5), 0.9, usToNs(200), msToNs(500));
    p.heavyClickProb = 0.30;
    p.heavyClickCost =
        CostModel::of(msToNs(250), 0.55, msToNs(50), secToNs(2));
    p.postRepaintProb = 0.3;
    p.systemRepaintRate = 0.2;
    p.libraryTimeShare = 0.6;
    p.patternConcentration = 45;
    p.repaintConcentration = 15;
    p.listenerClassCount = 8;
    p.paintClassCount = 6;
    return p;
}

AppParams
euclide()
{
    // Geometry construction kit: the paper's standout Thread.sleep
    // case — over 60% of perceptible lag is the Apple toolkit's
    // combo-box blink animation (§IV.E) — and 73% of perceptible
    // lag in runtime-library code (§IV.D). Dragging construction
    // points produces a broad borderline tail of traced episodes.
    AppParams p = base("Euclide", "0.5.2", 398,
                       "Geometry construction kit", "org.euclide", 614);
    p.actionsPerSec = 8.3;
    p.typingShare = 0.15;
    p.dragShare = 0.45;
    p.clickShare = 0.40;
    p.typingBurstLen = 8;
    p.typingRate = 10;
    p.dragBurstLen = 150;
    p.dragRate = 800;
    p.dragCost = CostModel::of(usToNs(800), 0.85, usToNs(40),
                               msToNs(80));
    p.clickCost = CostModel::of(msToNs(6), 0.9, usToNs(200),
                                msToNs(600));
    p.heavyClickProb = 0.03;
    p.comboSleepProb = 0.09;
    p.comboSleep = CostModel::of(msToNs(300), 0.35, msToNs(120),
                                 msToNs(900));
    p.postRepaintProb = 0.3;
    p.systemRepaintRate = 0.25;
    p.libraryTimeShare = 0.73;
    p.patternConcentration = 35;
    p.repaintConcentration = 30;
    return p;
}

AppParams
findbugs()
{
    // Bug browser: a ~4.5-minute background project load on two
    // worker threads (with Arabeske and NetBeans the only apps with
    // concurrency above one during perceptible episodes, §IV.E) and
    // a progress-bar updater posting asynchronous events — the
    // largest async share of perceptible lag (42%, §IV.C). The
    // progress handler allocates heavily, dragging GCs into its
    // episodes (the pattern the paper highlights).
    AppParams p = base("FindBugs", "1.3.8", 3698, "Bug browser",
                       "edu.umd.cs.findbugs", 599);
    p.actionsPerSec = 3.3;
    p.typingShare = 0.45;
    p.dragShare = 0.15;
    p.clickShare = 0.40;
    p.typingBurstLen = 10;
    p.typingRate = 10;
    p.dragBurstLen = 300;
    p.dragRate = 700;
    p.typeCost = CostModel::of(msToNs(1), 0.7, usToNs(60), msToNs(50));
    p.dragCost =
        CostModel::of(msToNs(1) + usToNs(100), 0.5, usToNs(60),
                      msToNs(40));
    p.clickCost = CostModel::of(msToNs(8), 0.9, usToNs(300),
                                msToNs(900));
    p.heavyClickProb = 0.06;
    p.postRepaintProb = 0.3;
    p.systemRepaintRate = 0.3;
    p.libraryTimeShare = 0.5;
    p.patternConcentration = 100;
    p.repaintConcentration = 30;
    p.timers.push_back(TimerSpec{
        "ProgressUpdater", msToNs(70), /*postsRepaint=*/false,
        CostModel::of(msToNs(5), 1.25, usToNs(500), msToNs(600)),
        250 << 10, 0.05, 0.50});
    p.loaders.push_back(LoaderSpec{"AnalysisWorker-0", 0.05, 0.50,
                                   msToNs(3), msToNs(2) + usToNs(500),
                                   40 << 10, 0.0, CostModel{}});
    p.loaders.push_back(LoaderSpec{"AnalysisWorker-1", 0.05, 0.50,
                                   msToNs(3), msToNs(2) + usToNs(500),
                                   40 << 10, 0.0, CostModel{}});
    return p;
}

AppParams
freemind()
{
    // Mind mapper: almost never slow (92% of patterns never
    // perceptible, §IV.B); what little perceptible lag exists is
    // partly monitor contention in display-configuration code (12%,
    // §IV.E) — a background hog shares monitor 1 with a fraction of
    // the click handlers. Very cheap pan/drag handlers produce the
    // second-largest short-episode count with the third-lowest
    // in-episode time.
    AppParams p = base("FreeMind", "0.8.1", 1909, "Mind mapping editor",
                       "freemind", 524);
    p.actionsPerSec = 10.0;
    p.typingShare = 0.15;
    p.dragShare = 0.55;
    p.clickShare = 0.30;
    p.typingBurstLen = 10;
    p.typingRate = 10;
    p.dragBurstLen = 380;
    p.dragRate = 2200;
    p.dragRepaintEvery = 60;
    p.dragCost = CostModel::of(usToNs(30), 0.6, usToNs(5), msToNs(10));
    p.typeCost = CostModel::of(usToNs(300), 0.6, usToNs(20), msToNs(20));
    p.clickCost = CostModel::of(msToNs(4), 0.7, usToNs(200),
                                msToNs(300));
    p.heavyClickProb = 0.04;
    p.contentionProb = 0.15;
    p.contentionMonitor = 1;
    p.hogs.push_back(HogSpec{
        "DisplayConfigWorker", msToNs(400),
        CostModel::of(msToNs(150), 0.4, msToNs(60), msToNs(500)), 1});
    p.postRepaintProb = 0.25;
    p.systemRepaintRate = 0.3;
    p.paintDepthMin = 2;
    p.paintDepthMax = 3;
    p.paintNodeCost =
        CostModel::of(usToNs(900), 0.7, usToNs(100),
                      msToNs(100));
    p.libraryTimeShare = 0.6;
    p.patternConcentration = 40;
    p.repaintConcentration = 12;
    return p;
}

AppParams
ganttproject()
{
    // Gantt chart editor: the paper's worst always-slow case — 57%
    // of patterns always perceptible, 168 long episodes per minute,
    // 47% of the session inside episodes, and the richest episode
    // trees (Descs 18, Depth 12) from its deeply nested component
    // paints (Figure 2). Nearly every interaction repaints the
    // whole chart.
    AppParams p = base("GanttProject", "2.0.9", 5288,
                       "Gantt chart editor",
                       "net.sourceforge.ganttproject", 523);
    p.actionsPerSec = 8.3;
    p.typingShare = 0.10;
    p.dragShare = 0.40;
    p.clickShare = 0.50;
    p.typingBurstLen = 8;
    p.typingRate = 10;
    p.dragBurstLen = 200;
    p.dragRate = 800;
    p.dragRepaintEvery = 190;
    p.dragCost = CostModel::of(usToNs(300), 0.5, usToNs(30), msToNs(20));
    p.clickCost = CostModel::of(msToNs(9), 0.9, usToNs(300),
                                msToNs(900));
    p.heavyClickProb = 0.09;
    p.heavyClickCost =
        CostModel::of(msToNs(200), 0.6, msToNs(60), secToNs(3));
    p.postRepaintProb = 0.65;
    p.systemRepaintRate = 0.2;
    p.paintDepthMin = 9;
    p.paintDepthMax = 13;
    p.paintFanout = 1.10;
    p.paintNodeCost = CostModel::of(msToNs(4) + usToNs(200), 0.5, usToNs(300),
                                    msToNs(300));
    p.libraryTimeShare = 0.5;
    p.patternConcentration = 160;
    p.repaintConcentration = 28;
    p.paintClassCount = 22;
    return p;
}

AppParams
jedit()
{
    // Programmer's text editor: few perceptible episodes, a quarter
    // of whose lag is Object.wait() inside modal-dialog event
    // handling (§IV.E). Text selection drags repaint the view.
    AppParams p = base("JEdit", "4.3pre16", 1150,
                       "Programmer's text editor", "org.gjt.sp.jedit",
                       502);
    p.actionsPerSec = 5.0;
    p.typingShare = 0.50;
    p.dragShare = 0.30;
    p.clickShare = 0.20;
    p.typingBurstLen = 12;
    p.typingRate = 11;
    p.dragBurstLen = 800;
    p.dragRate = 1600;
    p.dragRepaintEvery = 80;
    p.typeCost = CostModel::of(usToNs(500), 0.6, usToNs(40), msToNs(30));
    p.dragCost = CostModel::of(usToNs(140), 0.55, usToNs(20),
                               msToNs(20));
    p.clickCost = CostModel::of(msToNs(5), 0.8, usToNs(200),
                                msToNs(400));
    p.heavyClickProb = 0.05;
    p.modalWaitProb = 0.06;
    p.modalWait = CostModel::of(msToNs(120), 0.5, msToNs(60),
                                msToNs(500));
    p.postRepaintProb = 0.3;
    p.systemRepaintRate = 0.2;
    p.paintDepthMin = 2;
    p.paintDepthMax = 4;
    p.paintNodeCost =
        CostModel::of(msToNs(2) + usToNs(500), 0.7, usToNs(100),
                      msToNs(150));
    p.libraryTimeShare = 0.5;
    p.patternConcentration = 35;
    p.repaintConcentration = 10;
    return p;
}

AppParams
jfreechart()
{
    // Chart library demo (time-series data): shortest sessions in
    // the study; output-dominated; 24% of perceptible lag in native
    // rendering calls that individually complete quickly (§IV.D) —
    // paint trees carry several short Native children each.
    AppParams p = base("JFreeChart", "1.0.13", 1667,
                       "Chart library (time data)", "org.jfree", 250);
    p.actionsPerSec = 8.3;
    p.typingShare = 0.10;
    p.dragShare = 0.40;
    p.clickShare = 0.50;
    p.typingBurstLen = 8;
    p.typingRate = 10;
    p.dragBurstLen = 260;
    p.dragRate = 900;
    p.dragRepaintEvery = 85;
    p.dragCost = CostModel::of(usToNs(150), 0.6, usToNs(20), msToNs(20));
    p.clickCost = CostModel::of(msToNs(6), 0.85, usToNs(200),
                                msToNs(600));
    p.heavyClickProb = 0.10;
    p.heavyClickCost =
        CostModel::of(msToNs(160), 0.6, msToNs(40), secToNs(2));
    p.postRepaintProb = 0.9;
    p.systemRepaintRate = 1.2;
    p.paintDepthMin = 4;
    p.paintDepthMax = 6;
    p.paintFanout = 1.15;
    p.paintNodeCost = CostModel::of(msToNs(2) + usToNs(200), 0.95, usToNs(200),
                                    msToNs(300));
    p.nativeInPaintProb = 0.35;
    p.nativeCost =
        CostModel::of(msToNs(2) + usToNs(500), 1.1, usToNs(100),
                      msToNs(500));
    p.libraryTimeShare = 0.5;
    p.patternConcentration = 15;
    p.repaintConcentration = 6;
    return p;
}

AppParams
jhotdraw()
{
    // Vector graphics editor: 96% of perceptible lag in application
    // code — bezier handle/outline drawing (§IV.D); continuous
    // canvas repaints while the user draws.
    AppParams p = base("JHotDraw", "7.1", 1146, "Vector graphics editor",
                       "org.jhotdraw", 421);
    p.actionsPerSec = 10.0;
    p.typingShare = 0.10;
    p.dragShare = 0.50;
    p.clickShare = 0.40;
    p.typingBurstLen = 8;
    p.typingRate = 10;
    p.dragBurstLen = 400;
    p.dragRate = 1400;
    p.dragRepaintEvery = 62;
    p.dragCost = CostModel::of(usToNs(70), 0.6, usToNs(10), msToNs(15));
    p.clickCost = CostModel::of(msToNs(6), 0.85, usToNs(200),
                                msToNs(600));
    p.heavyClickProb = 0.18;
    p.heavyClickCost =
        CostModel::of(msToNs(250), 0.8, msToNs(60), secToNs(4));
    p.postRepaintProb = 0.5;
    p.systemRepaintRate = 0.2;
    p.paintDepthMin = 3;
    p.paintDepthMax = 5;
    p.paintFanout = 1.15;
    p.paintNodeCost = CostModel::of(msToNs(2) + usToNs(800), 0.95, usToNs(200),
                                    msToNs(500));
    p.libraryTimeShare = 0.05;
    p.patternConcentration = 110;
    p.repaintConcentration = 35;
    return p;
}

AppParams
jmol()
{
    // Chemical structure viewer: a timer-driven 3D animation posts
    // repaints continuously; 98% of perceptible episodes are output
    // and JMol has the study's worst perceptible-episode rate (180
    // per minute, §IV.A/§IV.C). Frames are slow (the paper observed
    // the frame rate dropping on complex surfaces), so the handler
    // cost median sits at 40 ms with a wide spread.
    AppParams p = base("Jmol", "11.6.21", 1422,
                       "Chemical structure viewer", "org.jmol", 449);
    p.actionsPerSec = 6.7;
    p.typingShare = 0.20;
    p.dragShare = 0.50;
    p.clickShare = 0.30;
    p.typingBurstLen = 8;
    p.typingRate = 10;
    p.dragBurstLen = 200;
    p.dragRate = 1100;
    p.dragCost = CostModel::of(usToNs(150), 0.5, usToNs(20), msToNs(20));
    p.clickCost = CostModel::of(msToNs(6), 0.8, usToNs(200),
                                msToNs(600));
    p.heavyClickProb = 0.06;
    p.postRepaintProb = 0.3;
    p.systemRepaintRate = 0.2;
    p.paintDepthMin = 3;
    p.paintDepthMax = 4;
    p.nativeInPaintProb = 0.3;
    p.libraryTimeShare = 0.35;
    p.patternConcentration = 40;
    p.repaintConcentration = 8;
    p.timers.push_back(TimerSpec{
        "AnimationThread", msToNs(75), /*postsRepaint=*/true,
        CostModel::of(msToNs(31), 1.05, msToNs(2), secToNs(1)),
        60 << 10, 0.20, 0.75});
    return p;
}

AppParams
laoe()
{
    // Audio sample editor: by far the most sub-threshold episodes
    // in the study (1.24 million per session) from very-high-rate
    // waveform scrubbing, yet among the fewest perceptible ones and
    // the lowest rate of long episodes per minute.
    AppParams p = base("Laoe", "0.6.03", 688, "Audio sample editor",
                       "ch.laoe", 460);
    p.actionsPerSec = 10.0;
    p.typingShare = 0.10;
    p.dragShare = 0.60;
    p.clickShare = 0.30;
    p.typingBurstLen = 10;
    p.typingRate = 10;
    p.dragBurstLen = 2200;
    p.dragRate = 5000;
    p.dragRepaintEvery = 290;
    p.dragCost = CostModel::of(usToNs(45), 0.5, usToNs(5), msToNs(10));
    p.typeCost = CostModel::of(usToNs(200), 0.4, usToNs(10), msToNs(10));
    p.clickCost = CostModel::of(msToNs(6), 0.8, usToNs(200),
                                msToNs(500));
    p.heavyClickProb = 0.17;
    p.heavyClickCost =
        CostModel::of(msToNs(300), 0.7, msToNs(80), secToNs(4));
    p.postRepaintProb = 0.8;
    p.systemRepaintRate = 0.5;
    p.paintDepthMin = 3;
    p.paintDepthMax = 4;
    p.paintNodeCost =
        CostModel::of(msToNs(1) + usToNs(100), 0.9, usToNs(100),
                      msToNs(200));
    p.libraryTimeShare = 0.45;
    p.patternConcentration = 70;
    p.repaintConcentration = 12;
    return p;
}

AppParams
netbeans()
{
    // Full IDE (45k classes): background indexing keeps concurrency
    // above one; heavy first-use costs (class loading across a huge
    // code base) create the one-shot initialization patterns §II.D
    // describes; typing carries a noticeable traced tail (editor
    // hints, code completion).
    AppParams p = base("NetBeans", "6.7", 45367,
                       "Development environment", "org.netbeans", 398);
    p.actionsPerSec = 10.0;
    p.typingShare = 0.30;
    p.dragShare = 0.20;
    p.clickShare = 0.50;
    p.typingBurstLen = 10;
    p.typingRate = 12;
    p.dragBurstLen = 1200;
    p.dragRate = 3500;
    p.dragRepaintEvery = 300;
    p.typeCost =
        CostModel::of(msToNs(1) + usToNs(200), 0.7, usToNs(60),
                      msToNs(60));
    p.dragCost = CostModel::of(usToNs(50), 0.6, usToNs(10), msToNs(15));
    p.clickCost = CostModel::of(msToNs(7), 0.9, usToNs(300),
                                msToNs(800));
    p.heavyClickProb = 0.09;
    p.heavyClickCost =
        CostModel::of(msToNs(200), 0.7, msToNs(60), secToNs(3));
    p.firstUseCost = CostModel::of(msToNs(22), 0.8, msToNs(5),
                                   secToNs(1));
    p.postRepaintProb = 0.4;
    p.systemRepaintRate = 1.0;
    p.paintDepthMin = 2;
    p.paintDepthMax = 4;
    p.paintNodeCost =
        CostModel::of(msToNs(1) + usToNs(200), 0.7, usToNs(100),
                      msToNs(150));
    p.allocPerMsWork = 120 << 10;
    p.libraryTimeShare = 0.5;
    p.patternConcentration = 5000;
    p.repaintConcentration = 600;
    p.listenerClassCount = 48;
    p.paintClassCount = 30;
    p.timers.push_back(TimerSpec{
        "StatusLineUpdater", msToNs(800), /*postsRepaint=*/false,
        CostModel::of(msToNs(5), 0.9, usToNs(300), msToNs(200)),
        60 << 10, 0.0, 1.0});
    p.loaders.push_back(LoaderSpec{"Indexer-0", 0.0, 0.40, msToNs(3),
                                   msToNs(3), 120 << 10, 0.01,
                                   CostModel::of(msToNs(6), 0.8,
                                                 msToNs(1),
                                                 msToNs(100))});
    p.loaders.push_back(LoaderSpec{"Indexer-1", 0.0, 0.40, msToNs(3),
                                   msToNs(3), 120 << 10, 0.01,
                                   CostModel::of(msToNs(6), 0.8,
                                                 msToNs(1),
                                                 msToNs(100))});
    return p;
}

AppParams
swingset()
{
    // Swing component demo: a bit of everything, including combo
    // boxes (the paper notes the Apple blink-sleep issue appeared
    // across all benchmarks); demo panes repaint on every switch.
    AppParams p = base("SwingSet", "2", 131, "Swing component demo",
                       "swingset", 384);
    p.actionsPerSec = 10.0;
    p.typingShare = 0.15;
    p.dragShare = 0.45;
    p.clickShare = 0.40;
    p.typingBurstLen = 8;
    p.typingRate = 10;
    p.dragBurstLen = 480;
    p.dragRate = 1700;
    p.dragRepaintEvery = 52;
    p.dragCost = CostModel::of(usToNs(70), 0.8, usToNs(10), msToNs(20));
    p.clickCost = CostModel::of(msToNs(5), 0.85, usToNs(200),
                                msToNs(500));
    p.heavyClickProb = 0.04;
    p.heavyClickCost =
        CostModel::of(msToNs(250), 0.6, msToNs(60), secToNs(2));
    p.comboSleepProb = 0.03;
    p.postRepaintProb = 0.85;
    p.systemRepaintRate = 0.8;
    p.paintDepthMin = 3;
    p.paintDepthMax = 5;
    p.paintNodeCost =
        CostModel::of(msToNs(1), 0.95, usToNs(100),
                      msToNs(200));
    p.libraryTimeShare = 0.75;
    p.patternConcentration = 260;
    p.repaintConcentration = 22;
    return p;
}

} // namespace

std::vector<AppParams>
defaultCatalog()
{
    return {
        arabeske(),   argouml(),  crosswordsage(), euclide(),
        findbugs(),   freemind(), ganttproject(),  jedit(),
        jfreechart(), jhotdraw(), jmol(),          laoe(),
        netbeans(),   swingset(),
    };
}

AppParams
catalogApp(std::string_view name)
{
    for (auto &app : defaultCatalog()) {
        if (app.name == name)
            return app;
    }
    fatal("unknown application '", std::string(name),
          "'; see Table II for the catalog");
}

} // namespace lag::app
