#include "params.hh"

#include <sstream>

namespace lag::app
{

namespace
{

void
dump(std::ostringstream &out, const CostModel &cost)
{
    out << cost.median << '/' << cost.sigma << '/' << cost.min << '/'
        << cost.max << ';';
}

} // namespace

std::string
AppParams::fingerprint() const
{
    std::ostringstream out;
    out << name << '|' << version << '|' << classCount << '|'
        << appPackage << '|' << sessionLength << '|' << actionsPerSec
        << '|' << typingShare << '|' << clickShare << '|' << dragShare
        << '|' << typingBurstLen << '|' << typingRate << '|'
        << dragBurstLen << '|' << dragRate << '|' << dragRepaintEvery
        << '|';
    dump(out, typeCost);
    dump(out, dragCost);
    dump(out, clickCost);
    out << heavyClickProb << '|';
    dump(out, heavyClickCost);
    out << paintInListenerProb << '|' << postRepaintProb << '|'
        << asyncRepaintShare << '|' << paintDepthMin << '|'
        << paintDepthMax << '|' << paintFanout << '|';
    dump(out, paintNodeCost);
    out << systemRepaintRate << '|' << nativeInPaintProb << '|'
        << nativeInListenerProb << '|';
    dump(out, nativeCost);
    out << allocPerMsWork << '|' << youngCapacityBytes << '|'
        << majorPauseMedian << '|'
        << explicitGcProb << '|' << comboSleepProb << '|';
    dump(out, comboSleep);
    out << modalWaitProb << '|';
    dump(out, modalWait);
    out << contentionProb << '|' << contentionMonitor << '|';
    dump(out, firstUseCost);
    out << listenerClassCount << '|' << paintClassCount << '|'
        << classSkew << '|' << patternConcentration << '|'
        << repaintConcentration << '|'
        << costJitterSigma << '|' << libraryTimeShare << '|' << baseSeed
        << '|';
    for (const auto &timer : timers) {
        out << "T:" << timer.name << ',' << timer.period << ','
            << timer.postsRepaint << ',';
        dump(out, timer.handlerCost);
        out << timer.handlerAllocPerMs << ',' << timer.activeFrom << ','
            << timer.activeTo << '|';
    }
    for (const auto &loader : loaders) {
        out << "L:" << loader.name << ',' << loader.startAt << ','
            << loader.endAt << ',' << loader.chunkCost << ','
            << loader.restBetweenChunks << ',' << loader.allocPerMs
            << ',' << loader.postProb << ',';
        dump(out, loader.postHandlerCost);
        out << '|';
    }
    for (const auto &hog : hogs) {
        out << "H:" << hog.name << ',' << hog.period << ',';
        dump(out, hog.holdCost);
        out << hog.monitorId << '|';
    }
    return out.str();
}

} // namespace lag::app
