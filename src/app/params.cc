#include "params.hh"

#include <cstdlib>
#include <sstream>
#include <string_view>

#include "engine/pool.hh"
#include "util/logging.hh"

namespace lag::app
{

namespace
{

void
dump(std::ostringstream &out, const CostModel &cost)
{
    out << cost.median << '/' << cost.sigma << '/' << cost.min << '/'
        << cost.max << ';';
}

} // namespace

std::string
AppParams::fingerprint() const
{
    std::ostringstream out;
    out << name << '|' << version << '|' << classCount << '|'
        << appPackage << '|' << sessionLength << '|' << actionsPerSec
        << '|' << typingShare << '|' << clickShare << '|' << dragShare
        << '|' << typingBurstLen << '|' << typingRate << '|'
        << dragBurstLen << '|' << dragRate << '|' << dragRepaintEvery
        << '|';
    dump(out, typeCost);
    dump(out, dragCost);
    dump(out, clickCost);
    out << heavyClickProb << '|';
    dump(out, heavyClickCost);
    out << paintInListenerProb << '|' << postRepaintProb << '|'
        << asyncRepaintShare << '|' << paintDepthMin << '|'
        << paintDepthMax << '|' << paintFanout << '|';
    dump(out, paintNodeCost);
    out << systemRepaintRate << '|' << nativeInPaintProb << '|'
        << nativeInListenerProb << '|';
    dump(out, nativeCost);
    out << allocPerMsWork << '|' << youngCapacityBytes << '|'
        << majorPauseMedian << '|'
        << explicitGcProb << '|' << comboSleepProb << '|';
    dump(out, comboSleep);
    out << modalWaitProb << '|';
    dump(out, modalWait);
    out << contentionProb << '|' << contentionMonitor << '|';
    dump(out, firstUseCost);
    out << listenerClassCount << '|' << paintClassCount << '|'
        << classSkew << '|' << patternConcentration << '|'
        << repaintConcentration << '|'
        << costJitterSigma << '|' << libraryTimeShare << '|' << baseSeed
        << '|';
    for (const auto &timer : timers) {
        out << "T:" << timer.name << ',' << timer.period << ','
            << timer.postsRepaint << ',';
        dump(out, timer.handlerCost);
        out << timer.handlerAllocPerMs << ',' << timer.activeFrom << ','
            << timer.activeTo << '|';
    }
    for (const auto &loader : loaders) {
        out << "L:" << loader.name << ',' << loader.startAt << ','
            << loader.endAt << ',' << loader.chunkCost << ','
            << loader.restBetweenChunks << ',' << loader.allocPerMs
            << ',' << loader.postProb << ',';
        dump(out, loader.postHandlerCost);
        out << '|';
    }
    for (const auto &hog : hogs) {
        out << "H:" << hog.name << ',' << hog.period << ',';
        dump(out, hog.holdCost);
        out << hog.monitorId << '|';
    }
    return out.str();
}

std::uint32_t
defaultJobs()
{
    return static_cast<std::uint32_t>(
        engine::ThreadPool::defaultConcurrency());
}

namespace
{

/** Parse a decimal worker count; fatal() on junk or non-positive. */
std::uint32_t
parseJobsValue(std::string_view value)
{
    const std::string text(value);
    char *end = nullptr;
    const long parsed = std::strtol(text.c_str(), &end, 10);
    if (end == text.c_str() || *end != '\0' || parsed <= 0)
        fatal("--jobs needs a positive integer, got '", text, "'");
    return static_cast<std::uint32_t>(parsed);
}

} // namespace

std::uint32_t
parseJobsOption(int &argc, char **argv)
{
    std::uint32_t jobs = 0;
    int out = 0;
    for (int in = 0; in < argc; ++in) {
        const std::string_view arg(argv[in]);
        if (arg == "--jobs") {
            if (in + 1 >= argc)
                fatal("--jobs needs a value");
            jobs = parseJobsValue(argv[++in]);
        } else if (arg.rfind("--jobs=", 0) == 0) {
            jobs = parseJobsValue(arg.substr(7));
        } else {
            argv[out++] = argv[in];
        }
    }
    argc = out;
    return jobs;
}

namespace
{

/** Parse a byte count with an optional k/M/G (binary) suffix;
 * fatal() on junk or a negative value. */
std::uint64_t
parseByteValue(std::string_view option, std::string_view value)
{
    const std::string text(value);
    char *end = nullptr;
    const long long parsed = std::strtoll(text.c_str(), &end, 10);
    std::uint64_t scale = 1;
    if (end != text.c_str()) {
        switch (*end) {
        case 'k':
        case 'K':
            scale = 1ull << 10;
            ++end;
            break;
        case 'm':
        case 'M':
            scale = 1ull << 20;
            ++end;
            break;
        case 'g':
        case 'G':
            scale = 1ull << 30;
            ++end;
            break;
        default:
            break;
        }
    }
    if (end == text.c_str() || *end != '\0' || parsed < 0) {
        fatal(option, " needs a byte count (optionally k/M/G), got '",
              text, "'");
    }
    return static_cast<std::uint64_t>(parsed) * scale;
}

/** Parse a non-negative seconds count; fatal() on junk. */
std::uint64_t
parseSecondsValue(std::string_view option, std::string_view value)
{
    const std::string text(value);
    char *end = nullptr;
    const long long parsed = std::strtoll(text.c_str(), &end, 10);
    if (end == text.c_str() || *end != '\0' || parsed < 0)
        fatal(option, " needs a seconds count, got '", text, "'");
    return static_cast<std::uint64_t>(parsed);
}

} // namespace

CacheLimitOptions
parseCacheLimitOptions(int &argc, char **argv)
{
    CacheLimitOptions limits;
    int out = 0;
    for (int in = 0; in < argc; ++in) {
        const std::string_view arg(argv[in]);
        const auto next = [&](std::string_view option) {
            if (in + 1 >= argc)
                fatal(option, " needs a value");
            return std::string_view(argv[++in]);
        };
        if (arg == "--cache-max-bytes") {
            limits.maxBytes =
                parseByteValue(arg, next("--cache-max-bytes"));
        } else if (arg.rfind("--cache-max-bytes=", 0) == 0) {
            limits.maxBytes = parseByteValue(
                "--cache-max-bytes", arg.substr(18));
        } else if (arg == "--cache-max-age") {
            limits.maxAgeSeconds =
                parseSecondsValue(arg, next("--cache-max-age"));
        } else if (arg.rfind("--cache-max-age=", 0) == 0) {
            limits.maxAgeSeconds = parseSecondsValue(
                "--cache-max-age", arg.substr(16));
        } else {
            argv[out++] = argv[in];
        }
    }
    argc = out;
    return limits;
}

bool
parseNoIncrementalOption(int &argc, char **argv)
{
    bool no_incremental = false;
    int out = 0;
    for (int in = 0; in < argc; ++in) {
        if (std::string_view(argv[in]) == "--no-incremental")
            no_incremental = true;
        else
            argv[out++] = argv[in];
    }
    argc = out;
    if (!no_incremental) {
        const char *env = std::getenv("LAGALYZER_NO_INCREMENTAL");
        if (env != nullptr && env[0] != '\0' && env[0] != '0')
            no_incremental = true;
    }
    return no_incremental;
}

namespace
{

/** Parse a TCP port (0..65535); fatal() on junk. */
std::uint16_t
parsePortValue(std::string_view value)
{
    const std::string text(value);
    char *end = nullptr;
    const long parsed = std::strtol(text.c_str(), &end, 10);
    if (end == text.c_str() || *end != '\0' || parsed < 0 ||
        parsed > 65535)
        fatal("--port needs a port number (0..65535), got '", text,
              "'");
    return static_cast<std::uint16_t>(parsed);
}

/** Parse a positive connection cap; fatal() on junk. */
std::size_t
parseConnectionsValue(std::string_view value)
{
    const std::string text(value);
    char *end = nullptr;
    const long parsed = std::strtol(text.c_str(), &end, 10);
    if (end == text.c_str() || *end != '\0' || parsed <= 0)
        fatal("--max-connections needs a positive integer, got '",
              text, "'");
    return static_cast<std::size_t>(parsed);
}

} // namespace

ServeOptions
parseServeOptions(int &argc, char **argv)
{
    ServeOptions options;
    bool port_set = false;
    int out = 0;
    for (int in = 0; in < argc; ++in) {
        const std::string_view arg(argv[in]);
        const auto next = [&](std::string_view option) {
            if (in + 1 >= argc)
                fatal(option, " needs a value");
            return std::string_view(argv[++in]);
        };
        if (arg == "--port") {
            options.port = parsePortValue(next("--port"));
            port_set = true;
        } else if (arg.rfind("--port=", 0) == 0) {
            options.port = parsePortValue(arg.substr(7));
            port_set = true;
        } else if (arg == "--max-connections") {
            options.maxConnections =
                parseConnectionsValue(next("--max-connections"));
        } else if (arg.rfind("--max-connections=", 0) == 0) {
            options.maxConnections =
                parseConnectionsValue(arg.substr(18));
        } else {
            argv[out++] = argv[in];
        }
    }
    argc = out;
    if (!port_set) {
        const char *env = std::getenv("LAGALYZER_SERVE_PORT");
        if (env != nullptr && env[0] != '\0')
            options.port = parsePortValue(env);
    }
    return options;
}

obs::ObsOptions
parseObsOptions(int &argc, char **argv)
{
    obs::ObsOptions options;
    int out = 0;
    for (int in = 0; in < argc; ++in) {
        const std::string_view arg(argv[in]);
        const auto next = [&](std::string_view option) {
            if (in + 1 >= argc)
                fatal(option, " needs a file path");
            return std::string(argv[++in]);
        };
        if (arg == "--self-trace") {
            options.selfTracePath = next("--self-trace");
        } else if (arg.rfind("--self-trace=", 0) == 0) {
            options.selfTracePath = std::string(arg.substr(13));
        } else if (arg == "--metrics-out") {
            options.metricsPath = next("--metrics-out");
        } else if (arg.rfind("--metrics-out=", 0) == 0) {
            options.metricsPath = std::string(arg.substr(14));
        } else if (arg == "--flightrec-path") {
            options.flightrecPath = next("--flightrec-path");
        } else if (arg.rfind("--flightrec-path=", 0) == 0) {
            options.flightrecPath = std::string(arg.substr(17));
        } else {
            argv[out++] = argv[in];
        }
    }
    argc = out;
    if (options.selfTracePath.empty()) {
        const char *env = std::getenv("LAGALYZER_SELF_TRACE");
        if (env != nullptr && env[0] != '\0')
            options.selfTracePath = env;
    }
    if (options.metricsPath.empty()) {
        const char *env = std::getenv("LAGALYZER_METRICS_OUT");
        if (env != nullptr && env[0] != '\0')
            options.metricsPath = env;
    }
    if (options.flightrecPath.empty()) {
        const char *env = std::getenv("LAGALYZER_FLIGHTREC");
        if (env != nullptr && env[0] != '\0')
            options.flightrecPath = env;
    }
    if (options.selfTracePath.empty() && options.metricsPath.empty())
        return options;
    if (options.selfTracePath == options.metricsPath)
        fatal("--self-trace and --metrics-out must differ");
    return options;
}

} // namespace lag::app
