#include "session_runner.hh"

#include "background.hh"
#include "handlers.hh"
#include "lila/agent.hh"
#include "user_script.hh"
#include "util/hash.hh"

namespace lag::app
{

std::uint64_t
sessionSeed(const AppParams &params, std::uint32_t session_index)
{
    Fnv1aHasher hasher;
    hasher.addValue(params.baseSeed);
    hasher.addString(params.name);
    hasher.addValue(session_index);
    return hasher.digest();
}

SessionRunResult
runSession(const AppParams &params, std::uint32_t session_index,
           const SessionOptions &options)
{
    const std::uint64_t seed = sessionSeed(params, session_index);
    SplitMix64 seeder(seed);

    lila::LilaConfig lila_config;
    lila_config.filterThreshold = options.filterThreshold;
    lila::LilaAgent agent(lila_config);

    jvm::JvmConfig vm_config;
    vm_config.cores = options.cores;
    vm_config.samplePeriod = options.samplePeriod;
    vm_config.dispatchOverhead = usToNs(80);
    vm_config.instrumentationOverhead =
        options.instrumentationOverhead;
    vm_config.heap.youngCapacityBytes = params.youngCapacityBytes;
    if (params.majorPauseMedian > 0)
        vm_config.heap.majorPauseMedian = params.majorPauseMedian;
    vm_config.seed = seeder.next();

    jvm::Jvm vm(vm_config, agent);
    // Template content is seeded per application (not per session):
    // the same handler code exists in every session of a real app,
    // which is what makes cross-session pattern merging meaningful.
    Fnv1aHasher template_seeder;
    template_seeder.addValue(params.baseSeed);
    template_seeder.addString(params.name);
    template_seeder.addString("templates");
    HandlerFactory factory(params, seeder.next(),
                           template_seeder.digest());

    vm.createEventDispatchThread();
    for (std::size_t i = 0; i < params.timers.size(); ++i) {
        vm.createThread(params.timers[i].name, false,
                        std::make_shared<TimerProgram>(
                            params, i, factory, seeder.next()),
                        {{"java.lang.Thread", "run"},
                         {"javax.swing.Timer", "run"}});
    }
    for (std::size_t i = 0; i < params.loaders.size(); ++i) {
        vm.createThread(params.loaders[i].name, false,
                        std::make_shared<LoaderProgram>(
                            params, i, factory, seeder.next()),
                        {{"java.lang.Thread", "run"},
                         {params.appPackage + ".io.ProjectLoader",
                          "run"}});
    }
    for (std::size_t i = 0; i < params.hogs.size(); ++i) {
        vm.createThread(params.hogs[i].name, false,
                        std::make_shared<HogProgram>(params, i,
                                                     seeder.next()),
                        {{"java.lang.Thread", "run"}});
    }

    UserScript user(vm, params, factory, seeder.next());

    agent.beginSession(params.name, session_index, seed,
                       options.samplePeriod, 0);
    vm.start();
    user.start();
    vm.run(params.sessionLength);

    SessionRunResult result;
    result.trace = agent.finishSession(vm.now());
    result.vmStats = vm.stats();
    result.userEvents = user.eventsPosted();
    return result;
}

} // namespace lag::app
