/**
 * @file
 * Parameterization of the synthetic application models.
 *
 * Each of the paper's 14 benchmark applications (Table II) is
 * modeled as an AppParams instance: rates and cost distributions for
 * user input handling, painting, native calls and allocation, plus
 * background-thread specs and per-app quirks (explicit System.gc()
 * calls, combo-box sleeps, modal-dialog waits, monitor contention).
 * The catalog in catalog.cc holds the calibrated values; this header
 * defines their meaning.
 *
 * Durations are medians of lognormal draws with the given sigma —
 * the heavy upper tail is what makes a small fraction of episodes
 * perceptible, as in the paper's applications.
 */

#ifndef LAG_APP_PARAMS_HH
#define LAG_APP_PARAMS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "obs/scope.hh"
#include "util/types.hh"

namespace lag::app
{

/** A lognormal duration distribution (median + spread + clamp). */
struct CostModel
{
    DurationNs median = 0;
    double sigma = 0.5;
    DurationNs min = 0;
    DurationNs max = 0;

    /** Convenience constructor helper used by the catalog. */
    static CostModel
    of(DurationNs median, double sigma, DurationNs min, DurationNs max)
    {
        return CostModel{median, sigma, min, max};
    }
};

/** A periodic background thread posting events to the GUI queue
 * (animation timers, progress-bar updaters). */
struct TimerSpec
{
    std::string name;
    DurationNs period = 0;

    /** True: posts a repaint (output episode); false: posts an
     * asynchronous model update (async episode). */
    bool postsRepaint = false;

    /** Cost of the posted handler on the EDT. */
    CostModel handlerCost;

    /** Allocation during the handler, bytes per ms of its work. */
    std::uint64_t handlerAllocPerMs = 0;

    /** Start/stop window within the session (fractions of session
     * length); an animation may not run the whole time. */
    double activeFrom = 0.0;
    double activeTo = 1.0;
};

/** A background thread that burns CPU for a while (project loading,
 * background indexing), competing with the EDT for cores. */
struct LoaderSpec
{
    std::string name;
    double startAt = 0.0;  ///< fraction of session length
    double endAt = 1.0;    ///< stops when its window closes
    DurationNs chunkCost = 0; ///< CPU per chunk between yields
    /** Sleep between chunks; controls the duty cycle and thus how
     * hard the loader competes with the EDT (Figure 7). */
    DurationNs restBetweenChunks = 0;
    std::uint64_t allocPerMs = 0;
    double postProb = 0.0; ///< chance to post an async update/chunk
    CostModel postHandlerCost;
};

/** A background thread that periodically holds a monitor, creating
 * contention with listeners that need the same monitor. */
struct HogSpec
{
    std::string name;
    DurationNs period = 0;
    CostModel holdCost;
    int monitorId = 0;
};

/** Full behavioural model of one application. */
struct AppParams
{
    /**
     * Table II identity.
     * @{
     */
    std::string name;
    std::string version;
    int classCount = 0;
    std::string description;
    /** @} */

    /** Package prefix of generated application class names. */
    std::string appPackage;

    /** Target session length. */
    DurationNs sessionLength = secToNs(480);

    /**
     * User activity: interaction bursts per second of session time
     * and the mix of burst kinds (shares should sum to ~1).
     * @{
     */
    double actionsPerSec = 1.0;
    double typingShare = 0.3;
    double clickShare = 0.4;
    double dragShare = 0.3;
    /** @} */

    /** Typing bursts: mean characters and keystroke rate. */
    double typingBurstLen = 12.0;
    double typingRate = 7.0;

    /** Drag bursts: mean mouse-move events and event rate. */
    double dragBurstLen = 80.0;
    double dragRate = 200.0;

    /** Post a repaint every N drag events (continuous canvas
     * feedback while drawing); 0 disables. */
    int dragRepaintEvery = 0;

    /**
     * Handler cost models per input kind. Typing and dragging are
     * normally sub-threshold; clicks carry the perceptible tail.
     * @{
     */
    CostModel typeCost = CostModel::of(usToNs(350), 0.5, usToNs(30),
                                       msToNs(20));
    CostModel dragCost = CostModel::of(usToNs(300), 0.5, usToNs(30),
                                       msToNs(15));
    CostModel clickCost = CostModel::of(msToNs(6), 1.0, usToNs(200),
                                        msToNs(600));
    /** Probability that a click hits a heavy operation. */
    double heavyClickProb = 0.08;
    CostModel heavyClickCost = CostModel::of(msToNs(120), 0.6,
                                             msToNs(30), secToNs(3));
    /** @} */

    /**
     * Painting. Inputs may repaint synchronously (paint child inside
     * the listener) or post a repaint (separate output episode);
     * some posted repaints go through the repaint-manager path that
     * looks asynchronous (async wrapping paint, paper §IV.C).
     * @{
     */
    double paintInListenerProb = 0.35;
    double postRepaintProb = 0.3;
    double asyncRepaintShare = 0.15;
    int paintDepthMin = 2;
    int paintDepthMax = 4;
    double paintFanout = 1.3; ///< mean extra children per paint level
    CostModel paintNodeCost = CostModel::of(msToNs(2), 0.9,
                                            usToNs(100), msToNs(400));
    /** Standalone system repaints per second (window damage etc.). */
    double systemRepaintRate = 0.2;
    /** @} */

    /**
     * Native calls inside handlers/paints (JNI, Table I "Native").
     * @{
     */
    double nativeInPaintProb = 0.12;
    double nativeInListenerProb = 0.04;
    CostModel nativeCost = CostModel::of(msToNs(3), 1.0, usToNs(100),
                                         msToNs(900));
    /** @} */

    /** Allocation rate of handler work, bytes per ms of CPU. */
    std::uint64_t allocPerMsWork = 40 << 10;

    /** Young-generation capacity for this app's VM. */
    std::uint64_t youngCapacityBytes = 24ull << 20;

    /** Major-collection pause median override; 0 keeps the heap
     * default (Arabeske's explicit collections run on a smaller
     * retained set than the default models). */
    DurationNs majorPauseMedian = 0;

    /**
     * Quirks observed in the paper's study.
     * @{
     */
    /** Probability a click handler calls System.gc() (Arabeske). */
    double explicitGcProb = 0.0;
    /** Combo-box blink sleep inside the Apple toolkit (Euclide; the
     * paper found every Thread.sleep came from this code). */
    double comboSleepProb = 0.0;
    CostModel comboSleep = CostModel::of(msToNs(350), 0.3, msToNs(120),
                                         msToNs(900));
    /** Modal-dialog event-processing wait (jEdit). */
    double modalWaitProb = 0.0;
    CostModel modalWait = CostModel::of(msToNs(250), 0.5, msToNs(60),
                                        secToNs(2));
    /** Listener-side monitor acquisition (FreeMind display config);
     * pairs with a HogSpec holding the same monitor. */
    double contentionProb = 0.0;
    int contentionMonitor = 1;
    /** @} */

    /**
     * One-time extra cost the first time a handler class runs
     * (class loading / JIT warm-up) — produces the paper's "once"
     * patterns whose first episode is slow.
     */
    CostModel firstUseCost = CostModel::of(msToNs(10), 1.0, msToNs(2),
                                           msToNs(400));

    /**
     * Pattern-variety knobs: the number of distinct handler and
     * paint component classes the generator draws from, and the
     * Zipf-like skew of their popularity (larger skew → fewer
     * patterns dominate → steeper Figure 3 curve).
     * @{
     */
    int listenerClassCount = 18;
    int paintClassCount = 14;
    double classSkew = 1.2;

    /**
     * Concentration of the template pool (Chinese-restaurant
     * process): the probability of a fresh episode structure is
     * concentration / (n + concentration) after n episodes. Larger
     * values → more distinct patterns (Table III "Dist") and more
     * singletons ("One-Ep").
     */
    double patternConcentration = 60.0;

    /** Concentration of the repaint template pool; negative means
     * 0.6 x patternConcentration. Repaint-heavy apps need this
     * decoupled (GanttProject's pattern variety is mostly paints;
     * Arabeske's mostly clicks). */
    double repaintConcentration = -1.0;

    /** Multiplicative lognormal jitter applied to every node cost
     * when a template is instantiated; creates the within-pattern
     * timing variation behind the "sometimes" occurrence class. */
    double costJitterSigma = 0.45;
    /** @} */

    /** Share of handler work nodes attributed to runtime-library
     * classes (drives Figure 6's app/library split). */
    double libraryTimeShare = 0.5;

    /** Background threads. @{ */
    std::vector<TimerSpec> timers;
    std::vector<LoaderSpec> loaders;
    std::vector<HogSpec> hogs;
    /** @} */

    /** Base seed; combined with the session index. */
    std::uint64_t baseSeed = 0x1a6a1721;

    /** Canonical dump of every parameter, used as the trace-cache
     * key so stale caches are regenerated after recalibration. */
    std::string fingerprint() const;
};

/** Default engine worker count: one per hardware thread. */
std::uint32_t defaultJobs();

/**
 * Extract a `--jobs N` (or `--jobs=N`) option from a command line,
 * compacting argv in place and decrementing @p argc for every
 * consumed argument. Returns the requested worker count, 0 when the
 * option is absent (meaning "use defaultJobs()"); fatal() on a
 * malformed or non-positive value. Harness mains feed the result
 * into StudyConfig::jobs, which plumbs it to the engine pool.
 */
std::uint32_t parseJobsOption(int &argc, char **argv);

/** Analysis-cache limits parsed off a command line; 0 = unlimited. */
struct CacheLimitOptions
{
    std::uint64_t maxBytes = 0;
    std::uint64_t maxAgeSeconds = 0;
};

/**
 * Extract `--cache-max-bytes N[k|M|G]` and `--cache-max-age SECONDS`
 * (space- or `=`-separated) from a command line, compacting argv in
 * place like parseJobsOption. Returns the limits, zero-valued where
 * absent; fatal() on a malformed value. Harness mains feed the
 * result into StudyConfig::cacheMaxBytes / cacheMaxAgeSeconds.
 */
CacheLimitOptions parseCacheLimitOptions(int &argc, char **argv);

/**
 * Extract a `--no-incremental` flag from a command line, compacting
 * argv in place like parseJobsOption. Returns true when the flag
 * (or a nonzero LAGALYZER_NO_INCREMENTAL environment variable) asks
 * for the escape hatch: recompute every session instead of
 * answering aggregates from cached `.ares` analysis entries.
 * Execution-only, like `--jobs`: results are byte-identical either
 * way. Harness mains feed `!result` into StudyConfig::incremental.
 */
bool parseNoIncrementalOption(int &argc, char **argv);

/** lagd listener options parsed off a command line. */
struct ServeOptions
{
    /** TCP port; 0 = ephemeral (lagd prints the bound port). */
    std::uint16_t port = 8437;

    /** In-flight connection cap (admission gate). */
    std::size_t maxConnections = 64;
};

/**
 * Extract `--port N` and `--max-connections N` (space- or
 * `=`-separated) from a command line, compacting argv in place like
 * parseJobsOption. Where `--port` is absent, the LAGALYZER_SERVE_PORT
 * environment variable fills in; the default is 8437. Port 0 asks
 * for an ephemeral port. fatal() on malformed values.
 */
ServeOptions parseServeOptions(int &argc, char **argv);

/**
 * Extract `--self-trace PATH` and `--metrics-out PATH` (space- or
 * `=`-separated) from a command line, compacting argv in place like
 * parseJobsOption. Where a flag is absent, its LAGALYZER_SELF_TRACE /
 * LAGALYZER_METRICS_OUT environment equivalent fills in, so batch
 * harnesses can profile without editing every invocation. Returns
 * the destinations (empty = off); fatal() on a flag without a value.
 * Callers pass the result to obs::install().
 */
obs::ObsOptions parseObsOptions(int &argc, char **argv);

} // namespace lag::app

#endif // LAG_APP_PARAMS_HH
