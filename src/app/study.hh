/**
 * @file
 * The characterization study: 14 applications x 4 sessions.
 *
 * The paper's evaluation analyzes roughly 7.5 hours of interactive
 * sessions. Simulating them takes a while, so the Study simulates
 * once and caches every trace on disk (written and re-read through
 * the production trace codec); all bench harnesses share the cache.
 * The cache is keyed by a fingerprint of the full configuration —
 * recalibrating any model parameter invalidates it.
 *
 * Simulation, encoding and decoding fan out across the engine's
 * work-stealing pool (src/engine). Parallelism is execution-only:
 * every session is derived from its (app, session) seed and written
 * to its own [app][session] slot, so the study's output is
 * byte-identical to a serial run at any worker count.
 */

#ifndef LAG_APP_STUDY_HH
#define LAG_APP_STUDY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/session.hh"
#include "params.hh"
#include "session_runner.hh"

namespace lag::app
{

/** Study-wide configuration. */
struct StudyConfig
{
    std::vector<AppParams> apps;
    std::uint32_t sessionsPerApp = 4;
    SessionOptions sessionOptions;

    /** LagAlyzer's perceptibility threshold (paper: 100 ms). */
    DurationNs perceptibleThreshold = msToNs(100);

    /** Trace cache directory. */
    std::string cacheDir = "lagalyzer-cache";

    /**
     * Engine worker threads for the simulate/encode/decode fan-out;
     * 0 = one per hardware thread. Execution-only knob: results are
     * byte-identical at any worker count, so this is deliberately
     * NOT part of fingerprint().
     */
    std::uint32_t jobs = 0;

    /**
     * Analysis-cache eviction budget: total bytes of .ares entries
     * to keep and the maximum entry age in seconds; 0 = unlimited.
     * Like jobs, these only bound the cache on disk — never what a
     * run computes — so they are NOT part of fingerprint().
     * @{
     */
    std::uint64_t cacheMaxBytes = 0;
    std::uint64_t cacheMaxAgeSeconds = 0;
    /** @} */

    /**
     * Answer cross-session aggregates from cached `.ares` analysis
     * entries where possible (engine::aggregateFromCache), decoding
     * only the sessions that miss. `--no-incremental` turns this
     * off. Execution-only: results are byte-identical either way,
     * so the flag is NOT part of fingerprint().
     */
    bool incremental = true;

    /** The paper's full study. */
    static StudyConfig paperStudy();

    /**
     * A scaled-down variant (shorter sessions, reduced input rates)
     * for tests and quick demos; same structure, much faster.
     */
    static StudyConfig quickStudy(int session_seconds = 30);

    /** Cache key over every parameter. */
    std::string fingerprint() const;
};

/** One application's sessions, loaded for analysis. */
struct AppSessions
{
    AppParams params;
    std::vector<core::Session> sessions;
};

/** Runs and caches the study. */
class Study
{
  public:
    explicit Study(StudyConfig config);

    const StudyConfig &config() const { return config_; }

    /**
     * Make sure every session trace exists in the cache, simulating
     * the missing ones. Missing sessions are simulated and encoded
     * in parallel on the engine pool (config().jobs workers); the
     * output is byte-identical to the serial path at any worker
     * count. Returns the trace file paths indexed [app][session].
     */
    std::vector<std::vector<std::string>> ensureTraces();

    /**
     * Validate the cache directory against this configuration
     * without touching any trace: a stale cache (manifest mismatch)
     * is cleared — traces and analysis entries both — and the
     * manifest rewritten. The incremental aggregation path calls
     * this instead of ensureTraces() so a warm analysis cache does
     * zero trace work; loadSession() regenerates any individual
     * trace a cache miss actually needs.
     */
    void validate();

    /**
     * Load one session, regenerating it when its trace file is
     * missing, truncated or corrupted (the codec's checksum and
     * bounds checks surface those as trace::TraceError). Safe to
     * call concurrently for distinct (app, session) pairs.
     */
    core::Session loadSession(std::size_t app_index,
                              std::uint32_t session_index) const;

    /** Load (and, if needed, first generate) one app's sessions. */
    AppSessions loadApp(std::size_t app_index);

    /**
     * Load every app (memory-heavy; benches prefer per-app).
     * Sessions decode in parallel on the engine pool; the result is
     * merged deterministically by [app][session] index.
     */
    std::vector<AppSessions> loadAll();

  private:
    /** Path of one session's trace file. */
    std::string tracePath(std::size_t app_index,
                          std::uint32_t session_index) const;

    /** True when the cache manifest matches this configuration. */
    bool cacheValid() const;

    /** Write the manifest (temp file + atomic rename). */
    void writeManifest() const;

    /** One-time manifest check; clears a stale cache. */
    void validateCache();

    /** Simulate and encode the listed sessions on the engine. */
    void
    simulateMissing(const std::vector<std::vector<std::uint32_t>> &missing);

    StudyConfig config_;
    bool validated_ = false;
};

} // namespace lag::app

#endif // LAG_APP_STUDY_HH
