/**
 * @file
 * The characterization study: 14 applications x 4 sessions.
 *
 * The paper's evaluation analyzes roughly 7.5 hours of interactive
 * sessions. Simulating them takes a while, so the Study simulates
 * once and caches every trace on disk (written and re-read through
 * the production trace codec); all bench harnesses share the cache.
 * The cache is keyed by a fingerprint of the full configuration —
 * recalibrating any model parameter invalidates it.
 */

#ifndef LAG_APP_STUDY_HH
#define LAG_APP_STUDY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/session.hh"
#include "params.hh"
#include "session_runner.hh"

namespace lag::app
{

/** Study-wide configuration. */
struct StudyConfig
{
    std::vector<AppParams> apps;
    std::uint32_t sessionsPerApp = 4;
    SessionOptions sessionOptions;

    /** LagAlyzer's perceptibility threshold (paper: 100 ms). */
    DurationNs perceptibleThreshold = msToNs(100);

    /** Trace cache directory. */
    std::string cacheDir = "lagalyzer-cache";

    /** The paper's full study. */
    static StudyConfig paperStudy();

    /**
     * A scaled-down variant (shorter sessions, reduced input rates)
     * for tests and quick demos; same structure, much faster.
     */
    static StudyConfig quickStudy(int session_seconds = 30);

    /** Cache key over every parameter. */
    std::string fingerprint() const;
};

/** One application's sessions, loaded for analysis. */
struct AppSessions
{
    AppParams params;
    std::vector<core::Session> sessions;
};

/** Runs and caches the study. */
class Study
{
  public:
    explicit Study(StudyConfig config);

    const StudyConfig &config() const { return config_; }

    /**
     * Make sure every session trace exists in the cache, simulating
     * the missing ones. Returns the trace file paths indexed
     * [app][session].
     */
    std::vector<std::vector<std::string>> ensureTraces();

    /** Load (and, if needed, first generate) one app's sessions. */
    AppSessions loadApp(std::size_t app_index);

    /** Load every app (memory-heavy; benches prefer per-app). */
    std::vector<AppSessions> loadAll();

  private:
    /** Path of one session's trace file. */
    std::string tracePath(std::size_t app_index,
                          std::uint32_t session_index) const;

    /** True when the cache manifest matches this configuration. */
    bool cacheValid() const;

    /** Write the manifest after (re)generation. */
    void writeManifest() const;

    StudyConfig config_;
    bool validated_ = false;
};

} // namespace lag::app

#endif // LAG_APP_STUDY_HH
