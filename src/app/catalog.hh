/**
 * @file
 * The 14 benchmark application models (paper Table II).
 *
 * Each entry carries the paper's identity data (name, version,
 * class count, description) and behavioural parameters calibrated
 * against the paper's evaluation: Table III's episode statistics
 * and the per-app characteristics called out in §IV (Arabeske's
 * System.gc() calls, JMol's animation timer, Euclide's combo-box
 * sleeps, jEdit's modal waits, FreeMind's monitor contention,
 * FindBugs' background project load, GanttProject's deeply nested
 * paints, JFreeChart's native rendering, JHotDraw's app-side bezier
 * math, NetBeans' initialization effects).
 */

#ifndef LAG_APP_CATALOG_HH
#define LAG_APP_CATALOG_HH

#include <string_view>
#include <vector>

#include "params.hh"

namespace lag::app
{

/** All 14 application models, in the paper's Table II order. */
std::vector<AppParams> defaultCatalog();

/** Look up one model by name; fatal() if unknown. */
AppParams catalogApp(std::string_view name);

} // namespace lag::app

#endif // LAG_APP_CATALOG_HH
