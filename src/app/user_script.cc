#include "user_script.hh"

#include <algorithm>

namespace lag::app
{

UserScript::UserScript(jvm::Jvm &vm, const AppParams &params,
                       HandlerFactory &factory, std::uint64_t seed)
    : vm_(vm), params_(params), factory_(factory), rng_(seed)
{
}

void
UserScript::start()
{
    scheduleNextAction(
        static_cast<DurationNs>(rng_.exponential(
            static_cast<double>(kSecond) /
            std::max(0.01, params_.actionsPerSec))));
    if (params_.systemRepaintRate > 0.0)
        scheduleSystemRepaint();
}

void
UserScript::scheduleNextAction(DurationNs delay)
{
    vm_.eventQueue().scheduleAfter(std::max<DurationNs>(delay, 1000),
                                   [this] { performAction(); });
}

void
UserScript::performAction()
{
    const double mix = rng_.nextDouble();
    if (mix < params_.typingShare) {
        const int chars =
            1 + rng_.poisson(std::max(0.0, params_.typingBurstLen - 1));
        continueTyping(chars);
    } else if (mix < params_.typingShare + params_.dragShare) {
        const int moves =
            1 + rng_.poisson(std::max(0.0, params_.dragBurstLen - 1));
        continueDrag(moves);
    } else {
        vm_.postGuiEvent(factory_.clickEvent());
        ++events_posted_;
        // postRepaintProb is an expected count: a command may dirty
        // several panes, each repainting separately.
        int repaints = static_cast<int>(params_.postRepaintProb);
        if (rng_.chance(params_.postRepaintProb -
                        static_cast<double>(repaints))) {
            ++repaints;
        }
        for (int i = 0; i < repaints; ++i) {
            const bool via_manager =
                rng_.chance(params_.asyncRepaintShare);
            vm_.postGuiEvent(factory_.repaintEvent(via_manager));
            ++events_posted_;
        }
        scheduleNextAction(static_cast<DurationNs>(rng_.exponential(
            static_cast<double>(kSecond) /
            std::max(0.01, params_.actionsPerSec))));
    }
}

void
UserScript::continueTyping(int remaining)
{
    vm_.postGuiEvent(factory_.typingEvent());
    ++events_posted_;
    if (remaining > 1) {
        const auto gap = static_cast<DurationNs>(
            rng_.exponential(static_cast<double>(kSecond) /
                             std::max(0.5, params_.typingRate)));
        vm_.eventQueue().scheduleAfter(
            std::max<DurationNs>(gap, usToNs(200)),
            [this, remaining] { continueTyping(remaining - 1); });
    } else {
        scheduleNextAction(static_cast<DurationNs>(rng_.exponential(
            static_cast<double>(kSecond) /
            std::max(0.01, params_.actionsPerSec))));
    }
}

void
UserScript::continueDrag(int remaining)
{
    vm_.postGuiEvent(factory_.dragEvent());
    ++events_posted_;
    ++drag_events_;
    if (params_.dragRepaintEvery > 0 &&
        drag_events_ % static_cast<std::uint64_t>(
                           params_.dragRepaintEvery) == 0) {
        // Continuous canvas feedback while the user draws.
        vm_.postGuiEvent(factory_.repaintEvent(
            rng_.chance(params_.asyncRepaintShare)));
        ++events_posted_;
    }
    if (remaining > 1) {
        const auto gap = static_cast<DurationNs>(
            static_cast<double>(kSecond) /
            std::max(1.0, params_.dragRate));
        vm_.eventQueue().scheduleAfter(
            std::max<DurationNs>(gap, usToNs(50)),
            [this, remaining] { continueDrag(remaining - 1); });
    } else {
        // A drag usually ends with a final repaint of the result.
        if (rng_.chance(params_.postRepaintProb)) {
            vm_.postGuiEvent(factory_.repaintEvent(
                rng_.chance(params_.asyncRepaintShare)));
            ++events_posted_;
        }
        scheduleNextAction(static_cast<DurationNs>(rng_.exponential(
            static_cast<double>(kSecond) /
            std::max(0.01, params_.actionsPerSec))));
    }
}

void
UserScript::scheduleSystemRepaint()
{
    const auto gap = static_cast<DurationNs>(
        rng_.exponential(static_cast<double>(kSecond) /
                         params_.systemRepaintRate));
    vm_.eventQueue().scheduleAfter(
        std::max<DurationNs>(gap, msToNs(5)), [this] {
            vm_.postGuiEvent(factory_.repaintEvent(
                rng_.chance(params_.asyncRepaintShare)));
            ++events_posted_;
            scheduleSystemRepaint();
        });
}

} // namespace lag::app
