/**
 * @file
 * Background-thread programs used by the application models.
 *
 * Three archetypes cover everything the paper's study attributes to
 * background activity:
 *
 *  - TimerProgram: periodic poster (animation repaint timers like
 *    JMol's 40 ms molecule animation, progress-bar updaters like
 *    FindBugs');
 *  - LoaderProgram: CPU-burning background work over a window of
 *    the session (FindBugs' 3-minute project load, NetBeans
 *    indexing) that competes with the EDT for cores and optionally
 *    posts asynchronous UI updates;
 *  - HogProgram: periodically holds a monitor that listeners also
 *    need (FreeMind's display-configuration contention).
 */

#ifndef LAG_APP_BACKGROUND_HH
#define LAG_APP_BACKGROUND_HH

#include <cstdint>

#include "handlers.hh"
#include "jvm/program.hh"
#include "params.hh"
#include "util/random.hh"

namespace lag::app
{

/** Periodic GUI-event poster. */
class TimerProgram : public jvm::ThreadProgram
{
  public:
    TimerProgram(const AppParams &params, std::size_t timer_index,
                 HandlerFactory &factory, std::uint64_t seed);

    jvm::ProgramStep next(jvm::Jvm &vm, jvm::VThread &thread) override;

  private:
    const AppParams &params_;
    std::size_t index_;
    HandlerFactory &factory_;
    Rng rng_;
    bool started_ = false;
};

/** Background CPU burner with optional async UI updates. */
class LoaderProgram : public jvm::ThreadProgram
{
  public:
    LoaderProgram(const AppParams &params, std::size_t loader_index,
                  HandlerFactory &factory, std::uint64_t seed);

    jvm::ProgramStep next(jvm::Jvm &vm, jvm::VThread &thread) override;

  private:
    const AppParams &params_;
    std::size_t index_;
    HandlerFactory &factory_;
    Rng rng_;
    bool started_ = false;
    bool rest_next_ = false;
};

/** Periodic monitor holder. */
class HogProgram : public jvm::ThreadProgram
{
  public:
    HogProgram(const AppParams &params, std::size_t hog_index,
               std::uint64_t seed);

    jvm::ProgramStep next(jvm::Jvm &vm, jvm::VThread &thread) override;

  private:
    const AppParams &params_;
    std::size_t index_;
    Rng rng_;
    bool hold_next_ = false;
};

} // namespace lag::app

#endif // LAG_APP_BACKGROUND_HH
