#include "handlers.hh"

#include <algorithm>
#include <array>
#include <cmath>
#include <functional>

#include "util/logging.hh"

namespace lag::app
{

namespace
{

using jvm::ActivityKind;
using jvm::ActivityNode;
using jvm::Frame;

const std::array<Frame, 5> kLibraryListenerFrames = {{
    {"javax.swing.plaf.basic.BasicButtonListener", "actionPerformed"},
    {"javax.swing.JComboBox", "actionPerformed"},
    {"javax.swing.text.DefaultCaret", "mouseDragged"},
    {"javax.swing.plaf.basic.BasicTreeUI$Handler", "valueChanged"},
    {"javax.swing.Timer$DoPostEvent", "actionPerformed"},
}};

const std::array<Frame, 10> kLibraryPaintFrames = {{
    {"javax.swing.JPanel", "paintComponent"},
    {"javax.swing.JToolBar", "paint"},
    {"javax.swing.JScrollPane", "paint"},
    {"javax.swing.JViewport", "paint"},
    {"javax.swing.JTable", "paintComponent"},
    {"javax.swing.JTree", "paintComponent"},
    {"javax.swing.JComponent", "paintChildren"},
    {"javax.swing.CellRendererPane", "paintComponent"},
    {"javax.swing.JSplitPane", "paint"},
    {"javax.swing.JTabbedPane", "paintComponent"},
}};

const std::array<Frame, 8> kLibraryWorkFrames = {{
    {"java.util.HashMap", "get"},
    {"java.util.ArrayList", "addAll"},
    {"java.lang.StringBuilder", "append"},
    {"javax.swing.text.GapContent", "insertString"},
    {"java.awt.geom.AffineTransform", "transform"},
    {"sun.font.FontDesignMetrics", "stringWidth"},
    {"javax.swing.RepaintManager", "validateInvalidComponents"},
    {"java.util.TreeMap", "put"},
}};

const std::array<Frame, 6> kNativeFrames = {{
    {"sun.java2d.loops.DrawLine", "DrawLine"},
    {"sun.java2d.loops.FillRect", "FillRect"},
    {"sun.java2d.loops.Blit", "Blit"},
    {"sun.awt.image.ImageRepresentation", "setBytePixels"},
    {"sun.java2d.OSXOffScreenSurfaceData", "xorSurfacePixels"},
    {"sun.font.StrikeCache", "getGlyphImagePtrs"},
}};

const std::array<const char *, 6> kListenerMethods = {
    "actionPerformed", "mouseClicked", "keyPressed",
    "stateChanged",    "mousePressed", "valueChanged",
};

const std::array<const char *, 6> kWorkMethods = {
    "update", "compute", "layout", "rebuild", "apply", "resolve",
};

const std::array<const char *, 20> kClassStems = {
    "Canvas",  "Document", "Selection", "Command", "Tool",
    "Layer",   "Chart",    "Node",      "View",    "Panel",
    "Editor",  "Manager",  "Renderer",  "Outline", "Model",
    "Diagram", "Element",  "Shape",     "Buffer",  "Palette",
};

} // namespace

DurationNs
drawCost(Rng &rng, const CostModel &cost)
{
    return rng.duration(cost.median, cost.sigma, cost.min, cost.max);
}

HandlerFactory::HandlerFactory(const AppParams &params,
                               std::uint64_t session_seed,
                               std::uint64_t template_seed)
    : params_(params), rng_(session_seed),
      click_pool_(template_seed ^ 0x636c69636bULL),
      repaint_pool_(template_seed ^ 0x7265706169ULL)
{
    lag_assert(!params_.appPackage.empty(), "app package required");

    for (int i = 0; i < params_.listenerClassCount; ++i) {
        app_listener_classes_.push_back(
            params_.appPackage + ".ui." +
            kClassStems[static_cast<std::size_t>(i) %
                        kClassStems.size()] +
            "Listener" + (i >= static_cast<int>(kClassStems.size())
                              ? std::to_string(i)
                              : ""));
    }
    for (int i = 0; i < params_.paintClassCount; ++i) {
        app_paint_classes_.push_back(
            params_.appPackage + ".ui." +
            kClassStems[static_cast<std::size_t>(i) %
                        kClassStems.size()] +
            (i % 2 == 0 ? "Panel" : "View") +
            (i >= static_cast<int>(kClassStems.size())
                 ? std::to_string(i)
                 : ""));
    }
    for (int i = 0; i < 12; ++i) {
        app_work_classes_.push_back(
            params_.appPackage + ".model." +
            kClassStems[static_cast<std::size_t>(i) %
                        kClassStems.size()]);
    }

    // Canonical sub-threshold handlers: one structure each, so the
    // profiler's filter sees a homogeneous stream of short episodes.
    {
        jvm::ActivityBuilder typing(
            ActivityKind::Listener,
            params_.appPackage + ".ui.DocumentListener", "keyTyped");
        typing.cost(params_.typeCost.median);
        typing_template_ = std::move(typing).buildShared();

        jvm::ActivityBuilder drag(ActivityKind::Listener,
                                  params_.appPackage +
                                      ".ui.CanvasMotionListener",
                                  "mouseDragged");
        drag.cost(params_.dragCost.median);
        drag_template_ = std::move(drag).buildShared();
    }

    for (std::size_t i = 0; i < params_.timers.size(); ++i)
        timer_pools_.emplace_back(template_seed ^ (0x74690000ULL + i));
    for (std::size_t i = 0; i < params_.loaders.size(); ++i)
        loader_pools_.emplace_back(template_seed ^ (0x6c6f0000ULL + i));
}

const std::string &
HandlerFactory::pickSkewed(Rng &rng,
                           const std::vector<std::string> &pool)
{
    lag_assert(!pool.empty(), "empty class pool");
    const double u = rng.nextDouble();
    const auto idx = static_cast<std::size_t>(
        std::pow(u, params_.classSkew) *
        static_cast<double>(pool.size()));
    return pool[std::min(idx, pool.size() - 1)];
}

Frame
HandlerFactory::workFrame(Rng &rng)
{
    if (rng.chance(params_.libraryTimeShare)) {
        return kLibraryWorkFrames[static_cast<std::size_t>(
            rng.uniformInt(0,
                                     kLibraryWorkFrames.size() - 1))];
    }
    return Frame{
        pickSkewed(rng, app_work_classes_),
        kWorkMethods[static_cast<std::size_t>(
            rng.uniformInt(0, kWorkMethods.size() - 1))]};
}

jvm::ActivityNode
HandlerFactory::makeNativeNode(Rng &rng)
{
    const Frame &frame = kNativeFrames[static_cast<std::size_t>(
        rng.uniformInt(0, kNativeFrames.size() - 1))];
    ActivityNode node;
    node.kind = ActivityKind::Native;
    node.frame = frame;
    node.selfCost = drawCost(rng, params_.nativeCost);
    return node;
}

jvm::ActivityNode
HandlerFactory::makePaintSubtree(Rng &rng, int depth)
{
    ActivityNode node;
    node.kind = ActivityKind::Paint;
    if (rng.chance(params_.libraryTimeShare)) {
        node.frame = kLibraryPaintFrames[static_cast<std::size_t>(
            rng.uniformInt(0, kLibraryPaintFrames.size() - 1))];
    } else {
        node.frame =
            Frame{pickSkewed(rng, app_paint_classes_), "paintComponent"};
    }
    node.selfCost = drawCost(rng, params_.paintNodeCost);
    if (depth > 1) {
        const int extra = rng.poisson(
            std::max(0.0, params_.paintFanout - 1.0));
        const int kids = std::min(3, 1 + extra);
        for (int i = 0; i < kids; ++i)
            node.children.push_back(makePaintSubtree(rng, depth - 1));
    }
    if (rng.chance(params_.nativeInPaintProb))
        node.children.push_back(makeNativeNode(rng));
    return node;
}

jvm::ActivityNode
HandlerFactory::makeClickTemplate(Rng &rng)
{
    Frame listener_frame;
    if (rng.chance(0.25)) {
        listener_frame =
            kLibraryListenerFrames[static_cast<std::size_t>(
                rng.uniformInt(0, kLibraryListenerFrames.size() - 1))];
    } else {
        listener_frame = Frame{
            pickSkewed(rng, app_listener_classes_),
            kListenerMethods[static_cast<std::size_t>(rng.uniformInt(
                0, kListenerMethods.size() - 1))]};
    }

    ActivityNode root;
    root.kind = ActivityKind::Listener;
    root.frame = listener_frame;

    // Explicit-GC command (Arabeske): the collection is requested
    // from a posted Runnable, not from an instrumented listener, so
    // the resulting episode has no Listener/Paint/Async intervals at
    // all — just the dispatch and the GC. These are the "empty"
    // perceptible episodes of the paper's §IV.C.
    if (rng.chance(params_.explicitGcProb)) {
        root.kind = ActivityKind::Plain;
        root.frame = Frame{params_.appPackage + ".command.GcRequest",
                           "run"};
        root.selfCost = usToNs(400);
        ActivityNode gc_call;
        gc_call.frame = Frame{"java.lang.System", "gc"};
        gc_call.selfCost = usToNs(150);
        gc_call.explicitGc = true;
        root.children.push_back(std::move(gc_call));
        assignAllocations(root, params_.allocPerMsWork);
        return root;
    }

    const bool heavy = rng.chance(params_.heavyClickProb);
    const DurationNs total = drawCost(
        rng_, heavy ? params_.heavyClickCost : params_.clickCost);
    root.selfCost = total / 6;

    const int workers = static_cast<int>(rng.uniformInt(1, 3));
    const DurationNs share =
        (total - root.selfCost) / static_cast<DurationNs>(workers);
    for (int i = 0; i < workers; ++i) {
        ActivityNode work;
        work.frame = workFrame(rng);
        work.selfCost = share;
        // Roughly half of the work happens inside nested listener
        // notifications (model/selection listeners fired by the
        // primary handler) — this is what gives episodes the tree
        // sizes of Table III's Descs/Depth columns.
        if (rng.chance(0.45)) {
            work.kind = ActivityKind::Listener;
            work.frame = Frame{
                pickSkewed(rng, app_listener_classes_),
                kListenerMethods[static_cast<std::size_t>(
                    rng.uniformInt(0, kListenerMethods.size() - 1))]};
            if (rng.chance(0.3)) {
                ActivityNode inner;
                inner.kind = ActivityKind::Listener;
                inner.frame = Frame{pickSkewed(rng, app_listener_classes_),
                                    "stateChanged"};
                inner.selfCost = work.selfCost / 2;
                work.selfCost -= inner.selfCost;
                work.children.push_back(std::move(inner));
            }
        }
        root.children.push_back(std::move(work));
    }

    if (rng.chance(params_.contentionProb)) {
        ActivityNode guarded;
        guarded.frame = Frame{"java.awt.Component$FlipBufferStrategy",
                              "showSubRegion"};
        guarded.selfCost = msToNs(2);
        guarded.monitorId = params_.contentionMonitor;
        root.children.push_back(std::move(guarded));
    }

    if (rng.chance(params_.comboSleepProb)) {
        ActivityNode blink;
        blink.frame =
            Frame{"com.apple.laf.AquaComboBoxButton", "blinkSelection"};
        blink.selfCost = usToNs(300);
        blink.sleepNs = params_.comboSleep.median; // re-drawn per use
        root.children.push_back(std::move(blink));
    }

    if (rng.chance(params_.modalWaitProb)) {
        ActivityNode modal;
        modal.frame = Frame{"java.awt.Dialog", "show"};
        modal.selfCost = msToNs(1);
        modal.waitNs = params_.modalWait.median; // re-drawn per use
        root.children.push_back(std::move(modal));
    }

    if (rng.chance(params_.nativeInListenerProb))
        root.children.push_back(makeNativeNode(rng));

    if (rng.chance(params_.paintInListenerProb)) {
        const int depth = static_cast<int>(rng.uniformInt(
            params_.paintDepthMin,
            std::max(params_.paintDepthMin, params_.paintDepthMax / 2)));
        root.children.push_back(makePaintSubtree(rng, depth));
    }

    assignAllocations(root, params_.allocPerMsWork);
    return root;
}

jvm::ActivityNode
HandlerFactory::makeRepaintTemplate(Rng &rng)
{
    // The standard Swing paint cascade from the window root (the
    // structure of the paper's Figure 1 episode).
    ActivityNode frame_paint;
    frame_paint.kind = ActivityKind::Paint;
    frame_paint.frame = Frame{"javax.swing.JFrame", "paint"};
    frame_paint.selfCost = usToNs(200);

    ActivityNode root_pane;
    root_pane.kind = ActivityKind::Paint;
    root_pane.frame = Frame{"javax.swing.JRootPane", "paint"};
    root_pane.selfCost = usToNs(150);

    ActivityNode layered;
    layered.kind = ActivityKind::Paint;
    layered.frame = Frame{"javax.swing.JLayeredPane", "paint"};
    layered.selfCost = usToNs(150);

    const int depth = static_cast<int>(rng.uniformInt(
        params_.paintDepthMin, params_.paintDepthMax));
    layered.children.push_back(makePaintSubtree(rng, std::max(2, depth - 2)));
    root_pane.children.push_back(std::move(layered));
    frame_paint.children.push_back(std::move(root_pane));
    assignAllocations(frame_paint, params_.allocPerMsWork);
    return frame_paint;
}

void
HandlerFactory::assignAllocations(jvm::ActivityNode &node,
                                  std::uint64_t bytes_per_ms) const
{
    if (node.selfCost > 0) {
        node.allocBytes = bytes_per_ms *
                          static_cast<std::uint64_t>(node.selfCost) /
                          static_cast<std::uint64_t>(kMillisecond);
    }
    for (auto &child : node.children)
        assignAllocations(child, bytes_per_ms);
}

jvm::ActivityNode
HandlerFactory::instantiate(const jvm::ActivityNode &node,
                            double multiplier, bool add_first_use)
{
    ActivityNode copy;
    copy.kind = node.kind;
    copy.frame = node.frame;
    copy.monitorId = node.monitorId;
    copy.explicitGc = node.explicitGc;
    copy.postAtEnd = node.postAtEnd;

    const double jitter =
        multiplier * std::exp(0.15 * rng_.gaussian());
    copy.selfCost =
        static_cast<DurationNs>(
            static_cast<double>(node.selfCost) * jitter);
    if (node.selfCost > 0 && node.allocBytes > 0) {
        copy.allocBytes = static_cast<std::uint64_t>(
            static_cast<double>(node.allocBytes) * jitter);
    }
    if (node.sleepNs > 0)
        copy.sleepNs = drawCost(rng_, params_.comboSleep);
    if (node.waitNs > 0)
        copy.waitNs = drawCost(rng_, params_.modalWait);

    if (add_first_use)
        copy.selfCost += drawCost(rng_, params_.firstUseCost);

    copy.children.reserve(node.children.size());
    for (const auto &child : node.children)
        copy.children.push_back(instantiate(child, multiplier, false));
    return copy;
}

template <typename MakeFn>
HandlerFactory::NodePtr
HandlerFactory::drawFromPool(Pool &pool, double alpha, double sigma,
                             MakeFn &&make)
{
    alpha = std::max(0.5, alpha);
    const double n = static_cast<double>(pool.totalUses);
    std::size_t index;
    if (pool.templates.empty() ||
        rng_.nextDouble() < alpha / (n + alpha)) {
        pool.templates.push_back(std::make_shared<const ActivityNode>(
            make(pool.templateRng)));
        pool.uses.push_back(0);
        pool.firstUsePending.push_back(true);
        index = pool.templates.size() - 1;
    } else {
        // Pick an existing template proportionally to popularity.
        std::uint64_t target = rng_.nextU64() % pool.totalUses;
        index = 0;
        while (index + 1 < pool.uses.size() &&
               target >= pool.uses[index]) {
            target -= pool.uses[index];
            ++index;
        }
    }
    ++pool.uses[index];
    ++pool.totalUses;
    const bool first = pool.firstUsePending[index];
    pool.firstUsePending[index] = false;
    const double multiplier = std::exp(sigma * rng_.gaussian());
    return std::make_shared<const ActivityNode>(
        instantiate(*pool.templates[index], multiplier, first));
}

jvm::GuiEvent
HandlerFactory::typingEvent()
{
    jvm::GuiEvent event;
    const double multiplier =
        std::exp(params_.typeCost.sigma * rng_.gaussian());
    event.handler = std::make_shared<const ActivityNode>(
        instantiate(*typing_template_, multiplier, false));
    return event;
}

jvm::GuiEvent
HandlerFactory::dragEvent()
{
    jvm::GuiEvent event;
    const double multiplier =
        std::exp(params_.dragCost.sigma * rng_.gaussian());
    event.handler = std::make_shared<const ActivityNode>(
        instantiate(*drag_template_, multiplier, false));
    return event;
}

jvm::GuiEvent
HandlerFactory::clickEvent()
{
    jvm::GuiEvent event;
    event.handler =
        drawFromPool(click_pool_, params_.patternConcentration,
                     params_.costJitterSigma,
                     [this](Rng &rng) { return makeClickTemplate(rng); });
    return event;
}

jvm::GuiEvent
HandlerFactory::repaintEvent(bool via_repaint_manager)
{
    jvm::GuiEvent event;
    const double alpha = params_.repaintConcentration >= 0.0
                             ? params_.repaintConcentration
                             : params_.patternConcentration * 0.6;
    event.handler =
        drawFromPool(repaint_pool_, alpha, params_.paintNodeCost.sigma,
                     [this](Rng &rng) { return makeRepaintTemplate(rng); });
    event.postedByBackground = via_repaint_manager;
    return event;
}

jvm::GuiEvent
HandlerFactory::timerEvent(std::size_t index)
{
    lag_assert(index < params_.timers.size(), "bad timer index");
    const TimerSpec &spec = params_.timers[index];
    jvm::GuiEvent event;
    event.postedByBackground = true;
    event.handler = drawFromPool(
        timer_pools_[index], 2.0, spec.handlerCost.sigma,
        [this, &spec](Rng &rng) {
        if (spec.postsRepaint) {
            ActivityNode tree = makeRepaintTemplate(rng);
            // Rescale the paint cascade to the timer's cost model so
            // an animation frame costs what the spec says.
            const DurationNs base = tree.subtreeCost();
            const DurationNs want = spec.handlerCost.median;
            if (base > 0) {
                const double k = static_cast<double>(want) /
                                 static_cast<double>(base);
                const std::function<void(ActivityNode &)> scale =
                    [&](ActivityNode &node) {
                        node.selfCost = static_cast<DurationNs>(
                            static_cast<double>(node.selfCost) * k);
                        for (auto &child : node.children)
                            scale(child);
                    };
                scale(tree);
            }
            assignAllocations(tree, spec.handlerAllocPerMs);
            return tree;
        }
        // Asynchronous model update (progress bars, network state):
        // library-code work only, so the trigger stays Async.
        ActivityNode update;
        update.frame = Frame{"javax.swing.plaf.basic.BasicProgressBarUI",
                             "incrementAnimationIndex"};
        update.selfCost = spec.handlerCost.median;
        ActivityNode repaint_mgr;
        repaint_mgr.frame =
            Frame{"javax.swing.RepaintManager", "addDirtyRegion"};
        repaint_mgr.selfCost = spec.handlerCost.median / 4;
        update.children.push_back(std::move(repaint_mgr));
        assignAllocations(update, spec.handlerAllocPerMs);
        return update;
    });
    return event;
}

jvm::GuiEvent
HandlerFactory::loaderEvent(std::size_t index)
{
    lag_assert(index < params_.loaders.size(), "bad loader index");
    const LoaderSpec &spec = params_.loaders[index];
    jvm::GuiEvent event;
    event.postedByBackground = true;
    event.handler = drawFromPool(
        loader_pools_[index], 2.0, spec.postHandlerCost.sigma,
        [this, &spec](Rng &rng) {
        ActivityNode update;
        update.frame =
            Frame{params_.appPackage + ".model.ProjectModel",
                  "fireContentsChanged"};
        update.selfCost = spec.postHandlerCost.median;
        ActivityNode work;
        work.frame = workFrame(rng);
        work.selfCost = spec.postHandlerCost.median / 2;
        update.children.push_back(std::move(work));
        assignAllocations(update, params_.allocPerMsWork);
        return update;
    });
    return event;
}

std::size_t
HandlerFactory::templateCount() const
{
    std::size_t count = click_pool_.templates.size() +
                        repaint_pool_.templates.size();
    for (const auto &pool : timer_pools_)
        count += pool.templates.size();
    for (const auto &pool : loader_pools_)
        count += pool.templates.size();
    return count;
}

} // namespace lag::app
