#include "router.hh"

namespace lag::serve
{

namespace
{

bool
matches(std::string_view path, std::string_view route_path,
        bool is_prefix)
{
    if (is_prefix)
        return path.size() >= route_path.size() &&
               path.substr(0, route_path.size()) == route_path;
    return path == route_path;
}

} // namespace

void
Router::addExact(std::string method, std::string path,
                 Handler handler)
{
    routes_.push_back(Route{std::move(method), std::move(path),
                            false, std::move(handler)});
}

void
Router::addPrefix(std::string method, std::string prefix,
                  Handler handler)
{
    routes_.push_back(Route{std::move(method), std::move(prefix),
                            true, std::move(handler)});
}

bool
Router::pathKnown(std::string_view path) const
{
    for (const Route &route : routes_) {
        if (matches(path, route.path, route.isPrefix))
            return true;
    }
    return false;
}

std::string_view
Router::routeLabel(const HttpRequest &request) const
{
    for (const Route &route : routes_) {
        if (matches(request.path, route.path, route.isPrefix))
            return route.path;
    }
    return "other";
}

HttpResponse
Router::dispatch(const HttpRequest &request) const
{
    for (const Route &route : routes_) {
        if (route.method == request.method &&
            matches(request.path, route.path, route.isPrefix))
            return route.handler(request);
    }
    if (pathKnown(request.path))
        return errorResponse(405, "method not allowed");
    return errorResponse(404, "not found");
}

} // namespace lag::serve
