/**
 * @file
 * lagd's hot state: every app's merged pattern set and figure
 * inputs, loaded once from the result cache and invalidated per
 * app by content fingerprint.
 *
 * load() runs the full engine::aggregateFromCache fan-out and
 * stamps each app with ResultCache::appDigest — the FNV-1a digest
 * of its contributing `.ares` bytes. refresh() re-reads only the
 * digests (cheap: file bytes, no decode) and re-aggregates only
 * the apps whose digest moved, so a `POST /v1/refresh` after one
 * app's entries changed touches exactly that app — provable via
 * the `serve.refresh.recomputed` counter and the engine's
 * `cache.aggregate.*` counters.
 *
 * Every response body comes out of the shared core/figure_json
 * emitters, the same functions the batch reference path uses — the
 * "server output is byte-identical to batch output" criterion is
 * structural, not maintained.
 *
 * Locking: one Mutex at LockRank::Serve guards the app states.
 * refresh() holds it across the re-aggregation (which acquires
 * engine ranks beneath it — the reason Serve sits above every
 * other rank); readers therefore always see a complete generation,
 * never a half-refreshed one.
 */

#ifndef LAG_SERVE_STORE_HH
#define LAG_SERVE_STORE_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "app/study.hh"
#include "core/figure_json.hh"
#include "engine/incremental.hh"
#include "engine/ingest.hh"
#include "engine/pool.hh"
#include "engine/result_cache.hh"
#include "http.hh"
#include "router.hh"
#include "util/mutex.hh"
#include "util/thread_annotations.hh"

namespace lag::serve
{

/**
 * `/v1/apps` body for the given study shape. Free function so the
 * equivalence tests can derive the reference bytes from a batch
 * aggregate with the exact same code.
 */
std::string appsJson(const std::vector<std::string> &names,
                     std::uint32_t sessions_per_app,
                     const std::vector<core::MergedPatternSet> &merged);

/** What one refresh() pass did. */
struct RefreshResult
{
    /** Apps whose digest moved and were re-aggregated. */
    std::vector<std::string> recomputedApps;

    /** Apps whose digest was unchanged (left untouched). */
    std::size_t unchanged = 0;
};

/** `POST /v1/refresh` body for @p result. */
std::string refreshJson(const RefreshResult &result);

/** In-memory query state over one study's result cache. */
class HotStore
{
  public:
    /** @param config the study to serve; @param pool the engine
     * pool used by the initial full load (refresh is serial). */
    HotStore(app::StudyConfig config, engine::ThreadPool &pool);

    /**
     * Full load: validate the study cache, aggregate every app from
     * the result cache on the pool (simulating/analyzing misses),
     * session-average the figure inputs, stamp digests. Call once
     * before serving.
     */
    void load();

    /**
     * Re-check every app's digest; re-aggregate the changed ones
     * serially (safe from a pool worker — see
     * engine::aggregateAppFromCache). Bumps
     * `serve.refresh.recomputed` once per recomputed app. No-op in
     * follow mode (there is no batch cache to diff against).
     */
    RefreshResult refresh();

    /**
     * Switch to live-ingest mode instead of load(): start with zero
     * apps and populate them from applyIngest() updates as traces
     * stream in. Queries work immediately (404 until the first
     * epoch publishes an app).
     */
    void startFollow();

    /**
     * Merge one published (partial- or complete-session) analysis
     * into the hot state: the update replaces that trace file's
     * previous contribution, then the app's MergedPatternSet and
     * figure inputs are rebuilt via core::mergeAnalyses /
     * engine::averageSessionAnalyses — the exact functions the
     * batch path uses, which is what makes the served bytes equal
     * the batch answer once every source completes. Called by the
     * IngestPipeline's publish callback (no ingest lock held).
     */
    void applyIngest(const engine::IngestUpdate &update);

    /** Register every endpoint on @p router:
     * GET /healthz, /metricsz (JSON, or Prometheus text via
     * ?format=prom / Accept: text/plain), /debugz/requests,
     * /debugz/flightrecorder, /v1/apps, /v1/patterns, /v1/cdf,
     * /v1/episodes, /v1/figures/<id>; POST /v1/refresh. */
    void installRoutes(Router &router);

    /** App count (for startup logging). */
    std::size_t appCount() const;

  private:
    /** One app's generation: digest + everything queries read. */
    struct AppState
    {
        std::uint64_t digest = 0;
        core::MergedPatternSet merged;
        core::AppFigureData figures;
    };

    /** Rebuild one app's state from its aggregate. */
    AppState buildState(std::size_t app_index,
                        engine::AppAggregate aggregate);

    /** Resolve ?app= to an index; -1 when absent/unknown. */
    std::ptrdiff_t
    appIndex(const HttpRequest &request) const
        LAG_REQUIRES(mutex_);

    HttpResponse handleApps(const HttpRequest &request);
    HttpResponse handlePatterns(const HttpRequest &request);
    HttpResponse handleCdf(const HttpRequest &request);
    HttpResponse handleEpisodes(const HttpRequest &request);
    HttpResponse handleFigure(const HttpRequest &request);
    HttpResponse handleHealth(const HttpRequest &request);
    HttpResponse handleMetrics(const HttpRequest &request);
    HttpResponse handleRefresh(const HttpRequest &request);
    HttpResponse handleDebugRequests(const HttpRequest &request);
    HttpResponse handleDebugFlightrec(const HttpRequest &request);

    app::Study study_;
    engine::ResultCache cache_;
    engine::ThreadPool &pool_;
    std::vector<std::string> appNames_;

    mutable Mutex mutex_{LockRank::Serve, "serve-hot-store"};
    std::vector<AppState> apps_ LAG_GUARDED_BY(mutex_);
    bool loaded_ LAG_GUARDED_BY(mutex_) = false;
    bool followMode_ LAG_GUARDED_BY(mutex_) = false;

    /** Follow mode: per app, each followed trace file's latest
     * analysis (keyed by path — ordered, so rebuild order and thus
     * merged output is deterministic). */
    std::vector<std::map<std::string, engine::SessionAnalysis>>
        liveSessions_ LAG_GUARDED_BY(mutex_);
};

/** Register `GET /v1/ingest` (IngestPipeline::statusJson) on
 * @p router. @p pipeline must outlive the router. */
void installIngestRoute(Router &router,
                        engine::IngestPipeline &pipeline);

} // namespace lag::serve

#endif // LAG_SERVE_STORE_HH
