/**
 * @file
 * The lagd HTTP server: accept thread + engine-pool request tasks.
 *
 * One dedicated thread accepts connections (poll()ing the listen
 * socket alongside a wake pipe so stop() interrupts it instantly);
 * each accepted connection becomes one task on the existing
 * engine::ThreadPool — the server adds exactly one thread to the
 * process no matter the load, and request handling inherits the
 * pool's instrumentation.
 *
 * Robustness posture (all tested):
 *  - admission gate: beyond maxConnections in-flight connections,
 *    new arrivals get an immediate 503 and `serve.rejected`++ —
 *    the pool's queue can never grow without bound;
 *  - per-connection deadlines: reads and writes each poll() under
 *    a budget; an idle or byte-dribbling client gets 408 (read) or
 *    a close (write) instead of a parked worker;
 *  - bounded parsing: http.hh's limits cap header and body bytes
 *    before they are buffered (400/413);
 *  - graceful drain: stop() stops accepting, then waits for every
 *    in-flight connection to finish — no request is abandoned
 *    mid-response on SIGTERM.
 */

#ifndef LAG_SERVE_SERVER_HH
#define LAG_SERVE_SERVER_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <string>
#include <thread>

#include "engine/pool.hh"
#include "http.hh"
#include "obs/trace_context.hh"
#include "router.hh"
#include "util/mutex.hh"
#include "util/thread_annotations.hh"

namespace lag::serve
{

/** Listener + robustness knobs. */
struct ServerConfig
{
    std::string bindAddress = "127.0.0.1";

    /** TCP port; 0 = ephemeral (read the result from port()). */
    std::uint16_t port = 0;

    /** In-flight connection cap; arrivals beyond it get 503. */
    std::size_t maxConnections = 64;

    int readTimeoutMs = 5000;  ///< whole-request read budget
    int writeTimeoutMs = 5000; ///< whole-response write budget

    /** Requests slower than this get their span tree logged and
     * are flagged in the flight recorder; 0 disables. */
    int slowRequestMs = 0;

    ParseLimits limits;
};

/** HTTP/1.1 server dispatching to a Router on an engine pool. */
class HttpServer
{
  public:
    /** @param router dispatch table (owned); @param pool runs the
     * per-connection tasks (not owned; must outlive the server). */
    HttpServer(ServerConfig config, Router router,
               engine::ThreadPool &pool);

    /** stop()s if still running. */
    ~HttpServer();

    HttpServer(const HttpServer &) = delete;
    HttpServer &operator=(const HttpServer &) = delete;

    /** Bind + listen + start the accept thread. fatal() on a bind
     * failure (a daemon that cannot listen has nothing to do). */
    void start();

    /** The bound port (resolves config.port == 0). */
    std::uint16_t port() const { return port_; }

    /** Graceful drain: stop accepting, wake the accept thread,
     * join it, then wait for in-flight connections to finish.
     * Idempotent. */
    void stop();

  private:
    void acceptLoop();

    /** @param ctx the request's trace identity, minted at accept
     * time; installed as the worker's context by the caller. */
    void handleConnection(int fd, const obs::TraceContext &ctx);

    /** Read one request within the read deadline; returns the
     * response to send when the request could not be served (400/
     * 408/413), or nullopt-like status via @p ok. */
    bool readRequest(int fd, HttpRequest &request,
                     HttpResponse &error_response);

    void writeResponse(int fd, const HttpResponse &response);

    ServerConfig config_;
    Router router_;
    engine::ThreadPool &pool_;

    int listenFd_ = -1;
    int wakeRead_ = -1;
    int wakeWrite_ = -1;
    std::uint16_t port_ = 0;
    std::thread acceptThread_;
    std::atomic<bool> running_{false};
    std::atomic<bool> stopping_{false};

    /** In-flight connection count + drain signalling. */
    Mutex activeMutex_{LockRank::Serve, "serve-active-connections"};
    std::size_t active_ LAG_GUARDED_BY(activeMutex_) = 0;
    std::condition_variable_any drainCv_;
};

} // namespace lag::serve

#endif // LAG_SERVE_SERVER_HH
