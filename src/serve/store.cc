#include "store.hh"

#include <charconv>
#include <utility>

#include "obs/flightrec.hh"
#include "obs/metrics.hh"
#include "obs/span.hh"
#include "obs/trace_context.hh"
#include "util/logging.hh"

namespace lag::serve
{

namespace
{

obs::Counter &
refreshRecomputedCounter()
{
    static obs::Counter &counter =
        obs::metrics().counter("serve.refresh.recomputed");
    return counter;
}

} // namespace

std::string
appsJson(const std::vector<std::string> &names,
         std::uint32_t sessions_per_app,
         const std::vector<core::MergedPatternSet> &merged)
{
    lag_assert(names.size() == merged.size(),
               "appsJson: names/merged size mismatch");
    std::string out = "{\"sessions_per_app\":";
    out += std::to_string(sessions_per_app);
    out += ",\"apps\":[";
    for (std::size_t a = 0; a < names.size(); ++a) {
        if (a > 0)
            out += ',';
        out += "{\"name\":\"";
        out += core::jsonEscape(names[a]);
        out += "\",\"patterns\":";
        out += std::to_string(merged[a].patterns.size());
        out += ",\"recurring\":";
        out += std::to_string(merged[a].recurringCount());
        out += "}";
    }
    out += "]}";
    return out;
}

std::string
refreshJson(const RefreshResult &result)
{
    std::string out = "{\"recomputed\":[";
    for (std::size_t i = 0; i < result.recomputedApps.size(); ++i) {
        if (i > 0)
            out += ',';
        out += '"';
        out += core::jsonEscape(result.recomputedApps[i]);
        out += '"';
    }
    out += "],\"unchanged\":";
    out += std::to_string(result.unchanged);
    out += "}";
    return out;
}

HotStore::HotStore(app::StudyConfig config, engine::ThreadPool &pool)
    : study_(std::move(config)),
      cache_(study_.config().cacheDir,
             study_.config().fingerprint()),
      pool_(pool)
{
    appNames_.reserve(study_.config().apps.size());
    for (const app::AppParams &params : study_.config().apps)
        appNames_.push_back(params.name);
}

HotStore::AppState
HotStore::buildState(std::size_t app_index,
                     engine::AppAggregate aggregate)
{
    AppState state;
    state.merged = std::move(aggregate.merged);
    state.figures = engine::averageSessionAnalyses(
        appNames_[app_index], aggregate.sessions);
    // Digest AFTER aggregation: misses just wrote fresh entries,
    // and the stamp must describe the bytes this state was built
    // from, or the next refresh would re-do clean apps.
    state.digest = cache_.appDigest(
        appNames_[app_index], study_.config().sessionsPerApp);
    return state;
}

void
HotStore::load()
{
    LAG_SPAN_ARG("serve.store.load", "apps", appNames_.size());
    study_.validate();

    const engine::AggregateOptions options{
        study_.config().incremental};
    const engine::StudyAggregate aggregate =
        engine::aggregateFromCache(
            cache_, appNames_, study_.config().sessionsPerApp,
            study_.config().perceptibleThreshold, pool_,
            [this](std::size_t a, std::uint32_t s) {
                return study_.loadSession(a, s);
            },
            options);

    MutexLock lock(mutex_);
    apps_.clear();
    apps_.reserve(appNames_.size());
    for (std::size_t a = 0; a < appNames_.size(); ++a) {
        AppState state;
        state.merged = aggregate.merged[a];
        state.figures = engine::averageSessionAnalyses(
            appNames_[a], aggregate.grid[a]);
        state.digest = cache_.appDigest(
            appNames_[a], study_.config().sessionsPerApp);
        apps_.push_back(std::move(state));
    }
    loaded_ = true;
}

void
HotStore::startFollow()
{
    MutexLock lock(mutex_);
    lag_assert(!loaded_, "startFollow() after load()");
    // Live mode starts empty: the config's app list describes the
    // batch study, not what will stream in. Apps materialize as
    // ingest updates arrive.
    appNames_.clear();
    apps_.clear();
    liveSessions_.clear();
    followMode_ = true;
    loaded_ = true;
}

void
HotStore::applyIngest(const engine::IngestUpdate &update)
{
    LAG_SPAN_ARG("serve.store.apply_ingest", "epoch", update.epoch);
    static obs::Counter &applied =
        obs::metrics().counter("serve.ingest.applied");

    MutexLock lock(mutex_);
    lag_assert(followMode_, "applyIngest() outside follow mode");
    std::size_t a = appNames_.size();
    for (std::size_t i = 0; i < appNames_.size(); ++i) {
        if (appNames_[i] == update.appName) {
            a = i;
            break;
        }
    }
    if (a == appNames_.size()) {
        appNames_.push_back(update.appName);
        apps_.emplace_back();
        liveSessions_.emplace_back();
    }
    liveSessions_[a][update.path] = update.analysis;

    // Rebuild the app's hot state from every live session's v2
    // summary — same merge/average functions as the batch path, so
    // completion implies byte-equal query responses.
    std::vector<core::PatternSetSummary> summaries;
    std::vector<engine::SessionAnalysis> sessions;
    summaries.reserve(liveSessions_[a].size());
    sessions.reserve(liveSessions_[a].size());
    for (const auto &[path, analysis] : liveSessions_[a]) {
        summaries.push_back(analysis.patternSummary);
        sessions.push_back(analysis);
    }
    apps_[a].merged = core::mergeAnalyses(summaries);
    apps_[a].figures =
        engine::averageSessionAnalyses(appNames_[a], sessions);
    applied.add(1);
}

RefreshResult
HotStore::refresh()
{
    LAG_SPAN_ARG("serve.store.refresh", "apps", appNames_.size());
    RefreshResult result;

    MutexLock lock(mutex_);
    lag_assert(loaded_, "refresh() before load()");
    if (followMode_) {
        // Live apps have no cache digests to diff; every source is
        // already refreshed per epoch by the ingest pipeline.
        result.unchanged = appNames_.size();
        return result;
    }
    for (std::size_t a = 0; a < appNames_.size(); ++a) {
        const std::uint64_t digest = cache_.appDigest(
            appNames_[a], study_.config().sessionsPerApp);
        if (digest == apps_[a].digest) {
            ++result.unchanged;
            continue;
        }
        engine::AppAggregate aggregate =
            engine::aggregateAppFromCache(
                cache_, appNames_[a], a,
                study_.config().sessionsPerApp,
                study_.config().perceptibleThreshold,
                [this](std::size_t app, std::uint32_t s) {
                    return study_.loadSession(app, s);
                },
                engine::AggregateOptions{
                    study_.config().incremental});
        apps_[a] = buildState(a, std::move(aggregate));
        refreshRecomputedCounter().add(1);
        result.recomputedApps.push_back(appNames_[a]);
    }
    return result;
}

std::size_t
HotStore::appCount() const
{
    MutexLock lock(mutex_);
    return appNames_.size();
}

std::ptrdiff_t
HotStore::appIndex(const HttpRequest &request) const
{
    const std::string *app = request.queryParam("app");
    if (app == nullptr)
        return -1;
    for (std::size_t a = 0; a < appNames_.size(); ++a) {
        if (appNames_[a] == *app)
            return static_cast<std::ptrdiff_t>(a);
    }
    return -1;
}

HttpResponse
HotStore::handleApps(const HttpRequest &)
{
    MutexLock lock(mutex_);
    if (!loaded_)
        return errorResponse(503, "store not loaded");
    std::vector<core::MergedPatternSet> merged;
    merged.reserve(apps_.size());
    for (const AppState &state : apps_)
        merged.push_back(state.merged);
    HttpResponse response;
    response.body = appsJson(
        appNames_, study_.config().sessionsPerApp, merged);
    return response;
}

HttpResponse
HotStore::handlePatterns(const HttpRequest &request)
{
    std::string sort = "episodes";
    if (const std::string *s = request.queryParam("sort"))
        sort = *s;
    std::size_t limit = 0;
    if (const std::string *l = request.queryParam("limit")) {
        const auto *first = l->data();
        const auto *last = first + l->size();
        const auto parsed = std::from_chars(first, last, limit);
        if (parsed.ec != std::errc{} || parsed.ptr != last)
            return errorResponse(400, "malformed limit");
    }

    MutexLock lock(mutex_);
    if (!loaded_)
        return errorResponse(503, "store not loaded");
    const std::ptrdiff_t a = appIndex(request);
    if (a < 0)
        return errorResponse(404, "unknown app");
    HttpResponse response;
    response.body = core::patternsJson(
        appNames_[static_cast<std::size_t>(a)],
        apps_[static_cast<std::size_t>(a)].merged, sort, limit);
    if (response.body.empty())
        return errorResponse(400, "unknown sort key");
    return response;
}

HttpResponse
HotStore::handleCdf(const HttpRequest &request)
{
    MutexLock lock(mutex_);
    if (!loaded_)
        return errorResponse(503, "store not loaded");
    const std::ptrdiff_t a = appIndex(request);
    if (a < 0)
        return errorResponse(404, "unknown app");
    HttpResponse response;
    response.body = core::cdfJson(
        appNames_[static_cast<std::size_t>(a)],
        apps_[static_cast<std::size_t>(a)]
            .figures.cdfEpisodesAtPatternPercent);
    return response;
}

HttpResponse
HotStore::handleEpisodes(const HttpRequest &request)
{
    const std::string *pattern = request.queryParam("pattern");
    if (pattern == nullptr)
        return errorResponse(400, "missing pattern parameter");
    std::uint64_t key = 0;
    if (!core::parsePatternKeyHex(*pattern, key))
        return errorResponse(400, "malformed pattern key");

    MutexLock lock(mutex_);
    if (!loaded_)
        return errorResponse(503, "store not loaded");
    const std::ptrdiff_t a = appIndex(request);
    if (a < 0)
        return errorResponse(404, "unknown app");
    const AppState &state = apps_[static_cast<std::size_t>(a)];
    for (const core::MergedPattern &p : state.merged.patterns) {
        if (p.key == key) {
            HttpResponse response;
            response.body = core::episodesJson(
                appNames_[static_cast<std::size_t>(a)], p,
                state.merged.sessionCount);
            return response;
        }
    }
    return errorResponse(404, "unknown pattern");
}

HttpResponse
HotStore::handleFigure(const HttpRequest &request)
{
    constexpr std::string_view prefix = "/v1/figures/";
    const std::string_view id =
        std::string_view(request.path).substr(prefix.size());

    MutexLock lock(mutex_);
    if (!loaded_)
        return errorResponse(503, "store not loaded");
    std::vector<core::AppFigureData> figures;
    figures.reserve(apps_.size());
    for (const AppState &state : apps_)
        figures.push_back(state.figures);
    HttpResponse response;
    response.body = core::figureJson(id, figures);
    if (response.body.empty())
        return errorResponse(404, "unknown figure id");
    return response;
}

HttpResponse
HotStore::handleHealth(const HttpRequest &)
{
    MutexLock lock(mutex_);
    HttpResponse response;
    response.body = "{\"status\":\"";
    response.body += loaded_ ? "ok" : "loading";
    response.body += "\",\"apps\":";
    response.body += std::to_string(appNames_.size());
    response.body += "}";
    return response;
}

HttpResponse
HotStore::handleMetrics(const HttpRequest &request)
{
    HttpResponse response;
    // Prometheus exposition on request — ?format=prom wins, and a
    // text/plain Accept (what prometheus scrapers send) selects it
    // too. Default stays the bespoke JSON dump.
    const std::string *format = request.queryParam("format");
    const bool wantProm =
        (format != nullptr && *format == "prom") ||
        (format == nullptr &&
         request.header("accept").find("text/plain") !=
             std::string_view::npos);
    if (wantProm) {
        response.contentType =
            "text/plain; version=0.0.4; charset=utf-8";
        response.body = obs::metrics().dumpProm();
    } else {
        response.body = obs::metrics().dumpJson();
    }
    return response;
}

HttpResponse
HotStore::handleDebugRequests(const HttpRequest &request)
{
    HttpResponse response;
    const std::string *trace = request.queryParam("trace");
    if (trace != nullptr) {
        obs::TraceContext ctx;
        if (!obs::parseTraceIdHex(*trace, ctx))
            return errorResponse(400, "malformed trace id");
        response.body =
            obs::FlightRecorder::instance().requestsJson(&ctx);
    } else {
        response.body =
            obs::FlightRecorder::instance().requestsJson(nullptr);
    }
    return response;
}

HttpResponse
HotStore::handleDebugFlightrec(const HttpRequest &)
{
    HttpResponse response;
    response.body = obs::FlightRecorder::instance().liveJson();
    return response;
}

HttpResponse
HotStore::handleRefresh(const HttpRequest &)
{
    HttpResponse response;
    response.body = refreshJson(refresh());
    return response;
}

void
HotStore::installRoutes(Router &router)
{
    const auto bind = [this](HttpResponse (HotStore::*method)(
                          const HttpRequest &)) {
        return [this, method](const HttpRequest &request) {
            return (this->*method)(request);
        };
    };
    router.addExact("GET", "/healthz",
                    bind(&HotStore::handleHealth));
    router.addExact("GET", "/metricsz",
                    bind(&HotStore::handleMetrics));
    router.addExact("GET", "/debugz/requests",
                    bind(&HotStore::handleDebugRequests));
    router.addExact("GET", "/debugz/flightrecorder",
                    bind(&HotStore::handleDebugFlightrec));
    router.addExact("GET", "/v1/apps", bind(&HotStore::handleApps));
    router.addExact("GET", "/v1/patterns",
                    bind(&HotStore::handlePatterns));
    router.addExact("GET", "/v1/cdf", bind(&HotStore::handleCdf));
    router.addExact("GET", "/v1/episodes",
                    bind(&HotStore::handleEpisodes));
    router.addPrefix("GET", "/v1/figures/",
                     bind(&HotStore::handleFigure));
    router.addExact("POST", "/v1/refresh",
                    bind(&HotStore::handleRefresh));
}

void
installIngestRoute(Router &router, engine::IngestPipeline &pipeline)
{
    router.addExact("GET", "/v1/ingest",
                    [&pipeline](const HttpRequest &) {
                        HttpResponse response;
                        response.body = pipeline.statusJson();
                        return response;
                    });
}

} // namespace lag::serve
