/**
 * @file
 * Method+path dispatch for lagd's handful of endpoints.
 *
 * Exact-path routes plus prefix routes (for `/v1/figures/<id>`).
 * The router owns the 404/405 distinction: an unknown path is 404,
 * a known path with the wrong method is 405 — both as strict-JSON
 * error bodies, so every byte the server emits stays
 * machine-checkable.
 */

#ifndef LAG_SERVE_ROUTER_HH
#define LAG_SERVE_ROUTER_HH

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "http.hh"

namespace lag::serve
{

/** A request handler: consumes the parsed request, returns the
 * response. Runs on a pool worker; must be thread-safe. */
using Handler = std::function<HttpResponse(const HttpRequest &)>;

class Router
{
  public:
    /** Route @p method + exactly @p path to @p handler. */
    void addExact(std::string method, std::string path,
                  Handler handler);

    /** Route @p method + any path starting with @p prefix to
     * @p handler (the handler inspects request.path itself). */
    void addPrefix(std::string method, std::string prefix,
                   Handler handler);

    /** Dispatch @p request: matched handler's response, else a
     * 404 or 405 JSON error. */
    HttpResponse dispatch(const HttpRequest &request) const;

    /**
     * A bounded-cardinality label for per-route metrics: the
     * registered path (or prefix) the request matches, "other" for
     * unknown paths. Never the raw target — label cardinality must
     * not grow with attacker-chosen input.
     */
    std::string_view routeLabel(const HttpRequest &request) const;

  private:
    struct Route
    {
        std::string method;
        std::string path; ///< exact path or prefix
        bool isPrefix = false;
        Handler handler;
    };

    bool pathKnown(std::string_view path) const;

    std::vector<Route> routes_;
};

} // namespace lag::serve

#endif // LAG_SERVE_ROUTER_HH
