#include "http.hh"

#include <algorithm>
#include <cctype>
#include <charconv>

#include "core/figure_json.hh"
#include "util/logging.hh"

namespace lag::serve
{

namespace
{

constexpr std::string_view kCrlf = "\r\n";

bool
isTokenChar(char c)
{
    // RFC 9110 token characters; enough to validate methods and
    // header names strictly.
    if (std::isalnum(static_cast<unsigned char>(c)) != 0)
        return true;
    constexpr std::string_view extra = "!#$%&'*+-.^_`|~";
    return extra.find(c) != std::string_view::npos;
}

bool
isToken(std::string_view s)
{
    return !s.empty() &&
           std::all_of(s.begin(), s.end(), isTokenChar);
}

int
hexDigit(char c)
{
    if (c >= '0' && c <= '9')
        return c - '0';
    if (c >= 'a' && c <= 'f')
        return c - 'a' + 10;
    if (c >= 'A' && c <= 'F')
        return c - 'A' + 10;
    return -1;
}

std::string_view
trimOws(std::string_view s)
{
    while (!s.empty() && (s.front() == ' ' || s.front() == '\t'))
        s.remove_prefix(1);
    while (!s.empty() && (s.back() == ' ' || s.back() == '\t'))
        s.remove_suffix(1);
    return s;
}

std::string
lowered(std::string_view s)
{
    std::string out(s);
    for (char &c : out)
        c = static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    return out;
}

/** Split the request target into decoded path + query pairs.
 * Returns false on any malformed escape. */
bool
parseTarget(std::string_view target, HttpRequest &out)
{
    const std::size_t question = target.find('?');
    const std::string_view raw_path = target.substr(0, question);
    if (raw_path.empty() || raw_path.front() != '/')
        return false;
    if (!percentDecode(raw_path, out.path))
        return false;
    // An encoded NUL can never be a valid route and would make the
    // path hostile to C string handling downstream.
    if (out.path.find('\0') != std::string::npos)
        return false;

    if (question == std::string_view::npos)
        return true;
    std::string_view rest = target.substr(question + 1);
    while (!rest.empty()) {
        const std::size_t amp = rest.find('&');
        const std::string_view pair = rest.substr(0, amp);
        rest = amp == std::string_view::npos
                   ? std::string_view{}
                   : rest.substr(amp + 1);
        if (pair.empty())
            continue;
        const std::size_t eq = pair.find('=');
        std::string key;
        std::string value;
        if (!percentDecode(pair.substr(0, eq), key))
            return false;
        if (eq != std::string_view::npos &&
            !percentDecode(pair.substr(eq + 1), value))
            return false;
        // Same NUL rejection as the path above: a %00 smuggled into
        // a query key or value would otherwise flow into app-name
        // lookups and log lines.
        if (key.find('\0') != std::string::npos ||
            value.find('\0') != std::string::npos)
            return false;
        out.query.emplace_back(std::move(key), std::move(value));
    }
    return true;
}

} // namespace

const std::string *
HttpRequest::queryParam(std::string_view key) const
{
    for (const auto &[k, v] : query) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

std::string_view
HttpRequest::header(std::string_view name) const
{
    for (const auto &[k, v] : headers) {
        if (k == name)
            return v;
    }
    return {};
}

bool
percentDecode(std::string_view s, std::string &out)
{
    out.clear();
    out.reserve(s.size());
    for (std::size_t i = 0; i < s.size(); ++i) {
        if (s[i] != '%') {
            out.push_back(s[i]);
            continue;
        }
        if (i + 2 >= s.size())
            return false;
        const int hi = hexDigit(s[i + 1]);
        const int lo = hexDigit(s[i + 2]);
        if (hi < 0 || lo < 0)
            return false;
        out.push_back(static_cast<char>(hi * 16 + lo));
        i += 2;
    }
    return true;
}

ParseStatus
parseRequest(std::string_view data, const ParseLimits &limits,
             HttpRequest &out)
{
    out = HttpRequest{};

    const std::size_t header_end = data.find("\r\n\r\n");
    if (header_end == std::string_view::npos) {
        // Even without the terminator, an over-budget header block
        // is already fatal: waiting for more bytes cannot fix it.
        return data.size() > limits.maxHeaderBytes
                   ? ParseStatus::BadRequest
                   : ParseStatus::Incomplete;
    }
    if (header_end + 4 > limits.maxHeaderBytes)
        return ParseStatus::BadRequest;

    std::string_view head = data.substr(0, header_end);

    // Request line: METHOD SP target SP HTTP/1.x
    const std::size_t line_end = head.find(kCrlf);
    const std::string_view request_line =
        head.substr(0, line_end);
    head = line_end == std::string_view::npos
               ? std::string_view{}
               : head.substr(line_end + 2);

    const std::size_t sp1 = request_line.find(' ');
    if (sp1 == std::string_view::npos)
        return ParseStatus::BadRequest;
    const std::size_t sp2 = request_line.find(' ', sp1 + 1);
    if (sp2 == std::string_view::npos)
        return ParseStatus::BadRequest;
    const std::string_view method = request_line.substr(0, sp1);
    const std::string_view target =
        request_line.substr(sp1 + 1, sp2 - sp1 - 1);
    const std::string_view version = request_line.substr(sp2 + 1);
    if (!isToken(method) || target.empty())
        return ParseStatus::BadRequest;
    if (version != "HTTP/1.1" && version != "HTTP/1.0")
        return ParseStatus::BadRequest;
    out.method = std::string(method);
    out.target = std::string(target);
    if (!parseTarget(target, out))
        return ParseStatus::BadRequest;

    // Header fields.
    while (!head.empty()) {
        const std::size_t eol = head.find(kCrlf);
        const std::string_view line = head.substr(0, eol);
        head = eol == std::string_view::npos
                   ? std::string_view{}
                   : head.substr(eol + 2);
        if (line.empty())
            return ParseStatus::BadRequest; // bare CRLF mid-headers
        if (line.front() == ' ' || line.front() == '\t')
            return ParseStatus::BadRequest; // obsolete line folding
        const std::size_t colon = line.find(':');
        if (colon == std::string_view::npos || colon == 0)
            return ParseStatus::BadRequest;
        const std::string_view name = line.substr(0, colon);
        if (!isToken(name))
            return ParseStatus::BadRequest;
        if (out.headers.size() >= limits.maxHeaderCount)
            return ParseStatus::BadRequest;
        out.headers.emplace_back(
            lowered(name),
            std::string(trimOws(line.substr(colon + 1))));
    }

    // Body framing: Content-Length only; chunked is out of scope
    // and refusing it beats silently mis-framing.
    if (!out.header("transfer-encoding").empty())
        return ParseStatus::BadRequest;
    std::size_t content_length = 0;
    // RFC 9110 §8.6: multiple Content-Length fields are only
    // acceptable when their values are identical; differing values
    // signal request smuggling and must be rejected. header()
    // returns the first match, so scan all of them here.
    std::string_view length_header;
    for (const auto &[name, value] : out.headers) {
        if (name != "content-length")
            continue;
        if (!length_header.empty() && value != length_header)
            return ParseStatus::BadRequest;
        length_header = value;
    }
    if (!length_header.empty()) {
        const auto *first = length_header.data();
        const auto *last = first + length_header.size();
        const auto result =
            std::from_chars(first, last, content_length);
        if (result.ec != std::errc{} || result.ptr != last)
            return ParseStatus::BadRequest;
    }
    if (content_length > limits.maxBodyBytes)
        return ParseStatus::TooLarge;

    const std::string_view after = data.substr(header_end + 4);
    if (after.size() < content_length)
        return ParseStatus::Incomplete;
    if (after.size() > content_length)
        return ParseStatus::BadRequest; // no pipelining
    out.body = std::string(after.substr(0, content_length));
    return ParseStatus::Ok;
}

std::string_view
statusText(int status)
{
    switch (status) {
    case 200:
        return "OK";
    case 400:
        return "Bad Request";
    case 404:
        return "Not Found";
    case 405:
        return "Method Not Allowed";
    case 408:
        return "Request Timeout";
    case 413:
        return "Content Too Large";
    case 500:
        return "Internal Server Error";
    case 503:
        return "Service Unavailable";
    default:
        return "Unknown";
    }
}

std::string
serializeResponse(const HttpResponse &response)
{
    std::string out;
    out.reserve(128 + response.body.size());
    out += "HTTP/1.1 ";
    out += std::to_string(response.status);
    out += ' ';
    out += statusText(response.status);
    out += kCrlf;
    out += "Content-Type: ";
    out += response.contentType;
    out += kCrlf;
    out += "Content-Length: ";
    out += std::to_string(response.body.size());
    out += kCrlf;
    for (const auto &[name, value] : response.headers) {
        out += name;
        out += ": ";
        out += value;
        out += kCrlf;
    }
    out += "Connection: close";
    out += kCrlf;
    out += kCrlf;
    out += response.body;
    return out;
}

HttpResponse
errorResponse(int status, std::string_view message)
{
    HttpResponse response;
    response.status = status;
    response.body = "{\"error\":\"";
    response.body += core::jsonEscape(message);
    response.body += "\",\"status\":";
    response.body += std::to_string(status);
    response.body += "}";
    return response;
}

} // namespace lag::serve
