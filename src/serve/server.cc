#include "server.hh"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "obs/flightrec.hh"
#include "obs/metrics.hh"
#include "obs/span.hh"
#include "util/logging.hh"
#include "util/thread_name.hh"

namespace lag::serve
{

namespace
{

using Clock = std::chrono::steady_clock;

/** Latency bucket bounds (µs), shared by the aggregate histogram
 * and the per-route ones — re-registration checks bounds match. */
std::vector<std::int64_t>
latencyBoundsUs()
{
    return {100,   250,   500,    1000,   2500,  5000,
            10000, 25000, 50000, 100000, 250000, 1000000};
}

/** Server instruments; looked up once. */
struct ServeMetrics
{
    obs::Counter &requests =
        obs::metrics().counter("serve.requests");
    obs::Counter &rejected =
        obs::metrics().counter("serve.rejected");
    obs::Counter &timeouts =
        obs::metrics().counter("serve.timeouts");
    obs::Histogram &latencyUs = obs::metrics().histogram(
        "serve.request.latency_us", latencyBoundsUs());
};

ServeMetrics &
serveMetrics()
{
    static ServeMetrics metrics;
    return metrics;
}

int
remainingMs(Clock::time_point deadline)
{
    const auto left =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            deadline - Clock::now())
            .count();
    return left > 0 ? static_cast<int>(left) : 0;
}

/** Wait for @p events on @p fd until @p deadline; false on
 * timeout or poll error. */
bool
waitFd(int fd, short events, Clock::time_point deadline)
{
    while (true) {
        pollfd entry{};
        entry.fd = fd;
        entry.events = events;
        const int left = remainingMs(deadline);
        if (left <= 0)
            return false;
        const int ready = ::poll(&entry, 1, left);
        if (ready > 0)
            return true;
        if (ready == 0)
            return false;
        if (errno != EINTR)
            return false;
    }
}

} // namespace

HttpServer::HttpServer(ServerConfig config, Router router,
                       engine::ThreadPool &pool)
    : config_(std::move(config)), router_(std::move(router)),
      pool_(pool)
{
}

HttpServer::~HttpServer()
{
    stop();
}

void
HttpServer::start()
{
    lag_assert(!running_.load(), "HttpServer started twice");

    listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd_ < 0)
        fatal("serve: socket failed: ", std::strerror(errno));
    const int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(config_.port);
    if (::inet_pton(AF_INET, config_.bindAddress.c_str(),
                    &addr.sin_addr) != 1)
        fatal("serve: bad bind address: ", config_.bindAddress);
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) < 0)
        fatal("serve: bind ", config_.bindAddress, ":",
              config_.port, " failed: ", std::strerror(errno));
    if (::listen(listenFd_, 64) < 0)
        fatal("serve: listen failed: ", std::strerror(errno));

    sockaddr_in bound{};
    socklen_t bound_len = sizeof(bound);
    if (::getsockname(listenFd_,
                      reinterpret_cast<sockaddr *>(&bound),
                      &bound_len) < 0)
        fatal("serve: getsockname failed: ",
              std::strerror(errno));
    port_ = ntohs(bound.sin_port);

    int pipe_fds[2];
    if (::pipe(pipe_fds) != 0)
        fatal("serve: pipe failed: ", std::strerror(errno));
    wakeRead_ = pipe_fds[0];
    wakeWrite_ = pipe_fds[1];

    running_.store(true);
    stopping_.store(false);
    acceptThread_ = std::thread([this] {
        setThreadName("lagd-accept");
        acceptLoop();
    });
}

void
HttpServer::stop()
{
    if (!running_.exchange(false))
        return;
    stopping_.store(true);
    // Wake the accept poll; a failed write still drains via the
    // poll timeout below, it is just slower.
    const char byte = 's';
    [[maybe_unused]] const ssize_t written =
        ::write(wakeWrite_, &byte, 1);
    if (acceptThread_.joinable())
        acceptThread_.join();
    ::close(listenFd_);
    listenFd_ = -1;
    ::close(wakeRead_);
    ::close(wakeWrite_);
    wakeRead_ = wakeWrite_ = -1;

    // Drain: every accepted connection finishes its response.
    MutexLock lock(activeMutex_);
    while (active_ != 0)
        drainCv_.wait(lock);
}

void
HttpServer::acceptLoop()
{
    while (!stopping_.load(std::memory_order_acquire)) {
        pollfd fds[2];
        fds[0].fd = listenFd_;
        fds[0].events = POLLIN;
        fds[0].revents = 0;
        fds[1].fd = wakeRead_;
        fds[1].events = POLLIN;
        fds[1].revents = 0;
        const int ready = ::poll(fds, 2, 1000);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            warn("serve: accept poll failed: ",
                 std::strerror(errno));
            return;
        }
        if (ready == 0 || (fds[0].revents & POLLIN) == 0)
            continue;

        const int conn =
            ::accept4(listenFd_, nullptr, nullptr, SOCK_NONBLOCK);
        if (conn < 0) {
            if (errno == EINTR || errno == EAGAIN ||
                errno == EWOULDBLOCK || errno == ECONNABORTED)
                continue;
            warn("serve: accept failed: ", std::strerror(errno));
            continue;
        }

        // Admission gate: past the cap the connection gets an
        // immediate 503 on the accept thread — a cheap, bounded
        // write — rather than a slot in the pool queue.
        bool admitted = false;
        {
            MutexLock lock(activeMutex_);
            if (active_ < config_.maxConnections) {
                ++active_;
                admitted = true;
            }
        }
        if (!admitted) {
            serveMetrics().rejected.add(1);
            writeResponse(conn,
                          errorResponse(503, "server busy"));
            // The client is usually still sending its request;
            // close() with unread bytes in the receive buffer
            // turns into a RST that can discard the in-flight
            // 503. Half-close our side and drain (briefly,
            // bounded) until the client sees the response and
            // closes.
            ::shutdown(conn, SHUT_WR);
            char sink[256];
            pollfd drainFd{conn, POLLIN, 0};
            for (int spin = 0; spin < 32; ++spin) {
                if (::poll(&drainFd, 1, 50) <= 0 ||
                    ::read(conn, sink, sizeof sink) <= 0)
                    break;
            }
            ::close(conn);
            continue;
        }

        // The request's trace identity is minted here, at accept
        // time, and installed on the worker that serves it; every
        // pool hop the handler causes re-installs it via
        // ThreadPool::submit's capture.
        const obs::TraceContext ctx = obs::mintTraceContext();
        pool_.submit([this, conn, ctx] {
            obs::TraceContextScope scope(ctx);
            handleConnection(conn, ctx);
            // Notify while still holding the lock: stop() may
            // return (and the server be destroyed) the moment it
            // can observe active_ == 0, so an unlocked notify
            // would race the condition variable's destruction.
            MutexLock lock(activeMutex_);
            --active_;
            if (active_ == 0)
                drainCv_.notify_all();
        });
    }
}

bool
HttpServer::readRequest(int fd, HttpRequest &request,
                        HttpResponse &error_response)
{
    const auto deadline =
        Clock::now() +
        std::chrono::milliseconds(config_.readTimeoutMs);
    std::string buffer;
    char chunk[4096];
    while (true) {
        const ParseStatus status =
            parseRequest(buffer, config_.limits, request);
        if (status == ParseStatus::Ok)
            return true;
        if (status == ParseStatus::BadRequest) {
            error_response =
                errorResponse(400, "malformed request");
            return false;
        }
        if (status == ParseStatus::TooLarge) {
            error_response =
                errorResponse(413, "request body too large");
            return false;
        }

        if (!waitFd(fd, POLLIN, deadline)) {
            serveMetrics().timeouts.add(1);
            error_response =
                errorResponse(408, "request read timed out");
            return false;
        }
        const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n > 0) {
            buffer.append(chunk, static_cast<std::size_t>(n));
            continue;
        }
        if (n == 0) {
            // Peer closed mid-request; nobody is left to answer.
            error_response = HttpResponse{};
            error_response.status = 0;
            return false;
        }
        if (errno == EINTR || errno == EAGAIN ||
            errno == EWOULDBLOCK)
            continue;
        error_response = HttpResponse{};
        error_response.status = 0;
        return false;
    }
}

void
HttpServer::writeResponse(int fd, const HttpResponse &response)
{
    const auto deadline =
        Clock::now() +
        std::chrono::milliseconds(config_.writeTimeoutMs);
    const std::string wire = serializeResponse(response);
    std::size_t sent = 0;
    while (sent < wire.size()) {
        const ssize_t n =
            ::send(fd, wire.data() + sent, wire.size() - sent,
                   MSG_NOSIGNAL);
        if (n > 0) {
            sent += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            if (!waitFd(fd, POLLOUT, deadline)) {
                serveMetrics().timeouts.add(1);
                return; // write budget exhausted; drop the rest
            }
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        return; // peer gone; nothing sensible left to do
    }
}

void
HttpServer::handleConnection(int fd, const obs::TraceContext &ctx)
{
    const std::int64_t start_ns = processElapsedNs();

    HttpRequest request;
    HttpResponse response;
    bool have_request = false;
    {
        // Scoped so the span closes (and lands in the buffers)
        // before the slow-request path renders the span tree.
        LAG_SPAN("serve.request");
        have_request = readRequest(fd, request, response);
        if (have_request) {
            try {
                response = router_.dispatch(request);
            } catch (const std::exception &error) {
                warn("serve: handler failed for ", request.method,
                     " ", request.target, ": ", error.what());
                response =
                    errorResponse(500, "internal server error");
            }
        }
        if (response.status != 0) {
            // Echo the trace id so clients (and the CI smoke) can
            // correlate a response with /debugz/requests and the
            // Chrome-trace export.
            response.headers.emplace_back("X-Lag-Trace-Id",
                                          obs::traceIdHex(ctx));
            writeResponse(fd, response);
        }
        ::close(fd);
    }

    const std::int64_t dur_us =
        (processElapsedNs() - start_ns) / 1000;
    serveMetrics().requests.add(1);
    serveMetrics().latencyUs.record(dur_us);
    if (have_request) {
        obs::metrics()
            .histogram("serve.route.latency_us", latencyBoundsUs(),
                       "route", router_.routeLabel(request))
            .record(dur_us);
    }

    const bool slow =
        config_.slowRequestMs > 0 &&
        dur_us >= static_cast<std::int64_t>(config_.slowRequestMs) *
                      1000;
    if (obs::FlightRecorder *rec = obs::armedFlightRecorder()) {
        obs::RequestSummary summary;
        summary.method = have_request ? request.method : "?";
        summary.target = have_request ? request.target : "?";
        summary.trace = ctx;
        summary.startNs = start_ns;
        summary.durUs = dur_us;
        summary.status = response.status;
        summary.slow = slow;
        rec->recordRequest(summary);
        if (slow) {
            rec->recordEvent(
                "slow-request",
                have_request
                    ? obs::internedName(router_.routeLabel(request))
                    : "?");
        }
    }
    if (slow) {
        warn("serve: slow request ",
             have_request ? request.method : "?", " ",
             have_request ? request.target : "?", " took ",
             dur_us / 1000, " ms (trace ", obs::traceIdHex(ctx),
             ")\n", obs::spanTreeText(ctx));
    }
}

} // namespace lag::serve
