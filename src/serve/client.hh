/**
 * @file
 * Blocking HTTP/1.1 client for lagd's dialect.
 *
 * Just enough client to talk to HttpServer without curl: connect,
 * send one request, read to EOF (the server always closes), parse
 * the status line and body. Shared by the `lag_query` CLI, the CI
 * smoke, and the serve tests — so the tests exercise the same
 * client bytes the tooling ships.
 */

#ifndef LAG_SERVE_CLIENT_HH
#define LAG_SERVE_CLIENT_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace lag::serve
{

/** One client call's knobs. */
struct ClientOptions
{
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
    /** Whole-call deadline: connect + send + receive. */
    int timeoutMs = 5000;
};

/** Outcome of httpRequest(). */
struct ClientResult
{
    /** False on any transport failure (connect, timeout, short
     * write, unparseable response); @p error says which. */
    bool ok = false;
    int status = 0;
    std::string body;
    std::string error;

    /** Response headers in wire order, names lower-cased. */
    std::vector<std::pair<std::string, std::string>> headers;

    /** First value of header @p name (lower-case), "" absent. */
    std::string_view header(std::string_view name) const;
};

/**
 * Send @p method @p target (e.g. "GET" "/healthz") with optional
 * @p body and return the parsed response. Never throws; transport
 * trouble comes back as ok=false.
 */
ClientResult httpRequest(const ClientOptions &options,
                         std::string_view method,
                         std::string_view target,
                         std::string_view body = {});

} // namespace lag::serve

#endif // LAG_SERVE_CLIENT_HH
