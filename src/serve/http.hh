/**
 * @file
 * Minimal, strict HTTP/1.1 message layer for `lagd`.
 *
 * Self-contained on purpose: the container has no HTTP library, and
 * the server needs exactly one message shape — a bounded request
 * with an optional Content-Length body, answered with one response
 * and `Connection: close`. The parser is strict and total: any
 * input either parses, is Incomplete (read more bytes), or maps to
 * a definite 4xx — malformed bytes can never crash the daemon or
 * smuggle an unbounded allocation (request-line, header block and
 * body are all size-capped before buffering).
 *
 * What is deliberately NOT here: chunked transfer encoding
 * (rejected with 400), multiple requests per connection (the
 * response always closes), and TLS. lag_query and the tests speak
 * exactly this subset.
 */

#ifndef LAG_SERVE_HTTP_HH
#define LAG_SERVE_HTTP_HH

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace lag::serve
{

/** One parsed request. */
struct HttpRequest
{
    std::string method;  ///< e.g. "GET" (token, upper-case only)
    std::string target;  ///< raw request target (path?query)
    std::string path;    ///< percent-decoded path component
    std::string body;    ///< Content-Length bytes, possibly empty

    /** Decoded query parameters in request order. */
    std::vector<std::pair<std::string, std::string>> query;

    /** Headers in request order, names lower-cased. */
    std::vector<std::pair<std::string, std::string>> headers;

    /** First value of query key @p key, nullptr when absent. */
    const std::string *queryParam(std::string_view key) const;

    /** First value of header @p name (lower-case), "" when absent. */
    std::string_view header(std::string_view name) const;
};

/** Size caps applied while parsing. */
struct ParseLimits
{
    std::size_t maxHeaderBytes = 8192; ///< request line + headers
    std::size_t maxHeaderCount = 64;
    std::size_t maxBodyBytes = 1 << 20;
};

/** Outcome of one parse attempt over the bytes read so far. */
enum class ParseStatus
{
    Ok,         ///< request complete and valid
    Incomplete, ///< syntactically fine so far; need more bytes
    BadRequest, ///< malformed — answer 400 and close
    TooLarge,   ///< body over limits.maxBodyBytes — answer 413
};

/**
 * Parse @p data (everything received on the connection so far)
 * into @p out. Headers over maxHeaderBytes are BadRequest even
 * before the terminator arrives, so a byte-dribbling client cannot
 * buffer unbounded garbage. Bytes after the declared body are
 * BadRequest (no pipelining).
 */
ParseStatus parseRequest(std::string_view data,
                         const ParseLimits &limits,
                         HttpRequest &out);

/** One response; serialized with Content-Length and
 * `Connection: close`. */
struct HttpResponse
{
    int status = 200;
    std::string contentType = "application/json";
    std::string body;

    /** Extra response headers (e.g. X-Lag-Trace-Id), emitted in
     * order after the built-in ones. */
    std::vector<std::pair<std::string, std::string>> headers;
};

/** Reason phrase for the status codes this server emits. */
std::string_view statusText(int status);

/** Wire form of @p response (status line, headers, body). */
std::string serializeResponse(const HttpResponse &response);

/** A strict-JSON {"error":...} body with the given status. */
HttpResponse errorResponse(int status, std::string_view message);

/**
 * Percent-decode @p s (no '+'-to-space). Returns false on a
 * truncated or non-hex escape — the caller's 400.
 */
bool percentDecode(std::string_view s, std::string &out);

} // namespace lag::serve

#endif // LAG_SERVE_HTTP_HH
