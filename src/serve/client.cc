#include "client.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <charconv>
#include <chrono>
#include <cstring>
#include <string>

namespace lag::serve
{

namespace
{

using Clock = std::chrono::steady_clock;

/** Owns a socket fd for the duration of one call. */
struct FdGuard
{
    int fd = -1;
    ~FdGuard()
    {
        if (fd >= 0)
            ::close(fd);
    }
};

int
remainingMs(Clock::time_point deadline)
{
    const auto left =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            deadline - Clock::now())
            .count();
    return left > 0 ? static_cast<int>(left) : 0;
}

bool
waitFd(int fd, short events, Clock::time_point deadline)
{
    while (true) {
        pollfd entry{};
        entry.fd = fd;
        entry.events = events;
        const int left = remainingMs(deadline);
        if (left <= 0)
            return false;
        const int ready = ::poll(&entry, 1, left);
        if (ready > 0)
            return true;
        if (ready == 0)
            return false;
        if (errno != EINTR)
            return false;
    }
}

ClientResult
fail(std::string message)
{
    ClientResult result;
    result.error = std::move(message);
    return result;
}

char
lowerAscii(char c)
{
    return (c >= 'A' && c <= 'Z')
               ? static_cast<char>(c - 'A' + 'a')
               : c;
}

/** Parse "Name: value" lines in [begin, end) of @p response into
 * @p out, names lower-cased, values trimmed of surrounding
 * whitespace. Lines without a colon are skipped. */
void
parseHeaderLines(
    const std::string &response, std::size_t begin,
    std::size_t end,
    std::vector<std::pair<std::string, std::string>> &out)
{
    std::size_t at = begin;
    while (at < end) {
        std::size_t line_end = response.find("\r\n", at);
        if (line_end == std::string::npos || line_end > end)
            line_end = end;
        const std::size_t colon = response.find(':', at);
        if (colon != std::string::npos && colon < line_end) {
            std::string name =
                response.substr(at, colon - at);
            for (char &c : name)
                c = lowerAscii(c);
            std::size_t vb = colon + 1;
            std::size_t ve = line_end;
            while (vb < ve && (response[vb] == ' ' ||
                               response[vb] == '\t'))
                ++vb;
            while (ve > vb && (response[ve - 1] == ' ' ||
                               response[ve - 1] == '\t'))
                --ve;
            out.emplace_back(std::move(name),
                             response.substr(vb, ve - vb));
        }
        at = line_end + 2;
    }
}

} // namespace

std::string_view
ClientResult::header(std::string_view name) const
{
    for (const auto &[key, value] : headers) {
        if (key == name)
            return value;
    }
    return {};
}

ClientResult
httpRequest(const ClientOptions &options, std::string_view method,
            std::string_view target, std::string_view body)
{
    const auto deadline =
        Clock::now() + std::chrono::milliseconds(options.timeoutMs);

    FdGuard sock;
    sock.fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
    if (sock.fd < 0)
        return fail("socket: " + std::string(std::strerror(errno)));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(options.port);
    if (::inet_pton(AF_INET, options.host.c_str(),
                    &addr.sin_addr) != 1)
        return fail("bad host address: " + options.host);

    if (::connect(sock.fd,
                  reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) < 0) {
        if (errno != EINPROGRESS)
            return fail("connect: " +
                        std::string(std::strerror(errno)));
        if (!waitFd(sock.fd, POLLOUT, deadline))
            return fail("connect timeout");
        int soerr = 0;
        socklen_t len = sizeof(soerr);
        if (::getsockopt(sock.fd, SOL_SOCKET, SO_ERROR, &soerr,
                         &len) < 0 ||
            soerr != 0)
            return fail("connect: " +
                        std::string(std::strerror(
                            soerr != 0 ? soerr : errno)));
    }

    std::string request;
    request.reserve(128 + body.size());
    request += method;
    request += ' ';
    request += target;
    request += " HTTP/1.1\r\nHost: ";
    request += options.host;
    request += "\r\nConnection: close\r\n";
    if (!body.empty()) {
        request += "Content-Length: ";
        request += std::to_string(body.size());
        request += "\r\n";
    }
    request += "\r\n";
    request += body;

    std::size_t sent = 0;
    while (sent < request.size()) {
        const ssize_t n =
            ::send(sock.fd, request.data() + sent,
                   request.size() - sent, MSG_NOSIGNAL);
        if (n > 0) {
            sent += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            if (!waitFd(sock.fd, POLLOUT, deadline))
                return fail("send timeout");
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        return fail("send: " + std::string(std::strerror(errno)));
    }

    std::string response;
    char buffer[4096];
    while (true) {
        const ssize_t n =
            ::recv(sock.fd, buffer, sizeof(buffer), 0);
        if (n > 0) {
            response.append(buffer,
                            static_cast<std::size_t>(n));
            continue;
        }
        if (n == 0)
            break; // server closed — message complete
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
            if (!waitFd(sock.fd, POLLIN, deadline))
                return fail("receive timeout");
            continue;
        }
        if (errno == EINTR)
            continue;
        return fail("recv: " + std::string(std::strerror(errno)));
    }

    // Parse "HTTP/1.x NNN ..." + headers; the body is everything
    // after the blank line (the server always closes, so EOF
    // delimits it — Content-Length is advisory here).
    const std::size_t line_end = response.find("\r\n");
    if (line_end == std::string::npos ||
        response.compare(0, 5, "HTTP/") != 0)
        return fail("malformed response");
    const std::size_t sp = response.find(' ');
    if (sp == std::string::npos || sp + 4 > line_end)
        return fail("malformed status line");
    int status = 0;
    const auto parsed = std::from_chars(
        response.data() + sp + 1, response.data() + sp + 4, status);
    if (parsed.ec != std::errc{})
        return fail("malformed status code");
    const std::size_t header_end = response.find("\r\n\r\n");
    if (header_end == std::string::npos)
        return fail("truncated response headers");

    ClientResult result;
    result.ok = true;
    result.status = status;
    parseHeaderLines(response, line_end + 2, header_end,
                     result.headers);
    result.body = response.substr(header_end + 4);
    return result;
}

} // namespace lag::serve
