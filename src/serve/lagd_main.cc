/**
 * @file
 * lagd — the LagAlyzer query daemon.
 *
 * Loads the study's cross-session aggregates hot from the result
 * cache (engine::aggregateFromCache) and answers HTTP queries over
 * them: per-app pattern rankings, CDFs, episode drill-downs and the
 * paper's figure/table data, plus health and metrics endpoints.
 *
 * Usage: ./lagd [--quick [SECONDS]] [--port N] [--max-connections N]
 *               [--cache-dir PATH] [--port-file PATH] [--jobs N]
 *               [--no-incremental] [--self-trace OUT] [--metrics-out OUT]
 *               [--flightrec-path OUT] [--slow-request-ms N]
 *               [--watchdog-ms N] [--follow DIR] [--epoch-ms N]
 *
 *  --quick       serve StudyConfig::quickStudy (default 10 s
 *                sessions) instead of the full paper study;
 *  --follow      live-ingest mode: skip the batch cache load and
 *                instead tail every `*.lag` trace file under DIR
 *                (rescanned each epoch), publishing partial-session
 *                analyses into the hot store as the files grow;
 *                `/v1/ingest` exposes the per-source state;
 *  --epoch-ms    ingest epoch cadence in follow mode (default 100);
 *  --port        listen port (default 8437, or LAGALYZER_SERVE_PORT;
 *                0 = ephemeral, see the printed line / --port-file);
 *  --port-file   write the bound port to PATH (atomic rename) once
 *                listening — how scripts find an ephemeral port;
 *  --flightrec-path  where fatal signals dump the flight-recorder
 *                rings (default lagd.flightrec; also
 *                LAGALYZER_FLIGHTREC);
 *  --slow-request-ms requests slower than N ms get their span tree
 *                logged and flagged at /debugz/requests (0 = off);
 *  --watchdog-ms process watchdog sample period (RSS/fds/uptime
 *                gauges + stalled-pool detection; 0 = off,
 *                default 1000).
 *
 * SIGINT/SIGTERM drain gracefully: stop accepting, finish in-flight
 * requests, flush the obs exporters, exit 0.
 */

#include <poll.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>

#include "app/params.hh"
#include "app/study.hh"
#include "engine/ingest.hh"
#include "engine/pool.hh"
#include "obs/flightrec.hh"
#include "obs/scope.hh"
#include "obs/span.hh"
#include "obs/watchdog.hh"
#include "serve/router.hh"
#include "serve/server.hh"
#include "serve/store.hh"
#include "util/logging.hh"
#include "util/shutdown.hh"

namespace
{

/** Write @p port to @p path via temp file + atomic rename, so a
 * poller never reads a half-written file. */
void
writePortFile(const std::string &path, std::uint16_t port)
{
    const std::string tmp = path + ".tmp";
    std::FILE *file = std::fopen(tmp.c_str(), "w");
    if (file == nullptr)
        lag::fatal("lagd: cannot write port file '", tmp,
                   "': ", std::strerror(errno));
    std::fprintf(file, "%u\n", static_cast<unsigned>(port));
    std::fclose(file);
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        lag::fatal("lagd: cannot rename port file to '", path,
                   "': ", std::strerror(errno));
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace lag;

    // Graceful first: the daemon owns its shutdown; obs::install's
    // FlushAndExit request below then stays a no-op.
    installShutdownHandler(ShutdownMode::Graceful);
    obs::install(app::parseObsOptions(argc, argv));

    const app::ServeOptions serve_options =
        app::parseServeOptions(argc, argv);
    const std::uint32_t jobs = app::parseJobsOption(argc, argv);
    const bool no_incremental =
        app::parseNoIncrementalOption(argc, argv);

    bool quick = false;
    int quick_seconds = 10;
    int slow_request_ms = 0;
    int watchdog_ms = 1000;
    int epoch_ms = 100;
    std::string cache_dir;
    std::string port_file;
    std::string follow_dir;
    for (int i = 1; i < argc; ++i) {
        const std::string_view arg(argv[i]);
        if (arg == "--quick") {
            quick = true;
            if (i + 1 < argc && argv[i + 1][0] != '-')
                quick_seconds = std::atoi(argv[++i]);
            if (quick_seconds <= 0)
                fatal("--quick needs a positive session length");
        } else if (arg == "--cache-dir") {
            if (i + 1 >= argc)
                fatal("--cache-dir needs a path");
            cache_dir = argv[++i];
        } else if (arg.rfind("--cache-dir=", 0) == 0) {
            cache_dir = std::string(arg.substr(12));
        } else if (arg == "--port-file") {
            if (i + 1 >= argc)
                fatal("--port-file needs a path");
            port_file = argv[++i];
        } else if (arg.rfind("--port-file=", 0) == 0) {
            port_file = std::string(arg.substr(12));
        } else if (arg == "--slow-request-ms") {
            if (i + 1 >= argc)
                fatal("--slow-request-ms needs a value");
            slow_request_ms = std::atoi(argv[++i]);
            if (slow_request_ms < 0)
                fatal("--slow-request-ms must be >= 0");
        } else if (arg.rfind("--slow-request-ms=", 0) == 0) {
            slow_request_ms =
                std::atoi(std::string(arg.substr(18)).c_str());
            if (slow_request_ms < 0)
                fatal("--slow-request-ms must be >= 0");
        } else if (arg == "--follow") {
            if (i + 1 >= argc)
                fatal("--follow needs a directory");
            follow_dir = argv[++i];
        } else if (arg.rfind("--follow=", 0) == 0) {
            follow_dir = std::string(arg.substr(9));
        } else if (arg == "--epoch-ms") {
            if (i + 1 >= argc)
                fatal("--epoch-ms needs a value");
            epoch_ms = std::atoi(argv[++i]);
            if (epoch_ms <= 0)
                fatal("--epoch-ms must be > 0");
        } else if (arg.rfind("--epoch-ms=", 0) == 0) {
            epoch_ms = std::atoi(std::string(arg.substr(11)).c_str());
            if (epoch_ms <= 0)
                fatal("--epoch-ms must be > 0");
        } else if (arg == "--watchdog-ms") {
            if (i + 1 >= argc)
                fatal("--watchdog-ms needs a value");
            watchdog_ms = std::atoi(argv[++i]);
            if (watchdog_ms < 0)
                fatal("--watchdog-ms must be >= 0");
        } else if (arg.rfind("--watchdog-ms=", 0) == 0) {
            watchdog_ms =
                std::atoi(std::string(arg.substr(14)).c_str());
            if (watchdog_ms < 0)
                fatal("--watchdog-ms must be >= 0");
        } else {
            fatal("lagd: unknown argument '", arg, "'");
        }
    }

    // The daemon always flies with the recorder armed: if
    // --flightrec-path already configured it (obs::install above),
    // this first-call-wins configure is a no-op; otherwise it arms
    // the rings with the default dump path. Spans must be on for
    // the rings (and /debugz span trees) to see anything.
    {
        obs::FlightRecorderOptions frec;
        frec.dumpPath = "lagd.flightrec";
        obs::FlightRecorder::instance().configure(frec);
        installFatalSignalDumper(obs::flightrecFatalDump);
        obs::setSpansEnabled(true);
    }

    app::StudyConfig config =
        quick ? app::StudyConfig::quickStudy(quick_seconds)
              : app::StudyConfig::paperStudy();
    if (!cache_dir.empty())
        config.cacheDir = cache_dir;
    config.jobs = jobs;
    config.incremental = !no_incremental;

    engine::ThreadPool pool(config.jobs);
    serve::HotStore store(config, pool);

    std::unique_ptr<engine::IngestPipeline> ingest;
    if (follow_dir.empty()) {
        inform("lagd: loading ", store.appCount(),
               " apps from the result cache");
        store.load();
    } else {
        inform("lagd: following '", follow_dir,
               "' (epoch every ", epoch_ms, " ms)");
        store.startFollow();
        engine::IngestOptions ingest_options;
        ingest_options.perceptibleThreshold =
            config.perceptibleThreshold;
        ingest_options.epochMillis = epoch_ms;
        ingest = std::make_unique<engine::IngestPipeline>(
            pool, ingest_options,
            [&store](const engine::IngestUpdate &update) {
                store.applyIngest(update);
            });
        ingest->addDirectory(follow_dir);
        ingest->scanDirectory(follow_dir);
    }

    serve::Router router;
    store.installRoutes(router);
    if (ingest)
        serve::installIngestRoute(router, *ingest);

    serve::ServerConfig server_config;
    server_config.port = serve_options.port;
    server_config.maxConnections = serve_options.maxConnections;
    server_config.slowRequestMs = slow_request_ms;
    serve::HttpServer server(server_config, std::move(router),
                             pool);
    server.start();
    if (ingest)
        ingest->start();

    obs::WatchdogOptions watchdog_options;
    watchdog_options.periodMs = watchdog_ms;
    obs::Watchdog watchdog(watchdog_options);
    if (watchdog_ms > 0)
        watchdog.start();

    std::cout << "lagd: listening on 127.0.0.1:" << server.port()
              << std::endl;
    if (!port_file.empty())
        writePortFile(port_file, server.port());

    // Park until SIGINT/SIGTERM; the self-pipe makes the wait
    // interruptible without sig-handler heroics.
    while (!shutdownRequested()) {
        pollfd entry{};
        entry.fd = shutdownPollFd();
        entry.events = POLLIN;
        if (::poll(&entry, 1, -1) < 0 && errno != EINTR)
            break;
    }

    inform("lagd: signal ", shutdownSignal(),
           " received, draining");
    if (ingest)
        ingest->stop();
    server.stop();
    runShutdownCallbacks();
    std::cout << "lagd: shut down cleanly" << std::endl;
    return 0;
}
