#include "svg.hh"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "util/strings.hh"

namespace lag::viz
{

namespace
{

std::string
num(double v)
{
    // Two decimals are below half a pixel everywhere we draw.
    return formatDouble(v, 2);
}

} // namespace

SvgDocument::SvgDocument(double width, double height)
    : width_(width), height_(height)
{
}

void
SvgDocument::rect(double x, double y, double w, double h,
                  std::string_view fill, std::string_view stroke,
                  std::string_view tooltip)
{
    body_ += "<rect x=\"" + num(x) + "\" y=\"" + num(y) + "\" width=\"" +
             num(w) + "\" height=\"" + num(h) + "\" fill=\"" +
             std::string(fill) + "\"";
    if (!stroke.empty())
        body_ += " stroke=\"" + std::string(stroke) + "\"";
    if (tooltip.empty()) {
        body_ += "/>\n";
    } else {
        body_ += "><title>" + xmlEscape(tooltip) + "</title></rect>\n";
    }
}

void
SvgDocument::line(double x1, double y1, double x2, double y2,
                  std::string_view stroke, double stroke_width)
{
    body_ += "<line x1=\"" + num(x1) + "\" y1=\"" + num(y1) +
             "\" x2=\"" + num(x2) + "\" y2=\"" + num(y2) +
             "\" stroke=\"" + std::string(stroke) +
             "\" stroke-width=\"" + num(stroke_width) + "\"/>\n";
}

void
SvgDocument::circle(double cx, double cy, double r, std::string_view fill,
                    std::string_view tooltip)
{
    body_ += "<circle cx=\"" + num(cx) + "\" cy=\"" + num(cy) +
             "\" r=\"" + num(r) + "\" fill=\"" + std::string(fill) +
             "\"";
    if (tooltip.empty()) {
        body_ += "/>\n";
    } else {
        body_ += "><title>" + xmlEscape(tooltip) + "</title></circle>\n";
    }
}

void
SvgDocument::text(double x, double y, std::string_view content,
                  double size, std::string_view fill, TextAnchor anchor)
{
    const char *anchor_name = "start";
    if (anchor == TextAnchor::Middle)
        anchor_name = "middle";
    else if (anchor == TextAnchor::End)
        anchor_name = "end";
    body_ += "<text x=\"" + num(x) + "\" y=\"" + num(y) +
             "\" font-size=\"" + num(size) +
             "\" font-family=\"Helvetica,Arial,sans-serif\" fill=\"" +
             std::string(fill) + "\" text-anchor=\"" + anchor_name +
             "\">" + xmlEscape(content) + "</text>\n";
}

void
SvgDocument::polyline(const std::vector<std::pair<double, double>> &points,
                      std::string_view stroke, double stroke_width)
{
    body_ += "<polyline fill=\"none\" stroke=\"" + std::string(stroke) +
             "\" stroke-width=\"" + num(stroke_width) + "\" points=\"";
    for (const auto &[x, y] : points)
        body_ += num(x) + "," + num(y) + " ";
    body_ += "\"/>\n";
}

void
SvgDocument::raw(std::string_view fragment)
{
    body_ += fragment;
}

std::string
SvgDocument::finish() const
{
    std::ostringstream out;
    out << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\""
        << num(width_) << "\" height=\"" << num(height_)
        << "\" viewBox=\"0 0 " << num(width_) << ' ' << num(height_)
        << "\">\n<rect width=\"100%\" height=\"100%\" fill=\"#ffffff\"/>\n"
        << body_ << "</svg>\n";
    return out.str();
}

void
SvgDocument::writeFile(const std::string &path) const
{
    std::ofstream out(path, std::ios::trunc);
    if (!out)
        throw std::runtime_error("cannot open '" + path + "' for writing");
    out << finish();
    if (!out)
        throw std::runtime_error("write to '" + path + "' failed");
}

} // namespace lag::viz
