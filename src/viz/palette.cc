#include "palette.hh"

#include <array>

namespace lag::viz
{

std::string_view
intervalColor(core::IntervalType type)
{
    switch (type) {
      case core::IntervalType::Dispatch: return "#9aa4ad";
      case core::IntervalType::Listener: return "#4c78a8";
      case core::IntervalType::Paint:    return "#59a14f";
      case core::IntervalType::Native:   return "#e8743b";
      case core::IntervalType::Async:    return "#b07aa1";
      case core::IntervalType::Gc:       return "#d62728";
    }
    return "#000000";
}

std::string_view
threadStateColor(trace::TraceThreadState state)
{
    switch (state) {
      case trace::TraceThreadState::Runnable: return "#2ca02c";
      case trace::TraceThreadState::Blocked:  return "#d62728";
      case trace::TraceThreadState::Waiting:  return "#ff7f0e";
      case trace::TraceThreadState::Sleeping: return "#1f77b4";
    }
    return "#000000";
}

std::string_view
triggerColor(std::size_t index)
{
    static constexpr std::array<std::string_view, 4> kColors = {
        "#4c78a8", // input
        "#59a14f", // output
        "#b07aa1", // async
        "#bab0ac", // unspecified
    };
    return kColors[index % kColors.size()];
}

std::string_view
occurrenceColor(std::size_t index)
{
    static constexpr std::array<std::string_view, 4> kColors = {
        "#d62728", // always
        "#ff7f0e", // sometimes
        "#f2cf5b", // once
        "#59a14f", // never
    };
    return kColors[index % kColors.size()];
}

namespace
{

constexpr std::array<std::string_view, 14> kSeries = {
    "#4c78a8", "#f58518", "#e45756", "#72b7b2", "#54a24b",
    "#eeca3b", "#b279a2", "#ff9da6", "#9d755d", "#bab0ac",
    "#1f77b4", "#2ca02c", "#d62728", "#7f7f7f",
};

} // namespace

std::string_view
seriesColor(std::size_t index)
{
    return kSeries[index % kSeries.size()];
}

std::size_t
seriesColorCount()
{
    return kSeries.size();
}

} // namespace lag::viz
