/**
 * @file
 * Minimal SVG document writer.
 *
 * The paper's figures were MATLAB plots and its episode sketches a
 * Swing GUI; this project renders both as standalone SVG files. The
 * writer is deliberately small: shapes, text, polylines, groups and
 * per-element tooltips (SVG <title>, which is how the "hover over a
 * sample point to see the stack" interaction survives outside a
 * GUI).
 */

#ifndef LAG_VIZ_SVG_HH
#define LAG_VIZ_SVG_HH

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace lag::viz
{

/** Text anchoring for text(). */
enum class TextAnchor
{
    Start,
    Middle,
    End,
};

/** An SVG document under construction. */
class SvgDocument
{
  public:
    /** Create a document with the given pixel dimensions. */
    SvgDocument(double width, double height);

    double width() const { return width_; }
    double height() const { return height_; }

    /** Filled/stroked rectangle; empty style strings are omitted.
     * @p tooltip becomes a nested <title> (hover text). */
    void rect(double x, double y, double w, double h,
              std::string_view fill, std::string_view stroke = "",
              std::string_view tooltip = "");

    /** Line segment. */
    void line(double x1, double y1, double x2, double y2,
              std::string_view stroke, double stroke_width = 1.0);

    /** Circle, optionally with a tooltip. */
    void circle(double cx, double cy, double r, std::string_view fill,
                std::string_view tooltip = "");

    /** Text label. @p size in px. */
    void text(double x, double y, std::string_view content, double size,
              std::string_view fill = "#000000",
              TextAnchor anchor = TextAnchor::Start);

    /** Polyline through the given points (x,y pairs). */
    void polyline(const std::vector<std::pair<double, double>> &points,
                  std::string_view stroke, double stroke_width = 1.5);

    /** Raw SVG fragment escape hatch. */
    void raw(std::string_view fragment);

    /** Finish and return the SVG text. */
    std::string finish() const;

    /** Write the document to @p path. Throws std::runtime_error on
     * I/O failure. */
    void writeFile(const std::string &path) const;

  private:
    double width_;
    double height_;
    std::string body_;
};

} // namespace lag::viz

#endif // LAG_VIZ_SVG_HH
