#include "sketch.hh"

#include <algorithm>
#include <functional>
#include <sstream>

#include "palette.hh"
#include "util/strings.hh"

namespace lag::viz
{

namespace
{

using core::Episode;
using core::IntervalNode;
using core::IntervalType;
using core::Session;

constexpr double kRowH = 22.0;
constexpr double kRowGap = 2.0;
constexpr double kMarginLeft = 40.0;
constexpr double kMarginRight = 24.0;
constexpr double kSampleRowH = 18.0;
constexpr double kAxisH = 36.0;
constexpr double kTitleH = 26.0;
constexpr double kLegendH = 20.0;

/** Short label "JToolBar.paint" from symbols. */
std::string
shortLabel(const Session &session, const IntervalNode &node)
{
    if (node.type == IntervalType::Gc) {
        return node.gcKind == trace::TraceGcKind::Major ? "major GC"
                                                        : "minor GC";
    }
    if (node.type == IntervalType::Dispatch)
        return "dispatch";
    const std::string &cls = session.symbol(node.classSym);
    const std::string &mth = session.symbol(node.methodSym);
    const auto dot = cls.rfind('.');
    const std::string simple =
        dot == std::string::npos ? cls : cls.substr(dot + 1);
    return simple + "." + mth;
}

/** Full tooltip text for an interval. */
std::string
intervalTooltip(const Session &session, const IntervalNode &node)
{
    std::string tip = intervalTypeName(node.type);
    if (node.type != IntervalType::Dispatch &&
        node.type != IntervalType::Gc) {
        tip += " " + session.symbol(node.classSym) + "." +
               session.symbol(node.methodSym);
    }
    tip += " — " + formatDurationNs(node.duration());
    return tip;
}

/** Recursive SVG interval painter; depth 0 is the dispatch row. */
void
paintInterval(SvgDocument &doc, const Session &session,
              const IntervalNode &node, std::size_t depth,
              std::size_t max_depth, double t0, double scale,
              double tree_top)
{
    const double x = kMarginLeft +
                     static_cast<double>(node.begin - t0) * scale;
    const double w = std::max(
        1.0, static_cast<double>(node.duration()) * scale);
    // Dispatch (depth 0) sits at the bottom of the tree area.
    const double y = tree_top + static_cast<double>(
                                    max_depth - 1 - depth) *
                                    (kRowH + kRowGap);
    doc.rect(x, y, w, kRowH,
             std::string(intervalColor(node.type)), "#333333",
             intervalTooltip(session, node));
    const std::string label = shortLabel(session, node);
    if (w > 8.0 * static_cast<double>(label.size())) {
        doc.text(x + w / 2.0, y + kRowH / 2.0 + 4.0, label, 10.0,
                 "#ffffff", TextAnchor::Middle);
    }
    for (const auto &child : node.children) {
        paintInterval(doc, session, child, depth + 1, max_depth, t0,
                      scale, tree_top);
    }
}

} // namespace

SvgDocument
renderEpisodeSketch(const Session &session, const Episode &episode,
                    const SketchOptions &options)
{
    const IntervalNode &root = session.episodeRoot(episode);
    const std::size_t depth = root.depth();
    const double tree_h =
        static_cast<double>(depth) * (kRowH + kRowGap);
    const double tree_top = kTitleH + kSampleRowH;
    const double height =
        tree_top + tree_h + kAxisH + (options.legend ? kLegendH : 0.0);
    SvgDocument doc(options.width, height);

    const double plot_w =
        options.width - kMarginLeft - kMarginRight;
    const auto span = std::max<DurationNs>(1, episode.duration());
    const double scale = plot_w / static_cast<double>(span);

    std::string title = options.title;
    if (title.empty()) {
        title = session.meta().appName + ": episode @ " +
                formatDouble(nsToSec(episode.begin), 2) + " s, " +
                formatDurationNs(episode.duration());
    }
    doc.text(options.width / 2.0, 17.0, title, 13.0, "#000000",
             TextAnchor::Middle);

    // Sample dots along the top edge (GUI thread only).
    const auto &samples = session.samples();
    for (std::size_t s = episode.firstSample; s < episode.lastSample;
         ++s) {
        for (const auto &entry : samples[s].threads) {
            if (entry.thread != episode.thread)
                continue;
            const double x =
                kMarginLeft +
                static_cast<double>(samples[s].time - episode.begin) *
                    scale;
            std::string tip =
                std::string(traceThreadStateName(entry.state)) + " @ " +
                formatDouble(nsToSec(samples[s].time), 3) + " s";
            for (auto it = entry.frames.rbegin();
                 it != entry.frames.rend(); ++it) {
                tip += "\n  at " + session.symbol(it->classSym) + "." +
                       session.symbol(it->methodSym);
            }
            doc.circle(x, kTitleH + kSampleRowH / 2.0, 3.0,
                       std::string(threadStateColor(entry.state)), tip);
            break;
        }
    }

    paintInterval(doc, session, root, 0, depth, episode.begin, scale,
                  tree_top);

    // Time axis in session seconds.
    const double axis_y = tree_top + tree_h + 14.0;
    doc.line(kMarginLeft, axis_y, kMarginLeft + plot_w, axis_y,
             "#000000");
    for (int i = 0; i <= 4; ++i) {
        const double frac = static_cast<double>(i) / 4.0;
        const double x = kMarginLeft + frac * plot_w;
        const TimeNs t = episode.begin +
                         static_cast<TimeNs>(
                             frac * static_cast<double>(span));
        doc.line(x, axis_y, x, axis_y + 4.0, "#000000");
        doc.text(x, axis_y + 16.0, formatDouble(nsToSec(t), 3) + " s",
                 9.0, "#444444", TextAnchor::Middle);
    }

    if (options.legend) {
        double lx = kMarginLeft;
        const double ly = axis_y + 26.0;
        for (const IntervalType type :
             {IntervalType::Dispatch, IntervalType::Listener,
              IntervalType::Paint, IntervalType::Native,
              IntervalType::Async, IntervalType::Gc}) {
            doc.rect(lx, ly, 10.0, 10.0,
                     std::string(intervalColor(type)));
            const std::string name = intervalTypeName(type);
            doc.text(lx + 13.0, ly + 9.0, name, 9.0);
            lx += 13.0 + 6.5 * static_cast<double>(name.size()) + 14.0;
        }
    }
    return doc;
}

std::string
renderAsciiSketch(const Session &session, const Episode &episode,
                  std::size_t width)
{
    width = std::max<std::size_t>(width, 20);
    const IntervalNode &root = session.episodeRoot(episode);
    const std::size_t depth = root.depth();
    const auto span = std::max<DurationNs>(1, episode.duration());

    const auto column = [&](TimeNs t) {
        const auto c = static_cast<std::size_t>(
            static_cast<double>(t - episode.begin) /
            static_cast<double>(span) *
            static_cast<double>(width - 1));
        return std::min(c, width - 1);
    };

    // rows[0] = sample states; rows[1] = deepest intervals; the
    // bottom row is the dispatch interval.
    std::vector<std::string> rows(depth + 1,
                                  std::string(width, ' '));

    const auto &samples = session.samples();
    for (std::size_t s = episode.firstSample; s < episode.lastSample;
         ++s) {
        for (const auto &entry : samples[s].threads) {
            if (entry.thread != episode.thread)
                continue;
            char c = '?';
            switch (entry.state) {
              case trace::TraceThreadState::Runnable: c = 'r'; break;
              case trace::TraceThreadState::Blocked:  c = 'b'; break;
              case trace::TraceThreadState::Waiting:  c = 'w'; break;
              case trace::TraceThreadState::Sleeping: c = 's'; break;
            }
            rows[0][column(samples[s].time)] = c;
            break;
        }
    }

    const auto type_char = [](IntervalType type) {
        switch (type) {
          case IntervalType::Dispatch: return 'D';
          case IntervalType::Listener: return 'L';
          case IntervalType::Paint:    return 'P';
          case IntervalType::Native:   return 'N';
          case IntervalType::Async:    return 'A';
          case IntervalType::Gc:       return 'G';
        }
        return '?';
    };

    const std::function<void(const IntervalNode &, std::size_t)> paint =
        [&](const IntervalNode &node, std::size_t d) {
            const std::size_t row = depth - d; // dispatch at bottom
            const std::size_t from = column(node.begin);
            const std::size_t to = column(node.end);
            for (std::size_t c = from; c <= to; ++c)
                rows[row][c] = type_char(node.type);
            for (const auto &child : node.children)
                paint(child, d + 1);
        };
    paint(root, 0);

    std::ostringstream out;
    out << "episode @ " << formatDouble(nsToSec(episode.begin), 2)
        << " s, duration " << formatDurationNs(episode.duration())
        << " (samples: r=runnable b=blocked w=waiting s=sleeping)\n";
    for (const auto &row : rows)
        out << row << '\n';
    return out.str();
}

} // namespace lag::viz
