#include "charts.hh"

#include <algorithm>

#include "util/strings.hh"

namespace lag::viz
{

namespace
{

constexpr double kLeftMargin = 130.0;
constexpr double kRightMargin = 30.0;
constexpr double kTopMargin = 46.0;
constexpr double kBottomMargin = 56.0;
constexpr double kRowHeight = 22.0;
constexpr double kBarHeight = 14.0;
constexpr double kPlotWidth = 480.0;

} // namespace

StackedBarChart::StackedBarChart(std::string title, std::string x_label,
                                 double x_max)
    : title_(std::move(title)), x_label_(std::move(x_label)),
      x_max_(x_max)
{
}

void
StackedBarChart::addRow(BarRow row)
{
    rows_.push_back(std::move(row));
}

void
StackedBarChart::addLegend(std::string label, std::string color)
{
    legend_.emplace_back(std::move(label), std::move(color));
}

SvgDocument
StackedBarChart::render() const
{
    const double plot_h =
        kRowHeight * static_cast<double>(std::max<std::size_t>(
                         rows_.size(), 1));
    const double width = kLeftMargin + kPlotWidth + kRightMargin;
    const double height = kTopMargin + plot_h + kBottomMargin;
    SvgDocument doc(width, height);

    doc.text(width / 2.0, 20.0, title_, 13.0, "#000000",
             TextAnchor::Middle);

    // Legend across the top.
    double lx = kLeftMargin;
    for (const auto &[label, color] : legend_) {
        doc.rect(lx, 28.0, 10.0, 10.0, color);
        doc.text(lx + 14.0, 37.0, label, 10.0);
        lx += 14.0 + 7.0 * static_cast<double>(label.size()) + 18.0;
    }

    // Vertical grid lines every 25% of the axis.
    for (int i = 0; i <= 4; ++i) {
        const double frac = static_cast<double>(i) / 4.0;
        const double x = kLeftMargin + frac * kPlotWidth;
        doc.line(x, kTopMargin, x, kTopMargin + plot_h, "#dddddd");
        doc.text(x, kTopMargin + plot_h + 16.0,
                 formatDouble(frac * x_max_, x_max_ < 10 ? 2 : 0), 10.0,
                 "#444444", TextAnchor::Middle);
    }
    doc.text(kLeftMargin + kPlotWidth / 2.0,
             kTopMargin + plot_h + 34.0, x_label_, 11.0, "#000000",
             TextAnchor::Middle);

    for (std::size_t r = 0; r < rows_.size(); ++r) {
        const BarRow &row = rows_[r];
        const double y = kTopMargin + kRowHeight * static_cast<double>(r) +
                         (kRowHeight - kBarHeight) / 2.0;
        doc.text(kLeftMargin - 6.0, y + kBarHeight - 3.0, row.label,
                 10.0, "#000000", TextAnchor::End);
        double x = kLeftMargin;
        for (const auto &segment : row.segments) {
            const double w =
                std::max(0.0, segment.value / x_max_) * kPlotWidth;
            if (w <= 0.0)
                continue;
            const double clipped =
                std::min(w, kLeftMargin + kPlotWidth - x);
            doc.rect(x, y, clipped, kBarHeight, segment.color, "",
                     row.label + ": " +
                         formatDouble(segment.value, 1));
            x += clipped;
            if (x >= kLeftMargin + kPlotWidth)
                break;
        }
    }

    // Plot frame.
    doc.line(kLeftMargin, kTopMargin, kLeftMargin, kTopMargin + plot_h,
             "#000000");
    doc.line(kLeftMargin, kTopMargin + plot_h, kLeftMargin + kPlotWidth,
             kTopMargin + plot_h, "#000000");
    return doc;
}

CdfChart::CdfChart(std::string title, std::string x_label,
                   std::string y_label)
    : title_(std::move(title)), x_label_(std::move(x_label)),
      y_label_(std::move(y_label))
{
}

void
CdfChart::addSeries(CdfSeries series)
{
    series_.push_back(std::move(series));
}

SvgDocument
CdfChart::render() const
{
    constexpr double kPlotH = 320.0;
    constexpr double kLegendW = 130.0;
    const double width =
        kLeftMargin + kPlotWidth + kLegendW + kRightMargin;
    const double height = kTopMargin + kPlotH + kBottomMargin;
    SvgDocument doc(width, height);

    doc.text((kLeftMargin + kPlotWidth) / 2.0, 20.0, title_, 13.0,
             "#000000", TextAnchor::Middle);

    // Grid and axis labels every 20%.
    for (int i = 0; i <= 5; ++i) {
        const double frac = static_cast<double>(i) / 5.0;
        const double x = kLeftMargin + frac * kPlotWidth;
        const double y = kTopMargin + kPlotH - frac * kPlotH;
        doc.line(x, kTopMargin, x, kTopMargin + kPlotH, "#dddddd");
        doc.line(kLeftMargin, y, kLeftMargin + kPlotWidth, y, "#dddddd");
        doc.text(x, kTopMargin + kPlotH + 16.0,
                 formatDouble(frac * 100.0, 0), 10.0, "#444444",
                 TextAnchor::Middle);
        doc.text(kLeftMargin - 8.0, y + 3.0, formatDouble(frac * 100.0, 0),
                 10.0, "#444444", TextAnchor::End);
    }
    doc.text(kLeftMargin + kPlotWidth / 2.0, kTopMargin + kPlotH + 34.0,
             x_label_, 11.0, "#000000", TextAnchor::Middle);
    doc.text(18.0, kTopMargin - 10.0, y_label_, 11.0);

    for (std::size_t s = 0; s < series_.size(); ++s) {
        const CdfSeries &series = series_[s];
        std::vector<std::pair<double, double>> pixels;
        pixels.reserve(series.points.size());
        for (const auto &[px, py] : series.points) {
            pixels.emplace_back(kLeftMargin + px * kPlotWidth,
                                kTopMargin + kPlotH - py * kPlotH);
        }
        doc.polyline(pixels, series.color);
        const double ly =
            kTopMargin + 14.0 * static_cast<double>(s) + 8.0;
        doc.line(kLeftMargin + kPlotWidth + 12.0, ly,
                 kLeftMargin + kPlotWidth + 30.0, ly, series.color, 2.0);
        doc.text(kLeftMargin + kPlotWidth + 34.0, ly + 3.0, series.label,
                 9.0);
    }

    doc.line(kLeftMargin, kTopMargin, kLeftMargin, kTopMargin + kPlotH,
             "#000000");
    doc.line(kLeftMargin, kTopMargin + kPlotH, kLeftMargin + kPlotWidth,
             kTopMargin + kPlotH, "#000000");
    return doc;
}

} // namespace lag::viz
