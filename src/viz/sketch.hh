/**
 * @file
 * Episode sketches (paper §II.B, Figures 1 and 2).
 *
 * An episode sketch shows everything known about one episode along a
 * time axis: (1) the time axis itself, in session time; (2) the tree
 * of nested intervals, one row per nesting depth with the Dispatch
 * interval at the bottom, colored by interval type; (3) the call
 * stack samples of the GUI thread as dots along the top edge,
 * colored by thread state, with the full stack as hover text.
 *
 * Gaps in the dot row during and around a GC interval are real: the
 * sampler is stopped while the world is stopped (the effect the
 * paper dissects in §II.B).
 *
 * Both an SVG renderer and an ASCII renderer (for terminal use in
 * the pattern browser example) are provided.
 */

#ifndef LAG_VIZ_SKETCH_HH
#define LAG_VIZ_SKETCH_HH

#include <string>

#include "core/session.hh"
#include "svg.hh"

namespace lag::viz
{

/** Rendering options for SVG sketches. */
struct SketchOptions
{
    double width = 960.0;
    bool legend = true;
    std::string title; ///< defaults to "<app>: episode @ <t>, <dur>"
};

/** Render an episode sketch as SVG. */
SvgDocument renderEpisodeSketch(const core::Session &session,
                                const core::Episode &episode,
                                const SketchOptions &options = {});

/**
 * Render an episode sketch as fixed-width text, @p width characters
 * wide. Row 1 shows sample states (r/b/w/s), the remaining rows the
 * interval tree from innermost (top) to the dispatch row (bottom),
 * using D/L/P/N/A/G per interval type.
 */
std::string renderAsciiSketch(const core::Session &session,
                              const core::Episode &episode,
                              std::size_t width = 100);

} // namespace lag::viz

#endif // LAG_VIZ_SKETCH_HH
