/**
 * @file
 * Shared colors for charts and episode sketches.
 *
 * Interval types each get a fixed color (the paper: "LagAlyzer
 * renders each interval type in a different color"), thread states
 * get the colors used for sample dots, and charts draw from a
 * categorical series palette.
 */

#ifndef LAG_VIZ_PALETTE_HH
#define LAG_VIZ_PALETTE_HH

#include <string_view>

#include "core/interval.hh"
#include "trace/trace.hh"

namespace lag::viz
{

/** Fill color of an interval type in sketches and legends. */
std::string_view intervalColor(core::IntervalType type);

/** Dot color of a sampled thread state. */
std::string_view threadStateColor(trace::TraceThreadState state);

/** Colors of the trigger categories (Figure 5). */
std::string_view triggerColor(std::size_t index);

/** Colors of the occurrence classes (Figure 4). */
std::string_view occurrenceColor(std::size_t index);

/** Categorical series palette (Figure 3's fourteen lines). */
std::string_view seriesColor(std::size_t index);

/** Number of distinct series colors before they repeat. */
std::size_t seriesColorCount();

} // namespace lag::viz

#endif // LAG_VIZ_PALETTE_HH
