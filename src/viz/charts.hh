/**
 * @file
 * Chart builders for the paper's evaluation figures.
 *
 * Two chart forms cover all of Figures 3-8:
 *
 *  - StackedBarChart: horizontal 100%-stacked (or absolute) bars,
 *    one row per benchmark — Figures 4, 5, 6, 8, and the simple
 *    bars of Figure 7;
 *  - CdfChart: multi-series line chart on percentage axes —
 *    Figure 3.
 */

#ifndef LAG_VIZ_CHARTS_HH
#define LAG_VIZ_CHARTS_HH

#include <string>
#include <utility>
#include <vector>

#include "svg.hh"

namespace lag::viz
{

/** One segment of a stacked bar. */
struct BarSegment
{
    double value = 0.0;     ///< in axis units (e.g. percent)
    std::string color;
};

/** One row (benchmark) of a stacked bar chart. */
struct BarRow
{
    std::string label;
    std::vector<BarSegment> segments;
};

/** Horizontal stacked bar chart. */
class StackedBarChart
{
  public:
    /** @param title    chart caption
     *  @param x_label  axis caption (e.g. "Episodes [%]")
     *  @param x_max    axis maximum (e.g. 100 for shares, 60 for
     *                  the zoomed Figure 8, 2 for Figure 7) */
    StackedBarChart(std::string title, std::string x_label,
                    double x_max);

    /** Append a row; rows render top to bottom in call order. */
    void addRow(BarRow row);

    /** Add a legend entry. */
    void addLegend(std::string label, std::string color);

    /** Render to SVG. */
    SvgDocument render() const;

  private:
    std::string title_;
    std::string x_label_;
    double x_max_;
    std::vector<BarRow> rows_;
    std::vector<std::pair<std::string, std::string>> legend_;
};

/** One series of a CDF chart. */
struct CdfSeries
{
    std::string label;
    std::string color;
    /** Points in [0,1]x[0,1]; rendered on percent axes. */
    std::vector<std::pair<double, double>> points;
};

/** Multi-series line chart on percent axes (Figure 3). */
class CdfChart
{
  public:
    CdfChart(std::string title, std::string x_label,
             std::string y_label);

    void addSeries(CdfSeries series);

    SvgDocument render() const;

  private:
    std::string title_;
    std::string x_label_;
    std::string y_label_;
    std::vector<CdfSeries> series_;
};

} // namespace lag::viz

#endif // LAG_VIZ_CHARTS_HH
