/**
 * @file
 * Arena bump allocator: alignment, block growth and reuse, the
 * allocator adapter's heap fallback, and the copy/move propagation
 * rules that keep container copies from dangling into an arena.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <utility>
#include <vector>

#include "util/arena.hh"

namespace lag
{
namespace
{

TEST(Arena, AllocationsAreAligned)
{
    Arena arena;
    for (const std::size_t align : {1u, 2u, 4u, 8u, 16u}) {
        for (int i = 0; i < 8; ++i) {
            void *ptr = arena.allocate(3, align);
            EXPECT_EQ(reinterpret_cast<std::uintptr_t>(ptr) % align,
                      0u)
                << "align " << align << " iteration " << i;
        }
    }
    EXPECT_EQ(arena.allocationCount(), 5u * 8u);
}

TEST(Arena, BumpsWithinOneBlock)
{
    Arena arena(1024);
    char *a = static_cast<char *>(arena.allocate(16, 1));
    char *b = static_cast<char *>(arena.allocate(16, 1));
    // Consecutive small allocations come from the same block,
    // adjacent in memory: allocation is a pointer increment.
    EXPECT_EQ(b, a + 16);
    EXPECT_EQ(arena.blockCount(), 1u);
    EXPECT_EQ(arena.bytesAllocated(), 32u);
}

TEST(Arena, GrowsAndServesOversizedRequests)
{
    Arena arena(64);
    arena.allocate(48, 8);
    EXPECT_EQ(arena.blockCount(), 1u);

    // Too big for the rest of block 0 → a new block, and the
    // request is served even though it exceeds the block budget.
    void *big = arena.allocate(100 * 1024, 8);
    std::memset(big, 0x5a, 100 * 1024);
    EXPECT_GE(arena.blockCount(), 2u);
    EXPECT_GE(arena.bytesReserved(), arena.bytesAllocated());
}

TEST(Arena, ResetDropsEverything)
{
    Arena arena;
    arena.allocate(1000, 8);
    arena.allocate(1000, 8);
    EXPECT_GT(arena.bytesReserved(), 0u);

    arena.reset();
    EXPECT_EQ(arena.blockCount(), 0u);
    EXPECT_EQ(arena.bytesAllocated(), 0u);
    EXPECT_EQ(arena.bytesReserved(), 0u);
    EXPECT_EQ(arena.allocationCount(), 0u);

    // The arena is fully reusable after reset.
    void *ptr = arena.allocate(64, 8);
    std::memset(ptr, 0, 64);
    EXPECT_EQ(arena.allocationCount(), 1u);
}

TEST(ArenaAllocator, DefaultFallsBackToHeap)
{
    // No arena: behaves like std::allocator, including deallocate.
    std::vector<int, ArenaAllocator<int>> v;
    for (int i = 0; i < 1000; ++i)
        v.push_back(i);
    EXPECT_EQ(v.size(), 1000u);
    EXPECT_EQ(v.front(), 0);
    EXPECT_EQ(v.back(), 999);
}

TEST(ArenaAllocator, VectorStorageComesFromTheArena)
{
    Arena arena;
    std::vector<int, ArenaAllocator<int>> v{ArenaAllocator<int>(
        &arena)};
    v.reserve(256);
    for (int i = 0; i < 256; ++i)
        v.push_back(i);
    EXPECT_GE(arena.bytesAllocated(), 256 * sizeof(int));
    EXPECT_GE(arena.allocationCount(), 1u);
}

TEST(ArenaAllocator, MovePropagatesTheArena)
{
    Arena arena;
    std::vector<int, ArenaAllocator<int>> src{ArenaAllocator<int>(
        &arena)};
    src.assign(64, 7);

    std::vector<int, ArenaAllocator<int>> dst;
    dst = std::move(src);
    // The move carried the arena pointer with the storage.
    EXPECT_EQ(dst.get_allocator().arena(), &arena);
    EXPECT_EQ(dst.size(), 64u);
    EXPECT_EQ(dst.front(), 7);
}

TEST(ArenaAllocator, CopiesNeverInheritTheArena)
{
    Arena arena;
    std::vector<int, ArenaAllocator<int>> src{ArenaAllocator<int>(
        &arena)};
    src.assign(64, 7);

    // A copy must be safe to outlive the arena, so it goes to the
    // heap even though the source is arena-backed.
    const std::vector<int, ArenaAllocator<int>> copy(src);
    EXPECT_EQ(copy.get_allocator().arena(), nullptr);
    EXPECT_EQ(copy, src);
}

TEST(ArenaAllocator, EqualityFollowsTheArenaPointer)
{
    Arena a;
    Arena b;
    EXPECT_EQ(ArenaAllocator<int>(&a), ArenaAllocator<int>(&a));
    EXPECT_NE(ArenaAllocator<int>(&a), ArenaAllocator<int>(&b));
    EXPECT_NE(ArenaAllocator<int>(&a), ArenaAllocator<int>());
    EXPECT_EQ(ArenaAllocator<int>(), ArenaAllocator<int>());
}

} // namespace
} // namespace lag
