/**
 * @file
 * Tests for contended monitors: FIFO queueing and direct handoff.
 */

#include <gtest/gtest.h>

#include "jvm/monitor.hh"
#include "util/logging.hh"

namespace lag::jvm
{
namespace
{

TEST(MonitorTest, UncontendedAcquire)
{
    MonitorTable table;
    EXPECT_TRUE(table.tryAcquire(1, 0));
    EXPECT_TRUE(table.isHeld(0));
    EXPECT_EQ(table.holder(0), 1u);
    EXPECT_EQ(table.contentionCount(), 0u);
}

TEST(MonitorTest, ReleaseWithoutWaitersFrees)
{
    MonitorTable table;
    table.tryAcquire(1, 0);
    EXPECT_EQ(table.release(1, 0), std::nullopt);
    EXPECT_FALSE(table.isHeld(0));
    EXPECT_TRUE(table.tryAcquire(2, 0));
}

TEST(MonitorTest, ContendedAcquireQueues)
{
    MonitorTable table;
    table.tryAcquire(1, 5);
    EXPECT_FALSE(table.tryAcquire(2, 5));
    EXPECT_EQ(table.waiters(5), 1u);
    EXPECT_EQ(table.contentionCount(), 1u);
}

TEST(MonitorTest, FifoHandoff)
{
    MonitorTable table;
    table.tryAcquire(1, 0);
    table.tryAcquire(2, 0);
    table.tryAcquire(3, 0);
    auto next = table.release(1, 0);
    ASSERT_TRUE(next.has_value());
    EXPECT_EQ(*next, 2u);
    EXPECT_TRUE(table.isHeld(0)) << "handoff keeps the monitor held";
    EXPECT_EQ(table.holder(0), 2u);
    next = table.release(2, 0);
    ASSERT_TRUE(next.has_value());
    EXPECT_EQ(*next, 3u);
    EXPECT_EQ(table.release(3, 0), std::nullopt);
}

TEST(MonitorTest, IndependentMonitors)
{
    MonitorTable table;
    EXPECT_TRUE(table.tryAcquire(1, 0));
    EXPECT_TRUE(table.tryAcquire(1, 1));
    EXPECT_FALSE(table.tryAcquire(2, 0));
    EXPECT_TRUE(table.tryAcquire(3, 2));
}

TEST(MonitorTest, ReleaseByNonOwnerPanics)
{
    MonitorTable table;
    table.tryAcquire(1, 0);
    EXPECT_THROW(table.release(2, 0), PanicError);
}

TEST(MonitorTest, ReleaseUnheldPanics)
{
    MonitorTable table;
    EXPECT_THROW(table.release(1, 9), PanicError);
}

TEST(MonitorTest, RecursiveAcquirePanics)
{
    MonitorTable table;
    table.tryAcquire(1, 0);
    EXPECT_THROW(table.tryAcquire(1, 0), PanicError);
}

TEST(MonitorTest, NegativeIdPanics)
{
    MonitorTable table;
    EXPECT_THROW(table.tryAcquire(1, -1), PanicError);
}

} // namespace
} // namespace lag::jvm
