/**
 * @file
 * Tests for the LiLa agent: episode/interval filtering, GC handling,
 * sample capture policy and trace assembly.
 */

#include <gtest/gtest.h>

#include "jvm/vm.hh"
#include "jvm_test_util.hh"
#include "lila/agent.hh"

namespace lag::lila
{
namespace
{

using jvm::ActivityBuilder;
using jvm::ActivityKind;
using jvm::GuiEvent;

LilaConfig
standardConfig()
{
    LilaConfig config;
    config.filterThreshold = msToNs(3);
    return config;
}

jvm::JvmConfig
vmConfig()
{
    jvm::JvmConfig config;
    config.seed = 5;
    config.dispatchOverhead = 0;
    config.heap.youngCapacityBytes = 1ull << 40; // no implicit GC
    return config;
}

GuiEvent
simpleEvent(DurationNs cost)
{
    ActivityBuilder handler(ActivityKind::Listener, "app.Handler",
                            "actionPerformed");
    handler.cost(cost);
    GuiEvent event;
    event.handler = std::move(handler).buildShared();
    return event;
}

/** Run one session: posts the given events at 5 ms spacing. */
trace::Trace
record(const std::vector<GuiEvent> &events,
       const LilaConfig &lila_config = standardConfig(),
       jvm::JvmConfig jvm_config = vmConfig())
{
    LilaAgent agent(lila_config);
    jvm::Jvm vm(jvm_config, agent);
    vm.createEventDispatchThread();
    agent.beginSession("TestApp", 0, 5, jvm_config.samplePeriod, 0);
    vm.start();
    TimeNs when = msToNs(1);
    for (const auto &event : events) {
        vm.eventQueue().schedule(when, [&vm, event] {
            vm.postGuiEvent(event);
        });
        when += msToNs(5);
    }
    vm.run(secToNs(10));
    return agent.finishSession(vm.now());
}

TEST(LilaAgentTest, ShortEpisodesCountedNotRecorded)
{
    const trace::Trace trace =
        record({simpleEvent(msToNs(1)), simpleEvent(msToNs(2)),
                simpleEvent(msToNs(10))});
    EXPECT_EQ(trace.meta.filteredShortEpisodes, 2u);
    // Exactly one dispatch pair in the stream.
    std::size_t begins = 0;
    for (const auto &event : trace.events) {
        if (event.type == trace::EventType::DispatchBegin)
            ++begins;
    }
    EXPECT_EQ(begins, 1u);
}

TEST(LilaAgentTest, TotalInEpisodeTimeIncludesFiltered)
{
    const trace::Trace trace =
        record({simpleEvent(msToNs(1)), simpleEvent(msToNs(10))});
    EXPECT_EQ(trace.meta.totalInEpisodeTime, msToNs(11));
}

TEST(LilaAgentTest, ShortChildIntervalsPruned)
{
    ActivityBuilder handler(ActivityKind::Listener, "app.Big", "act");
    handler.cost(msToNs(8));
    handler.child(ActivityBuilder(ActivityKind::Paint, "app.Tiny",
                                  "paint")
                      .cost(msToNs(1)));
    handler.child(ActivityBuilder(ActivityKind::Paint, "app.Large",
                                  "paint")
                      .cost(msToNs(6)));
    GuiEvent event;
    event.handler = std::move(handler).buildShared();
    const trace::Trace trace = record({event});

    std::vector<std::string> classes;
    for (const auto &rec : trace.events) {
        if (rec.type == trace::EventType::IntervalBegin)
            classes.push_back(trace.strings.lookup(rec.classSym));
    }
    EXPECT_EQ(classes,
              (std::vector<std::string>{"app.Big", "app.Large"}))
        << "the sub-threshold paint must be pruned";
}

TEST(LilaAgentTest, GcOnlyEpisodeShape)
{
    // A posted Runnable (Plain root, no instrumented intervals)
    // triggers System.gc(): the trace shows the dispatch with only a
    // GC inside — the "empty" perceptible Arabeske episodes of the
    // paper's SIV.C.
    ActivityBuilder handler(ActivityKind::Plain, "app.GcRequest",
                            "run");
    handler.cost(usToNs(300));
    handler.child(ActivityBuilder(ActivityKind::Plain,
                                  "java.lang.System", "gc")
                      .cost(usToNs(100))
                      .systemGc());
    GuiEvent event;
    event.handler = std::move(handler).buildShared();
    const trace::Trace trace = record({event});

    bool saw_dispatch = false;
    bool saw_interval = false;
    bool saw_gc = false;
    for (const auto &rec : trace.events) {
        if (rec.type == trace::EventType::DispatchBegin)
            saw_dispatch = true;
        if (rec.type == trace::EventType::IntervalBegin)
            saw_interval = true;
        if (rec.type == trace::EventType::GcBegin)
            saw_gc = true;
    }
    EXPECT_TRUE(saw_dispatch) << "GC stretches the episode over 3 ms";
    EXPECT_TRUE(saw_gc);
    EXPECT_FALSE(saw_interval) << "plain frames produce no intervals";
}

TEST(LilaAgentTest, IntervalSpanIncludesGcPause)
{
    // A listener whose own CPU is tiny but which contains a long
    // collection survives the filter: interval filtering is by span
    // (what the wall clock saw), not by CPU.
    ActivityBuilder handler(ActivityKind::Listener, "app.GcButton",
                            "act");
    handler.cost(usToNs(300));
    handler.child(ActivityBuilder(ActivityKind::Plain,
                                  "java.lang.System", "gc")
                      .cost(usToNs(100))
                      .systemGc());
    GuiEvent event;
    event.handler = std::move(handler).buildShared();
    const trace::Trace trace = record({event});

    bool saw_listener = false;
    bool gc_inside_listener = false;
    int depth = 0;
    for (const auto &rec : trace.events) {
        if (rec.type == trace::EventType::IntervalBegin) {
            saw_listener = true;
            ++depth;
        }
        if (rec.type == trace::EventType::IntervalEnd)
            --depth;
        if (rec.type == trace::EventType::GcBegin && depth > 0)
            gc_inside_listener = true;
    }
    EXPECT_TRUE(saw_listener);
    EXPECT_TRUE(gc_inside_listener);
}

TEST(LilaAgentTest, GcOutsideEpisodesRecorded)
{
    LilaAgent agent(standardConfig());
    jvm::JvmConfig config = vmConfig();
    jvm::Jvm vm(config, agent);
    vm.createEventDispatchThread();
    // A background thread triggers System.gc with no episode open.
    std::deque<jvm::ProgramStep> steps;
    ActivityBuilder work(ActivityKind::Plain, "bg.Cleaner", "clean");
    work.cost(usToNs(200));
    work.systemGc();
    steps.push_back(
        jvm::ProgramStep::runActivity(std::move(work).buildShared()));
    vm.createThread("cleaner", false,
                    std::make_shared<test::ScriptedProgram>(
                        std::move(steps)));
    agent.beginSession("TestApp", 0, 5, config.samplePeriod, 0);
    vm.start();
    vm.run(secToNs(5));
    const trace::Trace trace = agent.finishSession(vm.now());

    std::size_t gc_begins = 0;
    std::size_t gc_ends = 0;
    for (const auto &rec : trace.events) {
        if (rec.type == trace::EventType::GcBegin)
            ++gc_begins;
        if (rec.type == trace::EventType::GcEnd)
            ++gc_ends;
    }
    EXPECT_EQ(gc_begins, 1u);
    EXPECT_EQ(gc_ends, 1u);
}

TEST(LilaAgentTest, EventsAreTimeOrdered)
{
    std::vector<GuiEvent> events;
    for (int i = 0; i < 10; ++i)
        events.push_back(simpleEvent(msToNs(4)));
    const trace::Trace trace = record(events);
    EXPECT_NO_THROW(trace.validate());
    EXPECT_GE(trace.events.size(), 40u);
}

TEST(LilaAgentTest, SamplesOnlyDuringEpisodes)
{
    LilaConfig lila_config = standardConfig();
    lila_config.samplesOnlyInEpisodes = true;
    jvm::JvmConfig config = vmConfig();
    config.samplePeriod = msToNs(1);
    // One long episode at t=1ms..41ms, then idle until 200 ms.
    const trace::Trace trace =
        record({simpleEvent(msToNs(40))}, lila_config, config);
    ASSERT_FALSE(trace.samples.empty());
    for (const auto &sample : trace.samples) {
        EXPECT_GE(sample.time, msToNs(1));
        EXPECT_LE(sample.time, msToNs(45));
    }
}

TEST(LilaAgentTest, AllSamplesWhenPolicyDisabled)
{
    LilaConfig lila_config = standardConfig();
    lila_config.samplesOnlyInEpisodes = false;
    jvm::JvmConfig config = vmConfig();
    config.samplePeriod = msToNs(1);
    const trace::Trace trace =
        record({simpleEvent(msToNs(40))}, lila_config, config);
    // Samples cover the whole 10 s run, not just the episode.
    EXPECT_GT(trace.samples.back().time, secToNs(1));
}

TEST(LilaAgentTest, InFlightEpisodeDiscardedAtSessionEnd)
{
    LilaAgent agent(standardConfig());
    jvm::JvmConfig config = vmConfig();
    jvm::Jvm vm(config, agent);
    vm.createEventDispatchThread();
    agent.beginSession("TestApp", 0, 5, config.samplePeriod, 0);
    vm.start();
    vm.eventQueue().schedule(msToNs(1), [&vm] {
        ActivityBuilder handler(ActivityKind::Listener, "app.Long",
                                "act");
        handler.cost(secToNs(60));
        GuiEvent event;
        event.handler = std::move(handler).buildShared();
        vm.postGuiEvent(event);
    });
    vm.run(secToNs(1)); // stop mid-episode
    const trace::Trace trace = agent.finishSession(vm.now());
    for (const auto &rec : trace.events) {
        EXPECT_NE(rec.type, trace::EventType::DispatchBegin)
            << "incomplete episodes must not be recorded";
    }
    EXPECT_NO_THROW(trace.validate());
}

TEST(LilaAgentTest, MetadataRecorded)
{
    LilaAgent agent(standardConfig());
    jvm::JvmConfig config = vmConfig();
    jvm::Jvm vm(config, agent);
    vm.createEventDispatchThread();
    agent.beginSession("MyApp", 3, 999, msToNs(10), 0);
    vm.start();
    vm.run(secToNs(1));
    const trace::Trace trace = agent.finishSession(vm.now());
    EXPECT_EQ(trace.meta.appName, "MyApp");
    EXPECT_EQ(trace.meta.sessionIndex, 3u);
    EXPECT_EQ(trace.meta.seed, 999u);
    EXPECT_EQ(trace.meta.filterThreshold, msToNs(3));
    EXPECT_EQ(trace.meta.endTime, secToNs(1));
    ASSERT_EQ(trace.threads.size(), 1u);
    EXPECT_TRUE(trace.threads[0].isGui);
}

TEST(LilaAgentTest, NestedListenersPreservedAboveThreshold)
{
    ActivityBuilder outer(ActivityKind::Listener, "app.Outer", "act");
    outer.cost(msToNs(4));
    outer.child(ActivityBuilder(ActivityKind::Listener, "app.Inner",
                                "stateChanged")
                    .cost(msToNs(5)));
    GuiEvent event;
    event.handler = std::move(outer).buildShared();
    const trace::Trace trace = record({event});

    std::vector<std::string> sequence;
    for (const auto &rec : trace.events) {
        if (rec.type == trace::EventType::IntervalBegin)
            sequence.push_back("B:" + trace.strings.lookup(rec.classSym));
        if (rec.type == trace::EventType::IntervalEnd)
            sequence.push_back("E");
    }
    EXPECT_EQ(sequence, (std::vector<std::string>{"B:app.Outer",
                                                  "B:app.Inner", "E",
                                                  "E"}));
}

} // namespace
} // namespace lag::lila
