/**
 * @file
 * Tests for the characterization analyses: triggers (§IV.C),
 * location (§IV.D), concurrency and GUI-thread states (§IV.E), and
 * the Table III overview row.
 */

#include <gtest/gtest.h>

#include "util/logging.hh"

#include "core/classify.hh"
#include "core/concurrency.hh"
#include "core/location.hh"
#include "core/overview.hh"
#include "core/triggers.hh"
#include "trace_builder.hh"

namespace lag::core
{
namespace
{

using trace::IntervalKind;
using trace::TraceGcKind;
using trace::TraceThreadState;

TEST(ClassifyTest, LibraryPrefixes)
{
    EXPECT_TRUE(isRuntimeLibraryClass("java.util.HashMap"));
    EXPECT_TRUE(isRuntimeLibraryClass("javax.swing.JPanel"));
    EXPECT_TRUE(isRuntimeLibraryClass("sun.java2d.loops.DrawLine"));
    EXPECT_TRUE(isRuntimeLibraryClass("com.apple.laf.AquaComboBoxUI"));
    EXPECT_TRUE(isRuntimeLibraryClass("apple.awt.CWindow"));
    EXPECT_FALSE(isRuntimeLibraryClass("org.argouml.model.Updater"));
    EXPECT_FALSE(isRuntimeLibraryClass("javafake.Thing"));
    EXPECT_FALSE(isRuntimeLibraryClass(""));
}

// --- Triggers ---------------------------------------------------------

TEST(TriggerTest, ListenerMeansInput)
{
    test::TraceBuilder builder;
    builder.listenerEpisode(0, msToNs(10), "app.A");
    const Session s = builder.buildSession(secToNs(1));
    EXPECT_EQ(episodeTrigger(s.episodeRoot(s.episodes()[0])),
              TriggerKind::Input);
}

TEST(TriggerTest, PaintMeansOutput)
{
    test::TraceBuilder builder;
    builder.dispatchBegin(0)
        .intervalBegin(1, IntervalKind::Paint, "s.JFrame", "paint")
        .intervalEnd(msToNs(9), IntervalKind::Paint)
        .dispatchEnd(msToNs(10));
    const Session s = builder.buildSession(secToNs(1));
    EXPECT_EQ(episodeTrigger(s.episodeRoot(s.episodes()[0])),
              TriggerKind::Output);
}

TEST(TriggerTest, AsyncMeansAsync)
{
    test::TraceBuilder builder;
    builder.dispatchBegin(0)
        .intervalBegin(1, IntervalKind::Async, "s.InvocationEvent",
                       "dispatch")
        .intervalEnd(msToNs(9), IntervalKind::Async)
        .dispatchEnd(msToNs(10));
    const Session s = builder.buildSession(secToNs(1));
    EXPECT_EQ(episodeTrigger(s.episodeRoot(s.episodes()[0])),
              TriggerKind::Async);
}

TEST(TriggerTest, RepaintManagerReclassifiedAsOutput)
{
    // Paper §IV.C footnote: async containing paint -> output.
    test::TraceBuilder builder;
    builder.dispatchBegin(0)
        .intervalBegin(1, IntervalKind::Async, "s.InvocationEvent",
                       "dispatch")
        .intervalBegin(2, IntervalKind::Paint, "s.JPanel", "paint")
        .intervalEnd(msToNs(8), IntervalKind::Paint)
        .intervalEnd(msToNs(9), IntervalKind::Async)
        .dispatchEnd(msToNs(10));
    const Session s = builder.buildSession(secToNs(1));
    EXPECT_EQ(episodeTrigger(s.episodeRoot(s.episodes()[0])),
              TriggerKind::Output);
}

TEST(TriggerTest, AsyncWithListenerStaysAsync)
{
    test::TraceBuilder builder;
    builder.dispatchBegin(0)
        .intervalBegin(1, IntervalKind::Async, "s.InvocationEvent",
                       "dispatch")
        .intervalBegin(2, IntervalKind::Listener, "app.Update",
                       "stateChanged")
        .intervalEnd(msToNs(8), IntervalKind::Listener)
        .intervalEnd(msToNs(9), IntervalKind::Async)
        .dispatchEnd(msToNs(10));
    const Session s = builder.buildSession(secToNs(1));
    EXPECT_EQ(episodeTrigger(s.episodeRoot(s.episodes()[0])),
              TriggerKind::Async);
}

TEST(TriggerTest, EmptyAndGcOnlyAreUnspecified)
{
    test::TraceBuilder builder;
    builder.dispatchBegin(0).dispatchEnd(msToNs(10));
    builder.dispatchBegin(msToNs(20))
        .gc(msToNs(21), msToNs(400))
        .dispatchEnd(msToNs(401));
    const Session s = builder.buildSession(secToNs(1));
    EXPECT_EQ(episodeTrigger(s.episodeRoot(s.episodes()[0])),
              TriggerKind::Unspecified);
    EXPECT_EQ(episodeTrigger(s.episodeRoot(s.episodes()[1])),
              TriggerKind::Unspecified);
}

TEST(TriggerTest, MarkerFoundThroughNativeNesting)
{
    // Preorder descends into natives to find the first marker.
    test::TraceBuilder builder;
    builder.dispatchBegin(0)
        .intervalBegin(1, IntervalKind::Native, "sun.Foo", "call")
        .intervalBegin(2, IntervalKind::Paint, "s.JPanel", "paint")
        .intervalEnd(3, IntervalKind::Paint)
        .intervalEnd(msToNs(9), IntervalKind::Native)
        .dispatchEnd(msToNs(10));
    const Session s = builder.buildSession(secToNs(1));
    EXPECT_EQ(episodeTrigger(s.episodeRoot(s.episodes()[0])),
              TriggerKind::Output);
}

TEST(TriggerTest, SharesOverBothEpisodeSets)
{
    test::TraceBuilder builder;
    builder.listenerEpisode(0, msToNs(10), "app.A");       // input
    builder.listenerEpisode(msToNs(20), msToNs(200), "app.B"); // input
    builder.dispatchBegin(msToNs(210))
        .intervalBegin(msToNs(211), IntervalKind::Paint, "s.P", "p")
        .intervalEnd(msToNs(390), IntervalKind::Paint)
        .dispatchEnd(msToNs(400)); // output, perceptible
    const Session s = builder.buildSession(secToNs(1));
    const TriggerAnalysisResult result =
        analyzeTriggers(s, msToNs(100));
    EXPECT_EQ(result.all.episodeCount, 3u);
    EXPECT_NEAR(result.all.input, 2.0 / 3.0, 1e-9);
    EXPECT_EQ(result.perceptible.episodeCount, 2u);
    EXPECT_NEAR(result.perceptible.input, 0.5, 1e-9);
    EXPECT_NEAR(result.perceptible.output, 0.5, 1e-9);
}

// --- Location ---------------------------------------------------------

TEST(LocationTest, GcAndNativeFractions)
{
    test::TraceBuilder builder;
    builder.dispatchBegin(0)
        .intervalBegin(msToNs(1), IntervalKind::Native, "sun.N",
                       "draw")
        .gc(msToNs(2), msToNs(22)) // 20 ms GC inside 40 ms native
        .intervalEnd(msToNs(41), IntervalKind::Native)
        .dispatchEnd(msToNs(100));
    const Session s = builder.buildSession(secToNs(1));
    const LocationAnalysisResult result =
        analyzeLocation(s, msToNs(50));
    // GC: 20/100; native: (40-20)/100 — the collection is not the
    // native call's fault (paper Figure 1 discussion).
    EXPECT_NEAR(result.all.gcFraction, 0.20, 1e-9);
    EXPECT_NEAR(result.all.nativeFraction, 0.20, 1e-9);
    EXPECT_EQ(result.perceptible.episodeCount, 1u);
}

TEST(LocationTest, AppVersusLibraryFromSampleTops)
{
    test::TraceBuilder builder;
    builder.dispatchBegin(msToNs(10)).dispatchEnd(msToNs(60));
    builder.sample(msToNs(20), TraceThreadState::Runnable,
                   "org.app.Model", "compute"); // app
    builder.sample(msToNs(30), TraceThreadState::Runnable,
                   "javax.swing.JComponent", "paint"); // library
    builder.sample(msToNs(40), TraceThreadState::Runnable,
                   "java.util.HashMap", "get"); // library
    const Session s = builder.buildSession(secToNs(1));
    const LocationAnalysisResult result =
        analyzeLocation(s, msToNs(100));
    EXPECT_EQ(result.all.sampleCount, 3u);
    EXPECT_NEAR(result.all.appFraction, 1.0 / 3.0, 1e-9);
    EXPECT_NEAR(result.all.libraryFraction, 2.0 / 3.0, 1e-9);
    EXPECT_EQ(result.perceptible.sampleCount, 0u);
}

// --- Concurrency and states --------------------------------------------

trace::TraceSample
multiThreadSample(trace::StringTable &strings, TimeNs t,
                  std::vector<TraceThreadState> states)
{
    trace::TraceSample sample;
    sample.time = t;
    for (std::size_t i = 0; i < states.size(); ++i) {
        trace::SampleThread entry;
        entry.thread = static_cast<ThreadId>(i);
        entry.state = states[i];
        entry.frames.push_back(trace::SampleFrame{
            strings.intern("java.lang.Thread"),
            strings.intern("run")});
        sample.threads.push_back(std::move(entry));
    }
    return sample;
}

TEST(ConcurrencyTest, CountsRunnableThreads)
{
    test::TraceBuilder builder;
    builder.addThread("W1");
    builder.addThread("W2");
    builder.dispatchBegin(msToNs(10)).dispatchEnd(msToNs(200));
    builder.rawSample(multiThreadSample(
        builder.strings(), msToNs(20),
        {TraceThreadState::Runnable, TraceThreadState::Runnable,
         TraceThreadState::Waiting}));
    builder.rawSample(multiThreadSample(
        builder.strings(), msToNs(30),
        {TraceThreadState::Blocked, TraceThreadState::Runnable,
         TraceThreadState::Sleeping}));
    const Session s = builder.buildSession(secToNs(1));
    const ConcurrencyResult result = analyzeConcurrency(s, msToNs(100));
    EXPECT_EQ(result.samplesAll, 2u);
    EXPECT_NEAR(result.meanRunnableAll, 1.5, 1e-9);
    // The 190 ms episode is perceptible, so the same samples count.
    EXPECT_NEAR(result.meanRunnablePerceptible, 1.5, 1e-9);
}

TEST(GuiStatesTest, PartitionsGuiThreadStates)
{
    test::TraceBuilder builder;
    builder.dispatchBegin(msToNs(10)).dispatchEnd(msToNs(200));
    builder.sample(msToNs(20), TraceThreadState::Runnable);
    builder.sample(msToNs(30), TraceThreadState::Sleeping);
    builder.sample(msToNs(40), TraceThreadState::Sleeping);
    builder.sample(msToNs(50), TraceThreadState::Blocked);
    const Session s = builder.buildSession(secToNs(1));
    const ThreadStateResult result = analyzeGuiStates(s, msToNs(100));
    EXPECT_EQ(result.all.sampleCount, 4u);
    EXPECT_NEAR(result.all.runnable, 0.25, 1e-9);
    EXPECT_NEAR(result.all.sleeping, 0.50, 1e-9);
    EXPECT_NEAR(result.all.blocked, 0.25, 1e-9);
    EXPECT_NEAR(result.all.waiting, 0.0, 1e-9);
    EXPECT_NEAR(result.all.blocked + result.all.waiting +
                    result.all.sleeping + result.all.runnable,
                1.0, 1e-9);
}

TEST(GuiStatesTest, SamplesOutsideEpisodesIgnored)
{
    test::TraceBuilder builder;
    builder.sample(msToNs(5), TraceThreadState::Sleeping); // outside
    builder.dispatchBegin(msToNs(10)).dispatchEnd(msToNs(20));
    builder.rawSample(multiThreadSample(builder.strings(), msToNs(15),
                                        {TraceThreadState::Runnable}));
    const Session s = builder.buildSession(secToNs(1));
    const ThreadStateResult result = analyzeGuiStates(s, msToNs(100));
    EXPECT_EQ(result.all.sampleCount, 1u);
    EXPECT_NEAR(result.all.runnable, 1.0, 1e-9);
}

// --- Overview ----------------------------------------------------------

TEST(OverviewTest, ComputesTableThreeRow)
{
    test::TraceBuilder builder;
    builder.listenerEpisode(0, msToNs(50), "app.A");
    builder.listenerEpisode(msToNs(60), msToNs(260), "app.B");
    trace::Trace trace = builder.build(secToNs(100));
    trace.meta.filteredShortEpisodes = 1000;
    trace.meta.totalInEpisodeTime = secToNs(10);
    const Session session = Session::fromTrace(std::move(trace));
    const PatternSet patterns =
        PatternMiner(msToNs(100)).mine(session);
    const OverviewRow row =
        computeOverview(session, patterns, msToNs(100));

    EXPECT_DOUBLE_EQ(row.e2eSeconds, 100.0);
    EXPECT_DOUBLE_EQ(row.inEpsPercent, 10.0);
    EXPECT_EQ(row.shortCount, 1000u);
    EXPECT_EQ(row.tracedCount, 2u);
    EXPECT_EQ(row.perceptibleCount, 1u);
    // 1 perceptible / (10 s / 60) minutes = 6 per minute.
    EXPECT_NEAR(row.longPerMin, 6.0, 1e-9);
    EXPECT_EQ(row.distinctPatterns, 2u);
    EXPECT_EQ(row.coveredEpisodes, 2u);
    EXPECT_DOUBLE_EQ(row.oneEpPercent, 100.0);
    EXPECT_DOUBLE_EQ(row.meanDescs, 1.0);
    EXPECT_DOUBLE_EQ(row.meanDepth, 2.0);
}

TEST(OverviewTest, MeanOfRows)
{
    OverviewRow a;
    a.e2eSeconds = 100;
    a.tracedCount = 10;
    a.perceptibleCount = 2;
    a.oneEpPercent = 50;
    OverviewRow b;
    b.e2eSeconds = 300;
    b.tracedCount = 30;
    b.perceptibleCount = 4;
    b.oneEpPercent = 70;
    const OverviewRow mean = meanOverview({a, b});
    EXPECT_DOUBLE_EQ(mean.e2eSeconds, 200.0);
    EXPECT_EQ(mean.tracedCount, 20u);
    EXPECT_EQ(mean.perceptibleCount, 3u);
    EXPECT_DOUBLE_EQ(mean.oneEpPercent, 60.0);
}

TEST(OverviewTest, MeanOfNothingPanics)
{
    EXPECT_THROW(meanOverview({}), PanicError);
}

} // namespace
} // namespace lag::core
