/**
 * @file
 * Span recorder tests: the disabled path records nothing, the
 * enabled path publishes name/arg/duration, concurrent recording
 * and draining is race-free (this file carries the `engine` label
 * so the TSan leg covers it), buffer overflow counts drops instead
 * of blocking, and the Chrome-trace export of real recorded spans
 * passes the strict JSON + trace-shape checker.
 *
 * Span buffers are process-global and append-only, so tests count
 * only their own uniquely-named spans and never assume the buffers
 * start empty.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/chrome_trace.hh"
#include "obs/json_check.hh"
#include "obs/span.hh"

namespace
{

using namespace lag;

/** Published spans named @p name, across every thread's buffer. */
std::size_t
countSpans(std::string_view name)
{
    std::size_t count = 0;
    for (const auto &buffer : obs::spanBuffers()) {
        const std::size_t published = buffer->published();
        for (std::size_t i = 0; i < published; ++i) {
            if (buffer->at(i).name == name)
                ++count;
        }
    }
    return count;
}

/** First published span named @p name, or nullptr. */
const obs::SpanEvent *
findSpan(std::string_view name)
{
    for (const auto &buffer : obs::spanBuffers()) {
        const std::size_t published = buffer->published();
        for (std::size_t i = 0; i < published; ++i) {
            if (buffer->at(i).name == name)
                return &buffer->at(i);
        }
    }
    return nullptr;
}

/** RAII guard so a failing test cannot leak spans-enabled state. */
struct SpansOn
{
    SpansOn() { obs::setSpansEnabled(true); }
    ~SpansOn() { obs::setSpansEnabled(false); }
};

TEST(ObsSpan, DisabledRecordsNothing)
{
    obs::setSpansEnabled(false);
    {
        LAG_SPAN("test.span.disabled");
    }
    EXPECT_EQ(countSpans("test.span.disabled"), 0u);
}

TEST(ObsSpan, EnabledPublishesNameArgAndDuration)
{
    const SpansOn on;
    {
        LAG_SPAN_ARG("test.span.basic", "bytes", 42);
    }
    const obs::SpanEvent *event = findSpan("test.span.basic");
    ASSERT_NE(event, nullptr);
    EXPECT_STREQ(event->argKey, "bytes");
    EXPECT_EQ(event->argValue, 42u);
    EXPECT_GE(event->durNs, 0);
    EXPECT_GE(event->startNs, 0);
}

TEST(ObsSpan, InternedNamePinsDynamicStrings)
{
    const std::string dynamic = "test.span.interned";
    const char *first = obs::internedName(dynamic);
    const char *second = obs::internedName(dynamic);
    EXPECT_EQ(first, second) << "same name must intern to one pointer";
    EXPECT_EQ(std::string_view(first), dynamic);
}

TEST(ObsSpan, ConcurrentRecordAndDrain)
{
    constexpr int kWriters = 4;
    constexpr int kSpansPerWriter = 1000;
    const SpansOn on;

    std::atomic<bool> stop{false};
    // Drainer: continuously walk published entries while writers
    // record — the acquire/release pair must make this race-free
    // (the TSan engine leg proves it).
    std::thread drainer([&stop] {
        std::size_t seen = 0;
        while (!stop.load(std::memory_order_relaxed)) {
            for (const auto &buffer : obs::spanBuffers()) {
                const std::size_t published = buffer->published();
                for (std::size_t i = 0; i < published; ++i) {
                    const obs::SpanEvent &event = buffer->at(i);
                    if (event.name != nullptr && event.durNs >= 0)
                        ++seen;
                }
            }
        }
        EXPECT_GT(seen, 0u);
    });

    std::vector<std::thread> writers;
    writers.reserve(kWriters);
    for (int w = 0; w < kWriters; ++w) {
        writers.emplace_back([] {
            for (int i = 0; i < kSpansPerWriter; ++i) {
                LAG_SPAN_ARG("test.span.concurrent", "i", i);
            }
        });
    }
    for (std::thread &writer : writers)
        writer.join();
    stop.store(true, std::memory_order_relaxed);
    drainer.join();

    // Each writer thread owns a fresh, far-from-full buffer: no
    // drops, so every span must be visible after the joins.
    EXPECT_EQ(countSpans("test.span.concurrent"),
              static_cast<std::size_t>(kWriters) * kSpansPerWriter);
}

TEST(ObsSpan, ChromeTraceExportIsValid)
{
    const SpansOn on;
    // A name that needs JSON escaping, pinned via the intern table.
    const char *awkward =
        obs::internedName("test.span \"quoted\\path\"");
    {
        obs::Span span(awkward, "items", 3);
    }
    {
        LAG_SPAN("test.span.golden");
    }
    const std::string json = obs::chromeTraceJson();
    const auto result = obs::checkChromeTrace(json);
    EXPECT_TRUE(result.ok)
        << "at byte " << result.errorOffset << ": " << result.message;
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("test.span.golden"), std::string::npos);
    // The quote and backslash must arrive escaped.
    EXPECT_NE(json.find("test.span \\\"quoted\\\\path\\\""),
              std::string::npos)
        << json;
    // Thread-name metadata rides along for the timeline labels.
    EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
}

TEST(ObsSpan, FullBufferCountsDropsWithoutBlocking)
{
    const SpansOn on;
    const std::uint64_t dropped_before = obs::droppedSpanCount();
    // A fresh thread gets a fresh fixed-capacity buffer; overrun it.
    std::thread flooder([] {
        for (int i = 0; i < (1 << 16) + 64; ++i) {
            LAG_SPAN("test.span.flood");
        }
    });
    flooder.join();
    EXPECT_GT(obs::droppedSpanCount(), dropped_before);
    // The flood published up to capacity and dropped the rest.
    EXPECT_GE(countSpans("test.span.flood"), 1u);
}

} // namespace
