/**
 * @file
 * Tests for the descriptive-statistics helpers.
 */

#include <gtest/gtest.h>

#include "util/logging.hh"
#include "util/stats.hh"

namespace lag
{
namespace
{

TEST(RunningStatsTest, EmptyDefaults)
{
    RunningStats stats;
    EXPECT_EQ(stats.count(), 0u);
    EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
    EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
}

TEST(RunningStatsTest, SingleValue)
{
    RunningStats stats;
    stats.add(5.0);
    EXPECT_EQ(stats.count(), 1u);
    EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
    EXPECT_DOUBLE_EQ(stats.min(), 5.0);
    EXPECT_DOUBLE_EQ(stats.max(), 5.0);
    EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
}

TEST(RunningStatsTest, MatchesDirectComputation)
{
    const double values[] = {1.0, 2.0, 3.0, 4.0, 10.0};
    RunningStats stats;
    for (const double v : values)
        stats.add(v);
    EXPECT_DOUBLE_EQ(stats.sum(), 20.0);
    EXPECT_DOUBLE_EQ(stats.mean(), 4.0);
    EXPECT_DOUBLE_EQ(stats.min(), 1.0);
    EXPECT_DOUBLE_EQ(stats.max(), 10.0);
    // Population variance: mean of squared deviations.
    const double expected =
        (9.0 + 4.0 + 1.0 + 0.0 + 36.0) / 5.0;
    EXPECT_NEAR(stats.variance(), expected, 1e-12);
}

TEST(RunningStatsTest, MergeEqualsSequential)
{
    RunningStats a;
    RunningStats b;
    RunningStats all;
    for (int i = 0; i < 100; ++i) {
        const double v = static_cast<double>(i * i % 37);
        if (i % 2 == 0)
            a.add(v);
        else
            b.add(v);
        all.add(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmptySides)
{
    RunningStats a;
    a.add(1.0);
    a.add(3.0);
    RunningStats empty;
    a.merge(empty);
    EXPECT_EQ(a.count(), 2u);
    RunningStats target;
    target.merge(a);
    EXPECT_EQ(target.count(), 2u);
    EXPECT_DOUBLE_EQ(target.mean(), 2.0);
}

TEST(QuantileTest, MedianOfOddCount)
{
    EXPECT_DOUBLE_EQ(quantile({3.0, 1.0, 2.0}, 0.5), 2.0);
}

TEST(QuantileTest, Interpolates)
{
    EXPECT_DOUBLE_EQ(quantile({0.0, 10.0}, 0.25), 2.5);
}

TEST(QuantileTest, Extremes)
{
    EXPECT_DOUBLE_EQ(quantile({5.0, 1.0, 9.0}, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(quantile({5.0, 1.0, 9.0}, 1.0), 9.0);
}

TEST(QuantileTest, RejectsEmptyAndBadQ)
{
    EXPECT_THROW(quantile({}, 0.5), PanicError);
    EXPECT_THROW(quantile({1.0}, 1.5), PanicError);
}

TEST(HistogramTest, CountsFallIntoBins)
{
    Histogram h(0.0, 10.0, 5);
    h.add(1.0); // bin 0
    h.add(3.0); // bin 1
    h.add(9.9); // bin 4
    EXPECT_EQ(h.binCount(0), 1u);
    EXPECT_EQ(h.binCount(1), 1u);
    EXPECT_EQ(h.binCount(4), 1u);
    EXPECT_EQ(h.total(), 3u);
}

TEST(HistogramTest, ClampsOutOfRange)
{
    Histogram h(0.0, 10.0, 2);
    h.add(-100.0);
    h.add(100.0);
    EXPECT_EQ(h.binCount(0), 1u);
    EXPECT_EQ(h.binCount(1), 1u);
}

TEST(HistogramTest, BinEdges)
{
    Histogram h(10.0, 20.0, 4);
    EXPECT_DOUBLE_EQ(h.binLow(0), 10.0);
    EXPECT_DOUBLE_EQ(h.binLow(3), 17.5);
}

} // namespace
} // namespace lag
