// Fixture: the hash container is declared here, in the header …
#include <cstdint>
#include <unordered_map>

struct Recorder
{
    int drain();
    std::unordered_map<std::uint64_t, int> pending_;
};
