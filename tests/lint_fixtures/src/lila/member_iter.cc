// Fixture: … and iterated here, in the paired .cc (line 9). The
// cross-file lookup must still fire `unordered-iter`.
#include "member_iter.hh"

int
Recorder::drain()
{
    int total = 0;
    for (const auto &entry : pending_)
        total += entry.second;
    return total;
}
