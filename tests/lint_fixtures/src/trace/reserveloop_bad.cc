// Fixture: seeded `reserve-loop` violations. The unsized
// push_back loop (line 10) and emplace_back loop (line 18) must
// fire; the reserved loop (line 26) and the suppressed loop
// (line 33) must stay silent.
#include <vector>

static void grow(std::vector<int> &out, int n)
{
    for (int i = 0; i < n; ++i)
        out.push_back(i);
}

static void growPairs(int n)
{
    std::vector<int> items;
    while (n > 0) {
        --n;
        items.emplace_back(n);
    }
}

static void growReserved(std::vector<int> &sized, int n)
{
    sized.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
        sized.push_back(i);
}

static void growAllowed(std::vector<int> &sink, int n)
{
    // Unknown final size: stack-like usage, suppressed.
    for (int i = 0; i < n; ++i)
        sink.push_back(i); // lag-lint: allow(reserve-loop)
}
