// Fixture: seeded `wallclock` violation (line 6). The string and
// comment mentions of system_clock below must NOT fire.
// std::chrono::system_clock::now() in a comment is fine.
#include <chrono>

static auto bad() { return std::chrono::system_clock::now(); }

static const char *ok = "system_clock in a string is fine";
