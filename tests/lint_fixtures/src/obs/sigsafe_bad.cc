// lag-lint: signal-safe
// Seeds: allocation and stdio in a marked fatal-handler file. The
// malloc and printf mentions in this comment must stay silent.

void
dumpBad(int fd)
{
    char *p = static_cast<char *>(malloc(16));
    printf("dumping fd %d\n", fd);
    std::string label = "boom";
    free(p);
}
