// No signal-safe marker: the rule must stay silent here even
// though the file is full of async-signal-unsafe calls.

void
notADumpPath()
{
    char *p = static_cast<char *>(malloc(16));
    printf("fine\n");
    free(p);
}
