// Fixture: seeded `naked-new` violations (lines 4 and 8). "new" in
// this comment and in the string below must not fire; the deleted
// assignment operator must not fire either.
static int *leak() { return new int(7); }

struct NoCopy
{
    void release(int *p) { delete p; }
    NoCopy &operator=(const NoCopy &) = delete; // fine
    const char *label = "brand new";
};
