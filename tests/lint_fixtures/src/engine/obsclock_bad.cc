// Fixture: seeded `obs-clock` violation (line 8). The clock name in
// this comment and in the string below must not fire.
#include <chrono>

static long
sinceBoot()
{
    const auto t = std::chrono::steady_clock::now();
    return t.time_since_epoch().count();
}

static const char *kLabel = "a steady_clock in a string stays quiet";
