// Fixture: the same seeded violations, each silenced with a
// per-line suppression — lag_lint must exit 0 on this file. Covers
// all three forms: single rule, comma-separated list, and the
// allow-next line form.
#include <string>
#include <unordered_map>

static int sum()
{
    std::unordered_map<std::string, int> tallies;
    int total = 0;
    for (const auto &entry : tallies) // lag-lint: allow(unordered-iter)
        total += entry.second;
    // lag-lint: allow-next(unordered-iter)
    for (const auto &entry : tallies)
        total -= entry.second;
    total += *(new int(1)); // lag-lint: allow(naked-new, unordered-iter)
    return total;
}
