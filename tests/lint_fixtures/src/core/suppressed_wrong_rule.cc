// Fixture: an allow() naming a *different* rule must not silence
// the finding — suppression lists match by rule, not by presence.
#include <string>
#include <unordered_map>

static int sum()
{
    std::unordered_map<std::string, int> tallies;
    int total = 0;
    for (const auto &entry : tallies) // lag-lint: allow(naked-new)
        total += entry.second;
    return total;
}
