// Fixture: violation-free file; lag_lint must exit 0.
#include <map>
#include <string>

static int sum(const std::map<std::string, int> &tallies)
{
    int total = 0;
    for (const auto &entry : tallies)
        total += entry.second;
    return total;
}
