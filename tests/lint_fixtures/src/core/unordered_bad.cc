// Fixture: seeded `unordered-iter` violation (line 9).
#include <string>
#include <unordered_map>

static int sum()
{
    std::unordered_map<std::string, int> tallies;
    int total = 0;
    for (const auto &entry : tallies)
        total += entry.second;
    return total;
}
