// Fixture: seeded `raw-mutex` violation (line 4).
#include <mutex>

static std::mutex g_bad;
