// Fixture: seeded `float-hash` violation (line 6). Lives at the
// exact relative path the rule scopes to (src/util/hash.hh under
// the fixture root).
struct BadHasher
{
    double acc = 0.0;
};
