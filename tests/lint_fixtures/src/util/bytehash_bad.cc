// Fixture: byte-at-a-time FNV folding in an analysis hot path.

#include <cstddef>
#include <cstdint>

std::uint64_t
digest(const unsigned char *bytes, std::size_t size)
{
    std::uint64_t hash = 14695981039346656037ULL;
    for (std::size_t i = 0; i < size; ++i) {
        hash ^= bytes[i];
        hash *= 1099511628211ULL;
    }
    return hash;
}

std::uint64_t
tail(const unsigned char *bytes, std::size_t size, std::uint64_t hash)
{
    // A genuine tail loop carries the visible suppression.
    for (std::size_t i = 0; i < size; ++i) {
        hash ^= bytes[i]; // lag-lint: allow(byte-hash-loop)
        hash *= 1099511628211ULL;
    }
    return hash;
}

std::uint64_t
wordFold(std::uint64_t word, std::uint64_t hash)
{
    // Word folds use plain assignment; `hash ^= x` in a comment or
    // outside a loop must stay silent too.
    hash = (hash ^ (word & 0xff)) * 1099511628211ULL;
    hash ^= word >> 56;
    return hash;
}
