/**
 * @file
 * Tests for the deterministic PRNG and its distributions.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/random.hh"
#include "util/stats.hh"

namespace lag
{
namespace
{

TEST(SplitMix64Test, KnownSequenceFromSeedZero)
{
    // Reference values for SplitMix64(0), from the published
    // algorithm.
    SplitMix64 mix(0);
    EXPECT_EQ(mix.next(), 0xe220a8397b1dcdafULL);
    EXPECT_EQ(mix.next(), 0x6e789e6aa1b965f4ULL);
    EXPECT_EQ(mix.next(), 0x06c45d188009454fULL);
}

TEST(RngTest, DeterministicAcrossInstances)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.nextU64(), b.nextU64());
}

TEST(RngTest, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.nextU64() == b.nextU64())
            ++same;
    }
    EXPECT_EQ(same, 0);
}

TEST(RngTest, DoubleInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double d = rng.nextDouble();
        ASSERT_GE(d, 0.0);
        ASSERT_LT(d, 1.0);
    }
}

TEST(RngTest, UniformIntRespectsPointRange)
{
    Rng rng(7);
    for (int i = 0; i < 100; ++i)
        ASSERT_EQ(rng.uniformInt(5, 5), 5);
}

TEST(RngTest, UniformIntCoversRange)
{
    Rng rng(11);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 2000; ++i) {
        const auto v = rng.uniformInt(0, 9);
        ASSERT_GE(v, 0);
        ASSERT_LE(v, 9);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, ChanceEdgeCases)
{
    Rng rng(3);
    for (int i = 0; i < 100; ++i) {
        ASSERT_FALSE(rng.chance(0.0));
        ASSERT_TRUE(rng.chance(1.0));
        ASSERT_FALSE(rng.chance(-1.0));
        ASSERT_TRUE(rng.chance(2.0));
    }
}

TEST(RngTest, GaussianMoments)
{
    Rng rng(13);
    RunningStats stats;
    for (int i = 0; i < 50000; ++i)
        stats.add(rng.gaussian());
    EXPECT_NEAR(stats.mean(), 0.0, 0.03);
    EXPECT_NEAR(stats.stddev(), 1.0, 0.03);
}

TEST(RngTest, LogNormalMedianApproximatesParameter)
{
    Rng rng(17);
    std::vector<double> draws;
    for (int i = 0; i < 20001; ++i)
        draws.push_back(rng.logNormal(100.0, 0.5));
    EXPECT_NEAR(quantile(draws, 0.5), 100.0, 4.0);
}

TEST(RngTest, ExponentialMean)
{
    Rng rng(19);
    RunningStats stats;
    for (int i = 0; i < 50000; ++i)
        stats.add(rng.exponential(10.0));
    EXPECT_NEAR(stats.mean(), 10.0, 0.3);
}

TEST(RngTest, ParetoBoundedStaysInRange)
{
    Rng rng(23);
    for (int i = 0; i < 10000; ++i) {
        const double v = rng.paretoBounded(1.0, 100.0, 1.5);
        ASSERT_GE(v, 1.0);
        ASSERT_LE(v, 100.0);
    }
}

TEST(RngTest, PoissonMeanSmall)
{
    Rng rng(29);
    RunningStats stats;
    for (int i = 0; i < 30000; ++i)
        stats.add(rng.poisson(3.0));
    EXPECT_NEAR(stats.mean(), 3.0, 0.1);
}

TEST(RngTest, PoissonMeanLargeUsesNormalApprox)
{
    Rng rng(31);
    RunningStats stats;
    for (int i = 0; i < 20000; ++i)
        stats.add(rng.poisson(100.0));
    EXPECT_NEAR(stats.mean(), 100.0, 1.0);
}

TEST(RngTest, PoissonZeroMean)
{
    Rng rng(37);
    EXPECT_EQ(rng.poisson(0.0), 0);
}

TEST(RngTest, DurationClampsToBounds)
{
    Rng rng(41);
    for (int i = 0; i < 10000; ++i) {
        const DurationNs d = rng.duration(1000, 3.0, 500, 2000);
        ASSERT_GE(d, 500);
        ASSERT_LE(d, 2000);
    }
}

TEST(RngTest, ForkProducesIndependentStream)
{
    Rng parent(55);
    Rng child(parent.fork());
    // The child stream should not replicate the parent stream.
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (parent.nextU64() == child.nextU64())
            ++same;
    }
    EXPECT_EQ(same, 0);
}

/** Property sweep: uniformInt respects bounds over many ranges. */
class UniformIntRanges
    : public ::testing::TestWithParam<std::pair<std::int64_t,
                                                std::int64_t>>
{
};

TEST_P(UniformIntRanges, StaysWithinBounds)
{
    const auto [lo, hi] = GetParam();
    Rng rng(static_cast<std::uint64_t>(lo * 31 + hi));
    for (int i = 0; i < 5000; ++i) {
        const auto v = rng.uniformInt(lo, hi);
        ASSERT_GE(v, lo);
        ASSERT_LE(v, hi);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Ranges, UniformIntRanges,
    ::testing::Values(std::pair<std::int64_t, std::int64_t>{0, 1},
                      std::pair<std::int64_t, std::int64_t>{-10, 10},
                      std::pair<std::int64_t, std::int64_t>{0, 1000000},
                      std::pair<std::int64_t, std::int64_t>{-5, -1},
                      std::pair<std::int64_t, std::int64_t>{
                          1'000'000'000, 2'000'000'000}));

} // namespace
} // namespace lag
