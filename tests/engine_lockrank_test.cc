/**
 * @file
 * Runtime lock-rank checker: out-of-rank and same-rank
 * acquisitions abort with both stacks (death tests), correct
 * descending-order nesting is accepted, bookkeeping survives
 * condition-variable style unlock/relock, and the full sharded
 * study pipeline — pool, task graph, study driver, result cache,
 * logging from inside workers — runs clean under the checker.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "engine/pool.hh"
#include "engine/result_cache.hh"
#include "engine/study_driver.hh"
#include "util/logging.hh"
#include "util/mutex.hh"

namespace lag
{
namespace
{

TEST(LockRankDeathTest, OutOfRankAcquisitionAborts)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    Mutex inner(LockRank::PoolInjector, "inner");
    Mutex outer(LockRank::TaskGraph, "outer");
    // Taking the higher-ranked lock while holding the lower one
    // inverts the global order and must abort, printing both the
    // held-lock and the acquiring stacks.
    EXPECT_DEATH(
        {
            MutexLock a(inner);
            MutexLock b(outer);
        },
        "lock rank violation");
}

TEST(LockRankDeathTest, SameRankAcquisitionAborts)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    // Equal ranks can never nest (this is what proves the pool
    // steal loop can't hold two worker deques at once).
    Mutex first(LockRank::PoolWorker, "worker-a");
    Mutex second(LockRank::PoolWorker, "worker-b");
    EXPECT_DEATH(
        {
            MutexLock a(first);
            MutexLock b(second);
        },
        "lock rank violation");
}

TEST(LockRank, DescendingAcquisitionIsAccepted)
{
    Mutex outer(LockRank::Client, "outer");
    Mutex middle(LockRank::TaskGraph, "middle");
    Mutex inner(LockRank::Logging, "inner");
    EXPECT_EQ(detail::lockRankHeldDepth(), 0);
    {
        MutexLock a(outer);
        MutexLock b(middle);
        MutexLock c(inner);
        EXPECT_EQ(detail::lockRankHeldDepth(), 3);
    }
    EXPECT_EQ(detail::lockRankHeldDepth(), 0);
}

TEST(LockRank, UnlockRelockKeepsBookkeeping)
{
    // The condition-variable wait protocol: MutexLock::unlock()
    // then lock() on the same scoped object.
    Mutex mutex(LockRank::Client, "cv-mutex");
    MutexLock lock(mutex);
    EXPECT_EQ(detail::lockRankHeldDepth(), 1);
    lock.unlock();
    EXPECT_EQ(detail::lockRankHeldDepth(), 0);
    lock.lock();
    EXPECT_EQ(detail::lockRankHeldDepth(), 1);
    lock.unlock();
    EXPECT_EQ(detail::lockRankHeldDepth(), 0);
    lock.lock(); // destructor releases
}

TEST(LockRank, TryLockParticipates)
{
    Mutex mutex(LockRank::Client, "try-mutex");
    ASSERT_TRUE(mutex.try_lock());
    EXPECT_EQ(detail::lockRankHeldDepth(), 1);
    mutex.unlock();
    EXPECT_EQ(detail::lockRankHeldDepth(), 0);
}

TEST(LockRank, StudyPipelineRunsCleanUnderChecker)
{
    // Drive every engine lock from worker threads: the driver's
    // stage chains (graph + pool locks), result-cache counters,
    // client locks inside stages and the logging leaf rank. Any
    // rank inversion would abort the process, so completing is
    // the assertion; the explicit checks document the outputs.
    const std::string dir =
        (std::filesystem::temp_directory_path() /
         "lag_lockrank_cache")
            .string();
    std::filesystem::remove_all(dir);
    engine::ResultCache cache(dir, "lockrank-fingerprint");

    engine::ThreadPool pool(4);
    engine::StudyDriver driver(3, 4);
    Mutex stageMutex(LockRank::Client, "stage-state");
    std::vector<std::uint64_t> touched(3 * 4 * 2, 0);

    driver.addStage("probe-cache",
                    [&](std::size_t shard, std::size_t item) {
                        // Misses on an empty cache, from workers.
                        const auto entry = cache.load(
                            "app" + std::to_string(shard),
                            static_cast<std::uint32_t>(item));
                        EXPECT_FALSE(entry.has_value());
                        MutexLock lock(stageMutex);
                        ++touched[shard * 4 + item];
                    });
    driver.addStage("log-and-count",
                    [&](std::size_t shard, std::size_t item) {
                        debugLog("lockrank stage shard=", shard,
                                 " item=", item);
                        MutexLock lock(stageMutex);
                        ++touched[12 + shard * 4 + item];
                    });
    driver.run(pool);
    pool.waitIdle();

    for (const std::uint64_t count : touched)
        EXPECT_EQ(count, 1u);
    EXPECT_EQ(driver.completedUnits(), 24u);
    EXPECT_EQ(cache.stats().misses, 12u);
    EXPECT_EQ(detail::lockRankHeldDepth(), 0);
    std::filesystem::remove_all(dir);
}

} // namespace
} // namespace lag
