/**
 * @file
 * End-to-end integration tests: application model -> simulated JVM
 * -> LiLa trace -> binary file -> Session -> every analysis, plus
 * the Study's cache machinery.
 */

#include <gtest/gtest.h>

#include <filesystem>

#include "app/catalog.hh"
#include "app/session_runner.hh"
#include "app/study.hh"
#include "core/concurrency.hh"
#include "core/location.hh"
#include "core/overview.hh"
#include "core/pattern.hh"
#include "core/pattern_stats.hh"
#include "core/triggers.hh"
#include "trace/io.hh"

namespace lag
{
namespace
{

namespace fs = std::filesystem;

core::Session
runShort(const char *name, int seconds, std::uint32_t index = 0)
{
    app::AppParams params = app::catalogApp(name);
    params.sessionLength = secToNs(seconds);
    auto result = app::runSession(params, index);
    // Through the real codec, like production.
    const std::string bytes = trace::serializeTrace(result.trace);
    return core::Session::fromTrace(trace::deserializeTrace(bytes));
}

TEST(IntegrationTest, FullPipelineConsistency)
{
    const core::Session session = runShort("GanttProject", 45);
    const core::PatternMiner miner(msToNs(100));
    const core::PatternSet patterns = miner.mine(session);

    // Coverage accounting adds up.
    EXPECT_EQ(patterns.coveredEpisodes + patterns.structurelessEpisodes,
              session.episodes().size());
    std::size_t member_total = 0;
    for (const auto &pattern : patterns.patterns)
        member_total += pattern.episodes.size();
    EXPECT_EQ(member_total, patterns.coveredEpisodes);

    // Shares sum to one wherever episodes/samples exist.
    const auto triggers = core::analyzeTriggers(session, msToNs(100));
    EXPECT_NEAR(triggers.all.input + triggers.all.output +
                    triggers.all.async + triggers.all.unspecified,
                1.0, 1e-9);
    const auto states = core::analyzeGuiStates(session, msToNs(100));
    if (states.all.sampleCount > 0) {
        EXPECT_NEAR(states.all.blocked + states.all.waiting +
                        states.all.sleeping + states.all.runnable,
                    1.0, 1e-9);
    }
    const auto location = core::analyzeLocation(session, msToNs(100));
    if (location.all.sampleCount > 0) {
        EXPECT_NEAR(location.all.appFraction +
                        location.all.libraryFraction,
                    1.0, 1e-9);
    }
    EXPECT_GE(location.all.gcFraction, 0.0);
    EXPECT_LE(location.all.gcFraction + location.all.nativeFraction,
              1.0);

    // The CDF ends at (1, 1).
    const auto cdf = core::patternCdf(patterns);
    EXPECT_DOUBLE_EQ(cdf.back().first, 1.0);
    EXPECT_DOUBLE_EQ(cdf.back().second, 1.0);

    // Overview row agrees with the session.
    const auto row = core::computeOverview(session, patterns,
                                           msToNs(100));
    EXPECT_EQ(row.tracedCount, session.episodes().size());
    EXPECT_EQ(row.perceptibleCount,
              session.perceptibleCount(msToNs(100)));
    EXPECT_GT(row.inEpsPercent, 0.0);
    EXPECT_LE(row.inEpsPercent, 100.0);
}

TEST(IntegrationTest, EpisodeDurationsConsistentWithTreeSpans)
{
    const core::Session session = runShort("SwingSet", 30);
    for (const auto &episode : session.episodes()) {
        const auto &root = session.episodeRoot(episode);
        EXPECT_EQ(root.begin, episode.begin);
        EXPECT_EQ(root.end, episode.end);
        // Children lie within the episode.
        for (const auto &child : root.children) {
            EXPECT_GE(child.begin, root.begin);
            EXPECT_LE(child.end, root.end);
        }
        // Samples assigned to the episode lie within it.
        for (std::size_t s = episode.firstSample;
             s < episode.lastSample; ++s) {
            EXPECT_GE(session.samples()[s].time, episode.begin);
            EXPECT_LE(session.samples()[s].time, episode.end);
        }
    }
}

TEST(IntegrationTest, EuclideSleepShowsUpInStates)
{
    const core::Session session = runShort("Euclide", 120);
    const auto states = core::analyzeGuiStates(session, msToNs(100));
    EXPECT_GT(states.perceptible.sleeping, 0.15)
        << "Euclide's combo-box blink must dominate perceptible lag";
    EXPECT_GT(states.perceptible.sleeping, states.all.sleeping)
        << "aggregate stats hide what perceptible episodes show "
           "(paper SIV.E)";
}

TEST(IntegrationTest, StudyCachesAndReloads)
{
    app::StudyConfig config;
    config.apps = {app::catalogApp("CrosswordSage")};
    config.apps[0].sessionLength = secToNs(8);
    config.sessionsPerApp = 2;
    config.cacheDir = "test-study-cache";
    fs::remove_all(config.cacheDir);

    app::Study study(config);
    const auto paths = study.ensureTraces();
    ASSERT_EQ(paths.size(), 1u);
    ASSERT_EQ(paths[0].size(), 2u);
    for (const auto &path : paths[0])
        EXPECT_TRUE(fs::exists(path));

    // Second call must not regenerate: record mtimes.
    const auto mtime = fs::last_write_time(paths[0][0]);
    study.ensureTraces();
    EXPECT_EQ(fs::last_write_time(paths[0][0]), mtime);

    // Loading yields analyzable sessions.
    const app::AppSessions loaded = study.loadApp(0);
    ASSERT_EQ(loaded.sessions.size(), 2u);
    EXPECT_GT(loaded.sessions[0].episodes().size(), 0u);

    // A config change invalidates the cache.
    app::StudyConfig changed = config;
    changed.apps[0].heavyClickProb += 0.1;
    app::Study study2(changed);
    study2.ensureTraces();
    EXPECT_NE(fs::last_write_time(paths[0][0]), mtime)
        << "fingerprint change must force regeneration";

    fs::remove_all(config.cacheDir);
}

TEST(IntegrationTest, QuickStudyConfigIsConsistent)
{
    const app::StudyConfig quick = app::StudyConfig::quickStudy(5);
    ASSERT_EQ(quick.apps.size(), 14u);
    for (const auto &app : quick.apps)
        EXPECT_EQ(app.sessionLength, secToNs(5));
    EXPECT_NE(quick.cacheDir,
              app::StudyConfig::paperStudy().cacheDir);
    EXPECT_NE(quick.fingerprint(),
              app::StudyConfig::paperStudy().fingerprint());
}

TEST(IntegrationTest, MultiSessionAveragingStable)
{
    // Two sessions of the same app differ but are the same order of
    // magnitude; the mean sits between them.
    const core::Session s0 = runShort("JEdit", 30, 0);
    const core::Session s1 = runShort("JEdit", 30, 1);
    const core::PatternMiner miner(msToNs(100));
    const auto r0 = core::computeOverview(s0, miner.mine(s0),
                                          msToNs(100));
    const auto r1 = core::computeOverview(s1, miner.mine(s1),
                                          msToNs(100));
    EXPECT_NE(r0.tracedCount, 0u);
    EXPECT_NE(r1.tracedCount, 0u);
    const auto mean = core::meanOverview({r0, r1});
    EXPECT_GE(mean.tracedCount,
              std::min(r0.tracedCount, r1.tracedCount));
    EXPECT_LE(mean.tracedCount,
              std::max(r0.tracedCount, r1.tracedCount));
}

} // namespace
} // namespace lag
