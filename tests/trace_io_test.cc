/**
 * @file
 * Tests for the binary trace codec: round trips, corruption
 * detection, string table behaviour and the JSONL export.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "trace/io.hh"
#include "trace_builder.hh"
#include "util/random.hh"

namespace lag::trace
{
namespace
{

Trace
sampleTrace()
{
    test::TraceBuilder builder;
    builder.addThread("Worker-1");
    builder.dispatchBegin(msToNs(10))
        .intervalBegin(msToNs(11), IntervalKind::Listener, "app.A",
                       "act")
        .intervalEnd(msToNs(19), IntervalKind::Listener)
        .dispatchEnd(msToNs(20));
    builder.gc(msToNs(30), msToNs(45), TraceGcKind::Major);
    builder.sample(msToNs(12), TraceThreadState::Runnable);
    builder.sample(msToNs(15), TraceThreadState::Blocked, "app.A",
                   "act");
    Trace trace = builder.build(secToNs(1));
    trace.meta.filteredShortEpisodes = 1234;
    trace.meta.totalInEpisodeTime = msToNs(42);
    trace.meta.seed = 0xfeed;
    return trace;
}

void
expectTracesEqual(const Trace &a, const Trace &b)
{
    EXPECT_EQ(a.meta.appName, b.meta.appName);
    EXPECT_EQ(a.meta.sessionIndex, b.meta.sessionIndex);
    EXPECT_EQ(a.meta.seed, b.meta.seed);
    EXPECT_EQ(a.meta.startTime, b.meta.startTime);
    EXPECT_EQ(a.meta.endTime, b.meta.endTime);
    EXPECT_EQ(a.meta.samplePeriod, b.meta.samplePeriod);
    EXPECT_EQ(a.meta.filterThreshold, b.meta.filterThreshold);
    EXPECT_EQ(a.meta.filteredShortEpisodes,
              b.meta.filteredShortEpisodes);
    EXPECT_EQ(a.meta.totalInEpisodeTime, b.meta.totalInEpisodeTime);
    ASSERT_EQ(a.threads.size(), b.threads.size());
    for (std::size_t i = 0; i < a.threads.size(); ++i) {
        EXPECT_EQ(a.threads[i].id, b.threads[i].id);
        EXPECT_EQ(a.threads[i].name, b.threads[i].name);
        EXPECT_EQ(a.threads[i].isGui, b.threads[i].isGui);
    }
    ASSERT_EQ(a.events.size(), b.events.size());
    for (std::size_t i = 0; i < a.events.size(); ++i) {
        EXPECT_EQ(a.events[i].type, b.events[i].type);
        EXPECT_EQ(a.events[i].thread, b.events[i].thread);
        EXPECT_EQ(a.events[i].time, b.events[i].time);
        EXPECT_EQ(a.events[i].kind, b.events[i].kind);
        EXPECT_EQ(a.events[i].classSym, b.events[i].classSym);
        EXPECT_EQ(a.events[i].methodSym, b.events[i].methodSym);
        EXPECT_EQ(a.events[i].gcKind, b.events[i].gcKind);
    }
    ASSERT_EQ(a.samples.size(), b.samples.size());
    for (std::size_t i = 0; i < a.samples.size(); ++i) {
        EXPECT_EQ(a.samples[i].time, b.samples[i].time);
        ASSERT_EQ(a.samples[i].threads.size(),
                  b.samples[i].threads.size());
        for (std::size_t t = 0; t < a.samples[i].threads.size(); ++t) {
            EXPECT_EQ(a.samples[i].threads[t].state,
                      b.samples[i].threads[t].state);
            EXPECT_EQ(a.samples[i].threads[t].frames.size(),
                      b.samples[i].threads[t].frames.size());
        }
    }
    ASSERT_EQ(a.strings.size(), b.strings.size());
    for (SymbolId s = 0; s < a.strings.size(); ++s)
        EXPECT_EQ(a.strings.lookup(s), b.strings.lookup(s));
}

TEST(TraceIoTest, RoundTripInMemory)
{
    const Trace original = sampleTrace();
    const std::string bytes = serializeTrace(original);
    const Trace parsed = deserializeTrace(bytes);
    expectTracesEqual(original, parsed);
}

TEST(TraceIoTest, RoundTripThroughFile)
{
    const std::string path = "test_trace_roundtrip.lag";
    const Trace original = sampleTrace();
    writeTraceFile(original, path);
    const Trace parsed = readTraceFile(path);
    expectTracesEqual(original, parsed);
    std::filesystem::remove(path);
}

TEST(TraceIoTest, EmptyTraceRoundTrips)
{
    test::TraceBuilder builder;
    const Trace original = builder.build(0);
    const Trace parsed = deserializeTrace(serializeTrace(original));
    expectTracesEqual(original, parsed);
}

TEST(TraceIoTest, BadMagicRejected)
{
    std::string bytes = serializeTrace(sampleTrace());
    bytes[0] = 'X';
    EXPECT_THROW(deserializeTrace(bytes), TraceError);
}

TEST(TraceIoTest, WrongVersionRejected)
{
    std::string bytes = serializeTrace(sampleTrace());
    bytes[8] = static_cast<char>(kFormatVersion + 1);
    EXPECT_THROW(deserializeTrace(bytes), TraceError);
}

TEST(TraceIoTest, FlippedPayloadByteDetectedByChecksum)
{
    std::string bytes = serializeTrace(sampleTrace());
    bytes[bytes.size() / 2] ^= 0x40;
    EXPECT_THROW(deserializeTrace(bytes), TraceError);
}

TEST(TraceIoTest, TruncationDetected)
{
    const std::string bytes = serializeTrace(sampleTrace());
    for (const std::size_t keep :
         {bytes.size() - 1, bytes.size() / 2, std::size_t{10},
          std::size_t{0}}) {
        EXPECT_THROW(deserializeTrace(bytes.substr(0, keep)),
                     TraceError)
            << "kept " << keep << " bytes";
    }
}

TEST(TraceIoTest, TrailingGarbageDetected)
{
    std::string bytes = serializeTrace(sampleTrace());
    bytes += "extra";
    EXPECT_THROW(deserializeTrace(bytes), TraceError);
}

TEST(TraceIoTest, MissingFileThrows)
{
    EXPECT_THROW(readTraceFile("/nonexistent/dir/file.lag"),
                 TraceError);
}

TEST(StringTableTest, InternDeduplicates)
{
    StringTable table;
    const SymbolId a = table.intern("hello");
    const SymbolId b = table.intern("world");
    const SymbolId c = table.intern("hello");
    EXPECT_EQ(a, c);
    EXPECT_NE(a, b);
    EXPECT_EQ(table.lookup(a), "hello");
}

TEST(StringTableTest, EmptyStringIsZero)
{
    StringTable table;
    EXPECT_EQ(table.intern(""), 0u);
    EXPECT_EQ(table.lookup(0), "");
}

TEST(StringTableTest, LookupOutOfRangeThrows)
{
    StringTable table;
    EXPECT_THROW(table.lookup(99), TraceError);
}

TEST(StringTableTest, FromListValidatesHead)
{
    EXPECT_THROW(StringTable::fromList({"not-empty"}), TraceError);
    EXPECT_THROW(StringTable::fromList({}), TraceError);
    const StringTable table = StringTable::fromList({"", "a", "b"});
    EXPECT_EQ(table.lookup(2), "b");
}

TEST(TraceValidateTest, OutOfOrderEventsRejected)
{
    test::TraceBuilder builder;
    builder.dispatchBegin(msToNs(20)).dispatchEnd(msToNs(30));
    Trace trace = builder.build(secToNs(1));
    std::swap(trace.events[0], trace.events[1]);
    EXPECT_THROW(trace.validate(), TraceError);
}

TEST(TraceValidateTest, UnknownThreadRejected)
{
    test::TraceBuilder builder;
    builder.dispatchBegin(10, /*thread=*/7);
    Trace trace = builder.build(secToNs(1));
    EXPECT_THROW(trace.validate(), TraceError);
}

TEST(TraceValidateTest, EndBeforeStartRejected)
{
    test::TraceBuilder builder;
    Trace trace = builder.build(0);
    trace.meta.startTime = 100;
    trace.meta.endTime = 50;
    EXPECT_THROW(trace.validate(), TraceError);
}

TEST(TraceIoTest, JsonlContainsRecords)
{
    const std::string jsonl = toJsonl(sampleTrace());
    EXPECT_NE(jsonl.find("\"record\":\"meta\""), std::string::npos);
    EXPECT_NE(jsonl.find("\"record\":\"thread\""), std::string::npos);
    EXPECT_NE(jsonl.find("\"record\":\"event\""), std::string::npos);
    EXPECT_NE(jsonl.find("\"record\":\"sample\""), std::string::npos);
    EXPECT_NE(jsonl.find("app.A"), std::string::npos);
    EXPECT_NE(jsonl.find("\"gc\":\"major\""), std::string::npos);
}

/** Property sweep: randomized traces round-trip bit-exactly. */
class RandomTraceRoundTrip : public ::testing::TestWithParam<int>
{
};

TEST_P(RandomTraceRoundTrip, Stable)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729);
    test::TraceBuilder builder;
    const int extra_threads = static_cast<int>(rng.uniformInt(0, 3));
    for (int t = 0; t < extra_threads; ++t)
        builder.addThread("T" + std::to_string(t));
    TimeNs now = 0;
    const int episodes = static_cast<int>(rng.uniformInt(1, 40));
    for (int e = 0; e < episodes; ++e) {
        now += rng.uniformInt(1, msToNs(5));
        const TimeNs begin = now;
        builder.dispatchBegin(begin);
        const int depth = static_cast<int>(rng.uniformInt(0, 4));
        TimeNs t = begin;
        for (int d = 0; d < depth; ++d) {
            t += rng.uniformInt(1, usToNs(100));
            builder.intervalBegin(
                t,
                static_cast<IntervalKind>(rng.uniformInt(0, 3)),
                "c" + std::to_string(rng.uniformInt(0, 5)),
                "m" + std::to_string(rng.uniformInt(0, 5)));
        }
        TimeNs end = t + rng.uniformInt(usToNs(100), msToNs(20));
        for (int d = depth - 1; d >= 0; --d) {
            builder.intervalEnd(end, IntervalKind::Listener);
            end += rng.uniformInt(1, usToNs(50));
        }
        builder.dispatchEnd(end);
        now = end;
        if (rng.chance(0.3)) {
            builder.sample(begin + 1,
                           static_cast<TraceThreadState>(
                               rng.uniformInt(0, 3)));
        }
    }
    Trace original = builder.build(now + msToNs(1));
    const std::string bytes = serializeTrace(original);
    const Trace parsed = deserializeTrace(bytes);
    expectTracesEqual(original, parsed);
    // Re-serialization must be byte-identical (stable format).
    EXPECT_EQ(serializeTrace(parsed), bytes);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTraceRoundTrip,
                         ::testing::Range(1, 13));

} // namespace
} // namespace lag::trace
