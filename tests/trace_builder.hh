/**
 * @file
 * Test helper: fluent construction of traces and sessions.
 *
 * Analysis tests need precisely shaped sessions (an episode with a
 * GC inside a native call, a pattern with exactly one perceptible
 * episode, ...). Building them through the binary trace model keeps
 * the tests exercising the same code paths production uses.
 */

#ifndef LAG_TESTS_TRACE_BUILDER_HH
#define LAG_TESTS_TRACE_BUILDER_HH

#include <string>
#include <vector>

#include "core/session.hh"
#include "trace/trace.hh"
#include "util/types.hh"

namespace lag::test
{

/** Builds a single-GUI-thread trace record by record. */
class TraceBuilder
{
  public:
    TraceBuilder()
    {
        trace_.meta.appName = "TestApp";
        trace_.meta.samplePeriod = msToNs(10);
        trace_.meta.filterThreshold = msToNs(3);
        trace_.threads.push_back(
            trace::TraceThread{0, "AWT-EventQueue-0", true});
    }

    /** Add a non-GUI thread; returns its id. */
    ThreadId
    addThread(const std::string &name)
    {
        const ThreadId id =
            static_cast<ThreadId>(trace_.threads.size());
        trace_.threads.push_back(trace::TraceThread{id, name, false});
        return id;
    }

    TraceBuilder &
    dispatchBegin(TimeNs t, ThreadId thread = 0)
    {
        trace::TraceEvent e;
        e.type = trace::EventType::DispatchBegin;
        e.thread = thread;
        e.time = t;
        trace_.events.push_back(e);
        return *this;
    }

    TraceBuilder &
    dispatchEnd(TimeNs t, ThreadId thread = 0)
    {
        trace::TraceEvent e;
        e.type = trace::EventType::DispatchEnd;
        e.thread = thread;
        e.time = t;
        trace_.events.push_back(e);
        return *this;
    }

    TraceBuilder &
    intervalBegin(TimeNs t, trace::IntervalKind kind,
                  const std::string &cls, const std::string &method,
                  ThreadId thread = 0)
    {
        trace::TraceEvent e;
        e.type = trace::EventType::IntervalBegin;
        e.thread = thread;
        e.time = t;
        e.kind = kind;
        e.classSym = trace_.strings.intern(cls);
        e.methodSym = trace_.strings.intern(method);
        trace_.events.push_back(e);
        return *this;
    }

    TraceBuilder &
    intervalEnd(TimeNs t, trace::IntervalKind kind, ThreadId thread = 0)
    {
        trace::TraceEvent e;
        e.type = trace::EventType::IntervalEnd;
        e.thread = thread;
        e.time = t;
        e.kind = kind;
        trace_.events.push_back(e);
        return *this;
    }

    TraceBuilder &
    gc(TimeNs begin, TimeNs end,
       trace::TraceGcKind kind = trace::TraceGcKind::Minor)
    {
        trace::TraceEvent b;
        b.type = trace::EventType::GcBegin;
        b.time = begin;
        b.gcKind = kind;
        trace_.events.push_back(b);
        trace::TraceEvent e;
        e.type = trace::EventType::GcEnd;
        e.time = end;
        trace_.events.push_back(e);
        return *this;
    }

    /** Convenience: a full episode with one listener child. */
    TraceBuilder &
    listenerEpisode(TimeNs begin, TimeNs end, const std::string &cls,
                    const std::string &method = "actionPerformed")
    {
        dispatchBegin(begin);
        intervalBegin(begin + 1000, trace::IntervalKind::Listener, cls,
                      method);
        intervalEnd(end - 1000, trace::IntervalKind::Listener);
        dispatchEnd(end);
        return *this;
    }

    /** Add a sample with a single GUI-thread entry. */
    TraceBuilder &
    sample(TimeNs t, trace::TraceThreadState state,
           const std::string &top_class = "java.awt.EventQueue",
           const std::string &top_method = "dispatchEvent")
    {
        trace::TraceSample s;
        s.time = t;
        trace::SampleThread entry;
        entry.thread = 0;
        entry.state = state;
        entry.frames.push_back(trace::SampleFrame{
            trace_.strings.intern("java.lang.Thread"),
            trace_.strings.intern("run")});
        entry.frames.push_back(
            trace::SampleFrame{trace_.strings.intern(top_class),
                               trace_.strings.intern(top_method)});
        s.threads.push_back(std::move(entry));
        trace_.samples.push_back(std::move(s));
        return *this;
    }

    /** Append a raw, fully specified sample. */
    TraceBuilder &
    rawSample(trace::TraceSample sample)
    {
        trace_.samples.push_back(std::move(sample));
        return *this;
    }

    trace::StringTable &strings() { return trace_.strings; }

    trace::Trace &raw() { return trace_; }

    /** Finalize and return the trace. */
    trace::Trace
    build(TimeNs end_time)
    {
        trace_.meta.endTime = end_time;
        return std::move(trace_);
    }

    /** Finalize and parse into a Session. */
    core::Session
    buildSession(TimeNs end_time)
    {
        return core::Session::fromTrace(build(end_time));
    }

  private:
    trace::Trace trace_;
};

} // namespace lag::test

#endif // LAG_TESTS_TRACE_BUILDER_HH
