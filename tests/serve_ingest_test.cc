/**
 * @file
 * Follow-mode HotStore tests: IngestPipeline updates flow through
 * applyIngest into the same emitters the batch path uses, so once a
 * source completes, `/v1/patterns` serves byte-for-byte the batch
 * answer — while partial sessions are queryable along the way. Also
 * covers `/v1/ingest` (strict JSON, all_complete transition) and
 * the follow-mode refresh no-op.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "app/study.hh"
#include "core/aggregate.hh"
#include "core/figure_json.hh"
#include "engine/ingest.hh"
#include "engine/pool.hh"
#include "engine/result_cache.hh"
#include "obs/json_check.hh"
#include "serve/router.hh"
#include "serve/store.hh"

namespace lag::serve
{
namespace
{

namespace fs = std::filesystem;

/** Scoped scratch directory: clean before and after the test. */
struct ScratchDir
{
    std::string path;

    explicit ScratchDir(std::string p) : path(std::move(p))
    {
        fs::remove_all(path);
        fs::create_directories(path);
    }

    ~ScratchDir() { fs::remove_all(path); }
};

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    return bytes;
}

void
writeBytes(const std::string &path, const std::string &bytes,
           std::size_t n)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(n));
}

HttpRequest
getRequest(std::string path,
           std::vector<std::pair<std::string, std::string>> query = {})
{
    HttpRequest request;
    request.method = "GET";
    request.path = std::move(path);
    request.query = std::move(query);
    return request;
}

TEST(ServeIngest, FollowModeConvergesToBatchPatterns)
{
    const ScratchDir cache("lagalyzer-cache-test-serve-ingest");
    const ScratchDir live("lagalyzer-serve-ingest-live");

    app::StudyConfig config = app::StudyConfig::quickStudy(3);
    config.apps.resize(2);
    config.sessionsPerApp = 1;
    config.cacheDir = cache.path;
    config.jobs = 2;
    app::Study study(config);
    const auto tracePaths = study.ensureTraces();

    // Batch reference: the exact `/v1/patterns` bytes each app must
    // serve once its single session has fully streamed in.
    std::vector<std::string> appNames;
    std::vector<std::string> expected;
    for (std::size_t a = 0; a < config.apps.size(); ++a) {
        const core::Session session = study.loadSession(a, 0);
        const engine::SessionAnalysis analysis =
            engine::analyzeSession(session,
                                   config.perceptibleThreshold);
        appNames.push_back(session.meta().appName);
        expected.push_back(core::patternsJson(
            session.meta().appName,
            core::mergeAnalyses({analysis.patternSummary}),
            "episodes", 0));
    }

    engine::ThreadPool pool(config.jobs);
    HotStore store(config, pool);
    store.startFollow();
    EXPECT_EQ(store.appCount(), 0u);

    engine::IngestOptions options;
    options.perceptibleThreshold = config.perceptibleThreshold;
    engine::IngestPipeline pipeline(
        pool, options, [&store](const engine::IngestUpdate &update) {
            store.applyIngest(update);
        });

    Router router;
    store.installRoutes(router);
    installIngestRoute(router, pipeline);

    // Nothing has streamed yet: the store is up (not 503) but knows
    // no app; the ingest status is valid JSON with zero sources.
    {
        const HttpResponse response = router.dispatch(getRequest(
            "/v1/patterns", {{"app", appNames[0]}}));
        EXPECT_EQ(response.status, 404);
        const HttpResponse ingest =
            router.dispatch(getRequest("/v1/ingest"));
        EXPECT_EQ(ingest.status, 200);
        EXPECT_TRUE(obs::checkJson(ingest.body).ok)
            << ingest.body;
        EXPECT_NE(ingest.body.find("\"all_complete\":false"),
                  std::string::npos);
    }

    // Stream app 1 completely but only half of app 0: the complete
    // app must already serve the batch bytes while its neighbour is
    // still partial.
    const std::string bytes0 = slurp(tracePaths[0][0]);
    const std::string bytes1 = slurp(tracePaths[1][0]);
    const std::string dest0 = live.path + "/session0.lag";
    const std::string dest1 = live.path + "/session1.lag";
    writeBytes(dest0, bytes0, bytes0.size() / 2);
    writeBytes(dest1, bytes1, bytes1.size());
    EXPECT_EQ(pipeline.scanDirectory(live.path), 2u);
    for (int i = 0; i < 10 && !pipeline.allComplete(); ++i)
        pipeline.runEpoch();
    EXPECT_FALSE(pipeline.allComplete());

    {
        const HttpResponse response = router.dispatch(getRequest(
            "/v1/patterns", {{"app", appNames[1]}}));
        EXPECT_EQ(response.status, 200);
        EXPECT_EQ(response.body, expected[1])
            << "complete app must serve batch bytes mid-follow";

        // The partial app either has not published yet (404) or
        // serves a valid partial-session answer — never an error.
        const HttpResponse partial = router.dispatch(getRequest(
            "/v1/patterns", {{"app", appNames[0]}}));
        EXPECT_TRUE(partial.status == 200 || partial.status == 404);
        if (partial.status == 200) {
            EXPECT_TRUE(obs::checkJson(partial.body).ok);
        }
    }

    // Finish app 0 and drain.
    writeBytes(dest0, bytes0, bytes0.size());
    for (int i = 0; i < 10 && !pipeline.allComplete(); ++i)
        pipeline.runEpoch();
    ASSERT_TRUE(pipeline.allComplete());
    EXPECT_EQ(store.appCount(), 2u);

    for (std::size_t a = 0; a < appNames.size(); ++a) {
        const HttpResponse response = router.dispatch(getRequest(
            "/v1/patterns", {{"app", appNames[a]}}));
        EXPECT_EQ(response.status, 200);
        EXPECT_EQ(response.body, expected[a])
            << "follow-mode /v1/patterns diverges from batch for "
            << appNames[a];
    }

    // The companion endpoints answer over the same live state.
    for (const char *path : {"/v1/cdf", "/v1/apps"}) {
        HttpRequest request = getRequest(path);
        if (std::string_view(path) == "/v1/cdf")
            request.query = {{"app", appNames[0]}};
        const HttpResponse response = router.dispatch(request);
        EXPECT_EQ(response.status, 200) << path;
        EXPECT_TRUE(obs::checkJson(response.body).ok) << path;
    }

    const HttpResponse ingest =
        router.dispatch(getRequest("/v1/ingest"));
    EXPECT_EQ(ingest.status, 200);
    EXPECT_TRUE(obs::checkJson(ingest.body).ok) << ingest.body;
    EXPECT_NE(ingest.body.find("\"all_complete\":true"),
              std::string::npos);
    EXPECT_NE(ingest.body.find(dest0), std::string::npos);

    // refresh() is a declared no-op in follow mode: nothing to diff
    // against a result cache that is not in play.
    HttpRequest refresh;
    refresh.method = "POST";
    refresh.path = "/v1/refresh";
    const HttpResponse response = router.dispatch(refresh);
    EXPECT_EQ(response.status, 200);
    EXPECT_TRUE(obs::checkJson(response.body).ok);
    EXPECT_NE(response.body.find("\"recomputed\""),
              std::string::npos);
}

} // namespace
} // namespace lag::serve
