/**
 * @file
 * Shared helpers for the simulated-JVM tests: a recording listener
 * that captures every hook invocation, and a scripted thread
 * program that replays a fixed list of steps.
 */

#ifndef LAG_TESTS_JVM_TEST_UTIL_HH
#define LAG_TESTS_JVM_TEST_UTIL_HH

#include <deque>
#include <string>
#include <vector>

#include "jvm/listener.hh"
#include "jvm/program.hh"
#include "jvm/vm.hh"

namespace lag::test
{

/** One recorded hook invocation, flattened for easy assertions. */
struct HookRecord
{
    enum class Kind
    {
        DispatchBegin,
        DispatchEnd,
        IntervalBegin,
        IntervalEnd,
        GcBegin,
        GcEnd,
        Sample,
    };

    Kind kind;
    ThreadId thread = 0;
    TimeNs time = 0;
    jvm::ActivityKind activity = jvm::ActivityKind::Plain;
    std::string className;
    std::vector<jvm::ThreadSnapshot> snapshots;
};

/** Captures the full hook stream of a VM run. */
class RecordingListener : public jvm::JvmListener
{
  public:
    std::vector<HookRecord> records;

    void
    onDispatchBegin(ThreadId thread, TimeNs time) override
    {
        records.push_back(
            {HookRecord::Kind::DispatchBegin, thread, time, {}, {}, {}});
    }

    void
    onDispatchEnd(ThreadId thread, TimeNs time) override
    {
        records.push_back(
            {HookRecord::Kind::DispatchEnd, thread, time, {}, {}, {}});
    }

    void
    onIntervalBegin(ThreadId thread, jvm::ActivityKind kind,
                    const jvm::Frame &frame, TimeNs time) override
    {
        records.push_back({HookRecord::Kind::IntervalBegin, thread, time,
                           kind, frame.className, {}});
    }

    void
    onIntervalEnd(ThreadId thread, jvm::ActivityKind kind,
                  TimeNs time) override
    {
        records.push_back(
            {HookRecord::Kind::IntervalEnd, thread, time, kind, {}, {}});
    }

    void
    onGcBegin(TimeNs time, jvm::GcKind) override
    {
        records.push_back(
            {HookRecord::Kind::GcBegin, 0, time, {}, {}, {}});
    }

    void
    onGcEnd(TimeNs time) override
    {
        records.push_back({HookRecord::Kind::GcEnd, 0, time, {}, {}, {}});
    }

    void
    onSample(TimeNs time,
             const std::vector<jvm::ThreadSnapshot> &snapshots) override
    {
        records.push_back({HookRecord::Kind::Sample, 0, time, {}, {},
                           snapshots});
    }

    /** Count records of one kind. */
    std::size_t
    count(HookRecord::Kind kind) const
    {
        std::size_t n = 0;
        for (const auto &r : records) {
            if (r.kind == kind)
                ++n;
        }
        return n;
    }
};

/** Replays a fixed list of steps, then idles (or exits). */
class ScriptedProgram : public jvm::ThreadProgram
{
  public:
    explicit ScriptedProgram(std::deque<jvm::ProgramStep> steps,
                             bool exit_at_end = true)
        : steps_(std::move(steps)), exit_at_end_(exit_at_end)
    {
    }

    jvm::ProgramStep
    next(jvm::Jvm &, jvm::VThread &) override
    {
        if (steps_.empty()) {
            return exit_at_end_ ? jvm::ProgramStep::exitThread()
                                : jvm::ProgramStep::idle();
        }
        jvm::ProgramStep step = std::move(steps_.front());
        steps_.pop_front();
        return step;
    }

  private:
    std::deque<jvm::ProgramStep> steps_;
    bool exit_at_end_;
};

} // namespace lag::test

#endif // LAG_TESTS_JVM_TEST_UTIL_HH
