/**
 * @file
 * Tests for trace::TraceTailer: the incremental decode state
 * machine, the Truncated/Corrupt error-kind split, snapshot
 * closed-prefix semantics, and truncation/rewrite recovery.
 *
 * The load-bearing property is batch equivalence: at every byte
 * prefix of a trace file the tailer either waits (partial record)
 * or advances, never errors, and once the last byte lands its
 * snapshot re-serializes to exactly the original file bytes.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "core/session.hh"
#include "trace/bytes.hh"
#include "trace/io.hh"
#include "trace/tailer.hh"
#include "trace_builder.hh"

namespace lag::trace
{
namespace
{

namespace fs = std::filesystem;

/** Self-cleaning scratch file for tailer runs. */
struct TailFile
{
    std::string path;

    explicit TailFile(std::string p) : path(std::move(p))
    {
        fs::remove(path);
    }

    ~TailFile() { fs::remove(path); }

    /** Overwrite the file with the first @p n bytes of @p bytes.
     * Rewriting the whole prefix (rather than appending) also
     * exercises the tailer's indifference to how bytes land, as
     * long as the consumed head stays intact. */
    void
    writePrefix(const std::string &bytes, std::size_t n) const
    {
        std::ofstream out(path,
                          std::ios::binary | std::ios::trunc);
        out.write(bytes.data(),
                  static_cast<std::streamsize>(n));
    }
};

Trace
sampleTrace()
{
    test::TraceBuilder builder;
    builder.addThread("Worker-1");
    builder.listenerEpisode(msToNs(10), msToNs(60), "app.Button");
    builder.gc(msToNs(70), msToNs(90), TraceGcKind::Major);
    builder.listenerEpisode(msToNs(100), msToNs(240), "app.Menu");
    builder.sample(msToNs(12), TraceThreadState::Runnable);
    builder.sample(msToNs(110), TraceThreadState::Blocked,
                   "app.Menu", "actionPerformed");
    builder.sample(msToNs(200), TraceThreadState::Runnable);
    return builder.build(secToNs(1));
}

TEST(TraceTailerTest, ByteReaderUnderrunIsTruncatedKind)
{
    const std::string three = "abc";
    ByteReader r{std::string_view(three)};
    try {
        (void)r.u64();
        FAIL() << "u64 over 3 bytes must throw";
    } catch (const TraceError &e) {
        EXPECT_EQ(e.kind(), TraceErrorKind::Truncated);
        EXPECT_NE(std::string(e.what()).find("truncated"),
                  std::string::npos);
    }
}

TEST(TraceTailerTest, StructuralDamageIsCorruptKind)
{
    // Bad magic is damage, not incompleteness: no later append can
    // heal the head of the file.
    std::string bad = serializeTrace(sampleTrace());
    bad[0] = 'X';
    try {
        (void)deserializeTrace(bad);
        FAIL() << "bad magic must throw";
    } catch (const TraceError &e) {
        EXPECT_EQ(e.kind(), TraceErrorKind::Corrupt);
    }
}

TEST(TraceTailerTest, EveryPrefixEitherWaitsOrAdvances)
{
    const Trace original = sampleTrace();
    const std::string bytes = serializeTrace(original);
    const TailFile file("tailer_test_prefix.lag");
    TraceTailer tailer(file.path);

    EXPECT_EQ(tailer.poll(), TailStatus::Waiting); // no file yet

    bool sessionBuilt = false;
    for (std::size_t n = 1; n <= bytes.size(); ++n) {
        file.writePrefix(bytes, n);
        const TailStatus status = tailer.poll();
        if (n < bytes.size()) {
            EXPECT_TRUE(status == TailStatus::Waiting ||
                        status == TailStatus::Advanced)
                << "prefix " << n << ": "
                << tailStatusName(status);
        } else {
            EXPECT_EQ(status, TailStatus::Complete);
        }
        EXPECT_LE(tailer.cursor(), n);
        EXPECT_EQ(tailer.knownSize(), n);
        EXPECT_EQ(tailer.backlogBytes(), n - tailer.cursor());
        if (tailer.analyzable() && !tailer.complete()) {
            // Mid-stream snapshots must always be sessionable:
            // the closed-prefix trim guarantees balanced events.
            core::Session session =
                core::Session::fromTrace(tailer.snapshot());
            EXPECT_EQ(session.meta().appName,
                      original.meta.appName);
            sessionBuilt = true;
        }
    }
    EXPECT_TRUE(sessionBuilt);
    EXPECT_TRUE(tailer.complete());
    EXPECT_EQ(tailer.cursor(), bytes.size());
    EXPECT_EQ(tailer.recordsDecoded(),
              original.threads.size() + original.strings.size() +
                  original.events.size() + original.samples.size());

    // The batch-equivalence contract: the finished snapshot
    // re-serializes to the original file bytes, bit for bit.
    EXPECT_EQ(serializeTrace(tailer.snapshot()), bytes);

    // Idle polls after completion stay Complete.
    EXPECT_EQ(tailer.poll(), TailStatus::Complete);
}

TEST(TraceTailerTest, SnapshotBeforeAnalyzableThrowsTruncated)
{
    const std::string bytes = serializeTrace(sampleTrace());
    const TailFile file("tailer_test_early.lag");
    file.writePrefix(bytes, wire::kFileHeaderBytes);
    TraceTailer tailer(file.path);
    tailer.poll();
    EXPECT_FALSE(tailer.analyzable());
    try {
        (void)tailer.snapshot();
        FAIL() << "snapshot before analyzable must throw";
    } catch (const TraceError &e) {
        EXPECT_EQ(e.kind(), TraceErrorKind::Truncated);
    }
}

TEST(TraceTailerTest, IncompleteSnapshotClampsEndTime)
{
    const Trace original = sampleTrace();
    const std::string bytes = serializeTrace(original);
    const TailFile file("tailer_test_clamp.lag");
    TraceTailer tailer(file.path);
    // Find the first prefix where the tailer is analyzable but not
    // complete; its snapshot must not claim the declared endTime
    // (one full second) — only the span the records actually cover.
    for (std::size_t n = 1; n < bytes.size(); ++n) {
        file.writePrefix(bytes, n);
        tailer.poll();
        if (tailer.analyzable())
            break;
    }
    ASSERT_TRUE(tailer.analyzable());
    ASSERT_FALSE(tailer.complete());
    const Trace snap = tailer.snapshot();
    EXPECT_LT(snap.meta.endTime, original.meta.endTime);
}

TEST(TraceTailerTest, CorruptPayloadFailsChecksumAtCompletion)
{
    std::string bytes = serializeTrace(sampleTrace());
    // Flip one bit near the end of the payload. Record-level checks
    // may or may not notice (time fields accept anything), but the
    // incremental FNV fold must reject the file at completion.
    bytes[bytes.size() - 2] ^= 0x01;
    const TailFile file("tailer_test_corrupt.lag");
    file.writePrefix(bytes, bytes.size());
    TraceTailer tailer(file.path);
    try {
        while (!tailer.complete())
            tailer.poll();
        FAIL() << "corrupt payload must not complete";
    } catch (const TraceError &e) {
        EXPECT_EQ(e.kind(), TraceErrorKind::Corrupt);
    }
}

TEST(TraceTailerTest, TrailingGarbageAfterPayloadIsCorrupt)
{
    std::string bytes = serializeTrace(sampleTrace());
    bytes += "extra bytes no valid writer appends";
    const TailFile file("tailer_test_trailing.lag");
    file.writePrefix(bytes, bytes.size());
    TraceTailer tailer(file.path);
    try {
        tailer.poll();
        FAIL() << "trailing garbage must throw";
    } catch (const TraceError &e) {
        EXPECT_EQ(e.kind(), TraceErrorKind::Corrupt);
        EXPECT_NE(std::string(e.what()).find("trailing"),
                  std::string::npos);
    }
}

TEST(TraceTailerTest, GrowthAfterCompletionIsCorrupt)
{
    const std::string bytes = serializeTrace(sampleTrace());
    const TailFile file("tailer_test_grow.lag");
    file.writePrefix(bytes, bytes.size());
    TraceTailer tailer(file.path);
    ASSERT_EQ(tailer.poll(), TailStatus::Complete);
    {
        std::ofstream out(file.path,
                          std::ios::binary | std::ios::app);
        out << "late garbage";
    }
    EXPECT_THROW(tailer.poll(), TraceError);
}

TEST(TraceTailerTest, RewriteRestartsAndConverges)
{
    const Trace first = sampleTrace();
    const std::string firstBytes = serializeTrace(first);

    test::TraceBuilder other;
    other.raw().meta.appName = "OtherApp";
    other.listenerEpisode(msToNs(5), msToNs(50), "other.Widget");
    other.sample(msToNs(20), TraceThreadState::Runnable);
    const Trace second = other.build(msToNs(500));
    const std::string secondBytes = serializeTrace(second);
    ASSERT_NE(firstBytes, secondBytes);

    const TailFile file("tailer_test_rewrite.lag");
    file.writePrefix(firstBytes, firstBytes.size());
    TraceTailer tailer(file.path);
    ASSERT_EQ(tailer.poll(), TailStatus::Complete);
    EXPECT_EQ(tailer.restarts(), 0u);

    // Atomically replace the trace with a different one: the head
    // fingerprint no longer matches, so the tailer must reset and
    // re-read rather than report trailing garbage or stale data.
    file.writePrefix(secondBytes, secondBytes.size());
    EXPECT_EQ(tailer.poll(), TailStatus::Restarted);
    EXPECT_EQ(tailer.restarts(), 1u);
    // The restart poll already consumed the new file's bytes.
    EXPECT_EQ(tailer.poll(), TailStatus::Complete);
    EXPECT_EQ(serializeTrace(tailer.snapshot()), secondBytes);
    EXPECT_EQ(tailer.meta().appName, "OtherApp");
}

TEST(TraceTailerTest, TruncationBelowCursorRestarts)
{
    const std::string bytes = serializeTrace(sampleTrace());
    const TailFile file("tailer_test_shrink.lag");
    file.writePrefix(bytes, bytes.size());
    TraceTailer tailer(file.path);
    ASSERT_EQ(tailer.poll(), TailStatus::Complete);

    // Shrink the file below the consumed cursor: the tailer must
    // notice the loss, reset, and resume from the fresh prefix.
    file.writePrefix(bytes, bytes.size() / 2);
    EXPECT_EQ(tailer.poll(), TailStatus::Restarted);
    EXPECT_GE(tailer.restarts(), 1u);
    EXPECT_FALSE(tailer.complete());

    // Grow it back to the full trace; the tailer converges again.
    file.writePrefix(bytes, bytes.size());
    EXPECT_EQ(tailer.poll(), TailStatus::Complete);
    EXPECT_EQ(serializeTrace(tailer.snapshot()), bytes);
}

TEST(TraceTailerTest, CursorResumeSurvivesNewTailerInstance)
{
    // Kill-and-resume at the tailer level: a fresh instance re-reads
    // from byte zero and lands on the same final snapshot, no
    // matter where the previous instance stopped.
    const std::string bytes = serializeTrace(sampleTrace());
    const TailFile file("tailer_test_resume.lag");
    file.writePrefix(bytes, bytes.size() / 3);
    {
        TraceTailer dying(file.path);
        dying.poll();
        EXPECT_FALSE(dying.complete());
    }
    file.writePrefix(bytes, bytes.size());
    TraceTailer resumed(file.path);
    EXPECT_EQ(resumed.poll(), TailStatus::Complete);
    EXPECT_EQ(serializeTrace(resumed.snapshot()), bytes);
}

} // namespace
} // namespace lag::trace
