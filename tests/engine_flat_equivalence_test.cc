/**
 * @file
 * Differential suite for the flat analysis hot path: for every app
 * model in the catalog, the flat pipeline (analyzeSession and
 * analyzeSessionParallel, which mine/classify on FlatSession slices)
 * must serialize byte-identically to the node-tree reference
 * pipeline (analyzeSessionNode), at any worker count, and survive a
 * result-cache round trip unchanged.
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <filesystem>
#include <optional>
#include <string>
#include <utility>

#include "app/study.hh"
#include "engine/parallel_analysis.hh"
#include "engine/pool.hh"
#include "engine/result_cache.hh"

namespace lag::engine
{
namespace
{

namespace fs = std::filesystem;

/** Scoped cache directory: clean before and after the test. */
struct CacheDir
{
    std::string path;

    explicit CacheDir(std::string p) : path(std::move(p))
    {
        fs::remove_all(path);
    }

    ~CacheDir() { fs::remove_all(path); }
};

TEST(FlatEquivalence, EveryAppModelAnalyzesByteIdentically)
{
    const CacheDir dir("lagalyzer-cache-test-flat-equiv");
    app::StudyConfig config = app::StudyConfig::quickStudy(3);
    config.sessionsPerApp = 1;
    config.cacheDir = dir.path;
    config.jobs = 4;
    app::Study study(config);
    study.ensureTraces();

    const DurationNs threshold = config.perceptibleThreshold;
    ASSERT_GE(config.apps.size(), 14u)
        << "catalog shrank; the suite must cover every app model";

    for (std::size_t a = 0; a < config.apps.size(); ++a) {
        const core::Session session = study.loadSession(a, 0);
        const std::string node = serializeSessionAnalysis(
            analyzeSessionNode(session, threshold));
        const std::string flat = serializeSessionAnalysis(
            analyzeSession(session, threshold));
        EXPECT_EQ(flat, node)
            << "flat serial analysis diverges for app "
            << config.apps[a].name;

        for (const std::uint32_t jobs : {1u, 8u}) {
            ThreadPool pool(jobs);
            const std::string parallel = serializeSessionAnalysis(
                analyzeSessionParallel(session, threshold, pool));
            EXPECT_EQ(parallel, node)
                << "flat parallel analysis diverges for app "
                << config.apps[a].name << " at jobs=" << jobs;
        }
    }
}

TEST(FlatEquivalence, CacheRoundTripPreservesFlatResults)
{
    const CacheDir dir("lagalyzer-cache-test-flat-cache");
    app::StudyConfig config = app::StudyConfig::quickStudy(3);
    config.apps.resize(1);
    config.sessionsPerApp = 1;
    config.cacheDir = dir.path;
    config.jobs = 2;
    app::Study study(config);
    study.ensureTraces();

    const core::Session session = study.loadSession(0, 0);
    const SessionAnalysis fresh =
        analyzeSession(session, config.perceptibleThreshold);

    const ResultCache cache(dir.path, config.fingerprint());
    cache.store(config.apps[0].name, 0, fresh);
    const std::optional<SessionAnalysis> loaded =
        cache.load(config.apps[0].name, 0);
    ASSERT_TRUE(loaded.has_value());

    // Cold (just computed, flat path) == warm (cache round trip) ==
    // node reference: the cache stays valid with the flat path live.
    const std::string freshBytes = serializeSessionAnalysis(fresh);
    EXPECT_EQ(serializeSessionAnalysis(*loaded), freshBytes);
    EXPECT_EQ(freshBytes,
              serializeSessionAnalysis(analyzeSessionNode(
                  session, config.perceptibleThreshold)));
}

} // namespace
} // namespace lag::engine
