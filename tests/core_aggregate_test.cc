/**
 * @file
 * Tests for cross-session pattern merging (paper §VI: LagAlyzer
 * "integrates multiple traces in its analysis").
 */

#include <gtest/gtest.h>

#include "util/logging.hh"

#include "app/catalog.hh"
#include "app/session_runner.hh"
#include "core/aggregate.hh"
#include "trace_builder.hh"

namespace lag::core
{
namespace
{

Session
sessionWith(std::vector<std::pair<const char *, DurationNs>> episodes)
{
    test::TraceBuilder builder;
    TimeNs now = 0;
    for (const auto &[cls, duration] : episodes) {
        builder.listenerEpisode(now, now + duration, cls);
        now += duration + msToNs(1);
    }
    return builder.buildSession(now + secToNs(1));
}

TEST(AggregateTest, MergesBySignature)
{
    const Session s0 = sessionWith({{"app.A", msToNs(10)},
                                    {"app.A", msToNs(20)},
                                    {"app.B", msToNs(10)}});
    const Session s1 =
        sessionWith({{"app.A", msToNs(30)}, {"app.C", msToNs(10)}});
    const MergedPatternSet merged =
        minePatternsAcrossSessions({s0, s1}, msToNs(100));

    ASSERT_EQ(merged.patterns.size(), 3u);
    EXPECT_EQ(merged.sessionCount, 2u);
    // Most episodes first: app.A with 3.
    const MergedPattern &top = merged.patterns[0];
    EXPECT_EQ(top.totalEpisodes, 3u);
    EXPECT_EQ(top.sessions, (std::vector<std::size_t>{0, 1}));
    EXPECT_EQ(top.episodeCounts, (std::vector<std::size_t>{2, 1}));
    EXPECT_TRUE(top.recurring(2));
    EXPECT_EQ(top.minLag, msToNs(10));
    EXPECT_EQ(top.maxLag, msToNs(30));
    EXPECT_EQ(top.avgLag(), msToNs(20));
}

TEST(AggregateTest, SingleSessionPatternsNotRecurring)
{
    const Session s0 = sessionWith({{"app.A", msToNs(10)}});
    const Session s1 = sessionWith({{"app.B", msToNs(10)}});
    const MergedPatternSet merged =
        minePatternsAcrossSessions({s0, s1}, msToNs(100));
    EXPECT_EQ(merged.recurringCount(), 0u);
    for (const auto &pattern : merged.patterns)
        EXPECT_EQ(pattern.sessions.size(), 1u);
}

TEST(AggregateTest, OccurrenceAcrossSessions)
{
    // app.A perceptible in both sessions -> Always; app.B
    // perceptible once across sessions -> Once.
    const Session s0 = sessionWith(
        {{"app.A", msToNs(200)}, {"app.B", msToNs(150)}});
    const Session s1 = sessionWith(
        {{"app.A", msToNs(300)}, {"app.B", msToNs(20)}});
    const MergedPatternSet merged =
        minePatternsAcrossSessions({s0, s1}, msToNs(100));
    ASSERT_EQ(merged.patterns.size(), 2u);
    for (const auto &pattern : merged.patterns) {
        if (pattern.signature.find("app.A") != std::string::npos) {
            EXPECT_EQ(pattern.occurrence, OccurrenceClass::Always);
            EXPECT_TRUE(pattern.recurring(2));
        } else {
            EXPECT_EQ(pattern.occurrence, OccurrenceClass::Once);
        }
    }
    EXPECT_EQ(merged.recurringAlwaysCount(), 1u);
}

TEST(AggregateTest, MismatchedThresholdsPanic)
{
    const Session s = sessionWith({{"app.A", msToNs(10)}});
    PatternSet a = PatternMiner(msToNs(100)).mine(s);
    PatternSet b = PatternMiner(msToNs(50)).mine(s);
    EXPECT_THROW(mergePatternSets({a, b}), PanicError);
    EXPECT_THROW(mergePatternSets({}), PanicError);
}

TEST(AggregateTest, RealSessionsSharePatterns)
{
    // With app-stable template seeding, two sessions of one app must
    // share a substantial fraction of their patterns — the premise
    // of cross-session merging.
    app::AppParams params = app::catalogApp("GanttProject");
    params.sessionLength = secToNs(30);
    auto r0 = app::runSession(params, 0);
    auto r1 = app::runSession(params, 1);
    std::vector<Session> sessions;
    sessions.push_back(Session::fromTrace(std::move(r0.trace)));
    sessions.push_back(Session::fromTrace(std::move(r1.trace)));
    const MergedPatternSet merged =
        minePatternsAcrossSessions(sessions, msToNs(100));
    EXPECT_GT(merged.recurringCount(), 5u)
        << "sessions of one app must reuse handler structures";
}

} // namespace
} // namespace lag::core
