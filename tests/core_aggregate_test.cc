/**
 * @file
 * Tests for cross-session pattern merging (paper §VI: LagAlyzer
 * "integrates multiple traces in its analysis").
 */

#include <gtest/gtest.h>

#include "util/logging.hh"

#include "app/catalog.hh"
#include "app/session_runner.hh"
#include "core/aggregate.hh"
#include "trace_builder.hh"

namespace lag::core
{
namespace
{

Session
sessionWith(std::vector<std::pair<const char *, DurationNs>> episodes)
{
    test::TraceBuilder builder;
    TimeNs now = 0;
    for (const auto &[cls, duration] : episodes) {
        builder.listenerEpisode(now, now + duration, cls);
        now += duration + msToNs(1);
    }
    return builder.buildSession(now + secToNs(1));
}

TEST(AggregateTest, MergesBySignature)
{
    const Session s0 = sessionWith({{"app.A", msToNs(10)},
                                    {"app.A", msToNs(20)},
                                    {"app.B", msToNs(10)}});
    const Session s1 =
        sessionWith({{"app.A", msToNs(30)}, {"app.C", msToNs(10)}});
    const MergedPatternSet merged =
        minePatternsAcrossSessions({s0, s1}, msToNs(100));

    ASSERT_EQ(merged.patterns.size(), 3u);
    EXPECT_EQ(merged.sessionCount, 2u);
    // Most episodes first: app.A with 3.
    const MergedPattern &top = merged.patterns[0];
    EXPECT_EQ(top.totalEpisodes, 3u);
    EXPECT_EQ(top.sessions, (std::vector<std::size_t>{0, 1}));
    EXPECT_EQ(top.episodeCounts, (std::vector<std::size_t>{2, 1}));
    EXPECT_TRUE(top.recurring(2));
    EXPECT_EQ(top.minLag, msToNs(10));
    EXPECT_EQ(top.maxLag, msToNs(30));
    EXPECT_EQ(top.avgLag(), msToNs(20));
}

TEST(AggregateTest, SingleSessionPatternsNotRecurring)
{
    const Session s0 = sessionWith({{"app.A", msToNs(10)}});
    const Session s1 = sessionWith({{"app.B", msToNs(10)}});
    const MergedPatternSet merged =
        minePatternsAcrossSessions({s0, s1}, msToNs(100));
    EXPECT_EQ(merged.recurringCount(), 0u);
    for (const auto &pattern : merged.patterns)
        EXPECT_EQ(pattern.sessions.size(), 1u);
}

TEST(AggregateTest, OccurrenceAcrossSessions)
{
    // app.A perceptible in both sessions -> Always; app.B
    // perceptible once across sessions -> Once.
    const Session s0 = sessionWith(
        {{"app.A", msToNs(200)}, {"app.B", msToNs(150)}});
    const Session s1 = sessionWith(
        {{"app.A", msToNs(300)}, {"app.B", msToNs(20)}});
    const MergedPatternSet merged =
        minePatternsAcrossSessions({s0, s1}, msToNs(100));
    ASSERT_EQ(merged.patterns.size(), 2u);
    for (const auto &pattern : merged.patterns) {
        if (pattern.signature.find("app.A") != std::string::npos) {
            EXPECT_EQ(pattern.occurrence, OccurrenceClass::Always);
            EXPECT_TRUE(pattern.recurring(2));
        } else {
            EXPECT_EQ(pattern.occurrence, OccurrenceClass::Once);
        }
    }
    EXPECT_EQ(merged.recurringAlwaysCount(), 1u);
}

TEST(AggregateTest, MismatchedThresholdsPanic)
{
    const Session s = sessionWith({{"app.A", msToNs(10)}});
    PatternSet a = PatternMiner(msToNs(100)).mine(s);
    PatternSet b = PatternMiner(msToNs(50)).mine(s);
    EXPECT_THROW(mergePatternSets({a, b}), PanicError);
}

TEST(AggregateTest, EmptyInputMergesToEmptySet)
{
    // Zero sessions is a valid (if degenerate) study — e.g. an
    // aggregation over an empty app list — not a programming error.
    const MergedPatternSet merged = mergePatternSets({});
    EXPECT_TRUE(merged.patterns.empty());
    EXPECT_EQ(merged.sessionCount, 0u);
    EXPECT_EQ(merged.recurringCount(), 0u);

    const MergedPatternSet from_summaries = mergeAnalyses({});
    EXPECT_TRUE(from_summaries.patterns.empty());
    EXPECT_EQ(from_summaries.sessionCount, 0u);
}

TEST(AggregateTest, MergeAnalysesMatchesMergePatternSets)
{
    // The summary-based merge must reproduce the full-set merge
    // exactly — it is the foundation of the incremental path.
    const Session s0 = sessionWith({{"app.A", msToNs(200)},
                                    {"app.A", msToNs(20)},
                                    {"app.B", msToNs(10)}});
    const Session s1 =
        sessionWith({{"app.A", msToNs(30)}, {"app.C", msToNs(150)}});
    std::vector<PatternSet> sets;
    sets.push_back(PatternMiner(msToNs(100)).mine(s0));
    sets.push_back(PatternMiner(msToNs(100)).mine(s1));

    std::vector<PatternSetSummary> summaries;
    for (const PatternSet &set : sets)
        summaries.push_back(summarizePatterns(set));

    const MergedPatternSet full = mergePatternSets(sets);
    const MergedPatternSet incremental = mergeAnalyses(summaries);

    ASSERT_EQ(incremental.patterns.size(), full.patterns.size());
    EXPECT_EQ(incremental.sessionCount, full.sessionCount);
    for (std::size_t i = 0; i < full.patterns.size(); ++i) {
        const MergedPattern &a = full.patterns[i];
        const MergedPattern &b = incremental.patterns[i];
        EXPECT_EQ(a.signature, b.signature);
        EXPECT_EQ(a.key, b.key);
        EXPECT_EQ(a.sessions, b.sessions);
        EXPECT_EQ(a.episodeCounts, b.episodeCounts);
        EXPECT_EQ(a.totalEpisodes, b.totalEpisodes);
        EXPECT_EQ(a.totalPerceptible, b.totalPerceptible);
        EXPECT_EQ(a.minLag, b.minLag);
        EXPECT_EQ(a.maxLag, b.maxLag);
        EXPECT_EQ(a.totalLag, b.totalLag);
        EXPECT_EQ(a.occurrence, b.occurrence);
    }
}

TEST(AggregateTest, RealSessionsSharePatterns)
{
    // With app-stable template seeding, two sessions of one app must
    // share a substantial fraction of their patterns — the premise
    // of cross-session merging.
    app::AppParams params = app::catalogApp("GanttProject");
    params.sessionLength = secToNs(30);
    auto r0 = app::runSession(params, 0);
    auto r1 = app::runSession(params, 1);
    std::vector<Session> sessions;
    sessions.push_back(Session::fromTrace(std::move(r0.trace)));
    sessions.push_back(Session::fromTrace(std::move(r1.trace)));
    const MergedPatternSet merged =
        minePatternsAcrossSessions(sessions, msToNs(100));
    EXPECT_GT(merged.recurringCount(), 5u)
        << "sessions of one app must reuse handler structures";
}

} // namespace
} // namespace lag::core
