/**
 * @file
 * Prometheus exposition tests: dumpProm() output must pass the
 * strict checkProm validator (the same one `trace_check --prom`
 * runs), histogram series must be cumulative with `+Inf` equal to
 * `_count`, label values must escape per the spec, and the checker
 * itself must reject the classic malformed payloads.
 *
 * The registry is process-global; every instrument here uses a
 * unique `test.prom.*` name so the assertions never collide with
 * instruments other code registered.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hh"
#include "obs/prom_check.hh"

namespace
{

using namespace lag;

/** All sample lines of @p family (exact name, optional labels). */
std::vector<std::string>
familyLines(const std::string &dump, const std::string &family)
{
    std::vector<std::string> lines;
    std::size_t at = 0;
    while (at < dump.size()) {
        std::size_t end = dump.find('\n', at);
        if (end == std::string::npos)
            end = dump.size();
        const std::string line = dump.substr(at, end - at);
        if (line.compare(0, family.size(), family) == 0 &&
            (line.size() == family.size() ||
             line[family.size()] == '{' ||
             line[family.size()] == ' '))
            lines.push_back(line);
        at = end + 1;
    }
    return lines;
}

double
sampleValue(const std::string &line)
{
    return std::stod(line.substr(line.rfind(' ') + 1));
}

TEST(ObsProm, DumpPassesStrictChecker)
{
    obs::metrics().counter("test.prom.hits").add(3);
    obs::metrics().gauge("test.prom.depth").set(7);
    obs::Histogram &h = obs::metrics().histogram(
        "test.prom.lat", {10, 100, 1000});
    h.record(5);
    h.record(50);
    h.record(5000); // overflow bucket

    const std::string dump = obs::metrics().dumpProm();
    const obs::PromCheckResult result = obs::checkProm(dump);
    EXPECT_TRUE(result.ok) << "line " << result.line << ": "
                           << result.message << "\n"
                           << dump;

    // Counters are suffixed _total; gauges emit value and _max.
    EXPECT_EQ(familyLines(dump, "lag_test_prom_hits_total").size(),
              1u);
    EXPECT_EQ(familyLines(dump, "lag_test_prom_depth").size(), 1u);
    EXPECT_EQ(familyLines(dump, "lag_test_prom_depth_max").size(),
              1u);
}

TEST(ObsProm, HistogramBucketsAreCumulativeWithInfEqualCount)
{
    obs::Histogram &h = obs::metrics().histogram(
        "test.prom.cumulative", {10, 100, 1000});
    h.record(5);
    h.record(7);
    h.record(50);
    h.record(70000);

    const std::string dump = obs::metrics().dumpProm();
    const std::vector<std::string> buckets =
        familyLines(dump, "lag_test_prom_cumulative_bucket");
    ASSERT_EQ(buckets.size(), 4u); // 3 bounds + Inf

    // Cumulative and nondecreasing: {2, 3, 3, 4}.
    EXPECT_EQ(sampleValue(buckets[0]), 2);
    EXPECT_EQ(sampleValue(buckets[1]), 3);
    EXPECT_EQ(sampleValue(buckets[2]), 3);
    EXPECT_NE(buckets[3].find("le=\"+Inf\""), std::string::npos)
        << buckets[3];
    EXPECT_EQ(sampleValue(buckets[3]), 4);

    const std::vector<std::string> count =
        familyLines(dump, "lag_test_prom_cumulative_count");
    ASSERT_EQ(count.size(), 1u);
    EXPECT_EQ(sampleValue(count[0]), 4);

    const std::vector<std::string> sum =
        familyLines(dump, "lag_test_prom_cumulative_sum");
    ASSERT_EQ(sum.size(), 1u);
    EXPECT_EQ(sampleValue(sum[0]), 5 + 7 + 50 + 70000);
}

TEST(ObsProm, LabeledInstrumentsRenderAndEscape)
{
    obs::metrics()
        .counter("test.prom.labeled", "route", "/v1/patterns")
        .add(2);
    // A value exercising every escape the spec defines:
    // backslash, double quote, newline.
    obs::metrics()
        .counter("test.prom.labeled", "route",
                 "a\\b\"c\nd")
        .add(1);

    const std::string dump = obs::metrics().dumpProm();
    const obs::PromCheckResult result = obs::checkProm(dump);
    EXPECT_TRUE(result.ok) << "line " << result.line << ": "
                           << result.message;

    EXPECT_NE(
        dump.find("lag_test_prom_labeled_total{route=\"/v1/"
                  "patterns\"} 2"),
        std::string::npos)
        << dump;
    EXPECT_NE(
        dump.find("lag_test_prom_labeled_total{route=\"a\\\\b\\\""
                  "c\\nd\"} 1"),
        std::string::npos)
        << dump;
}

TEST(ObsProm, LabelEscapeHelper)
{
    EXPECT_EQ(obs::promLabelEscape("plain"), "plain");
    EXPECT_EQ(obs::promLabelEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(obs::promLabelEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(obs::promLabelEscape("a\nb"), "a\\nb");
    EXPECT_EQ(obs::labeledMetricName("serve.x", "route", "/y"),
              "serve.x{route=\"/y\"}");
}

TEST(ObsProm, CheckerAcceptsSpecSamples)
{
    const char *good =
        "# HELP http_requests_total The total number of requests.\n"
        "# TYPE http_requests_total counter\n"
        "http_requests_total{method=\"post\",code=\"200\"} 1027 "
        "1395066363000\n"
        "http_requests_total{method=\"post\",code=\"400\"}    3 "
        "1395066363000\n"
        "# TYPE rpc_duration_hist histogram\n"
        "rpc_duration_hist_bucket{le=\"0.5\"} 129389\n"
        "rpc_duration_hist_bucket{le=\"1\"} 133988\n"
        "rpc_duration_hist_bucket{le=\"+Inf\"} 144320\n"
        "rpc_duration_hist_sum 53423\n"
        "rpc_duration_hist_count 144320\n"
        "something_weird{problem=\"division by zero\"} +Inf "
        "-3982045\n";
    const obs::PromCheckResult result = obs::checkProm(good);
    EXPECT_TRUE(result.ok) << "line " << result.line << ": "
                           << result.message;
}

TEST(ObsProm, CheckerRejectsMalformedPayloads)
{
    // Non-cumulative buckets.
    EXPECT_FALSE(obs::checkProm("# TYPE h histogram\n"
                                "h_bucket{le=\"1\"} 5\n"
                                "h_bucket{le=\"2\"} 3\n"
                                "h_bucket{le=\"+Inf\"} 5\n"
                                "h_sum 1\nh_count 5\n")
                     .ok);
    // Missing +Inf bucket.
    EXPECT_FALSE(obs::checkProm("# TYPE h histogram\n"
                                "h_bucket{le=\"1\"} 5\n"
                                "h_sum 1\nh_count 5\n")
                     .ok);
    // +Inf bucket != _count.
    EXPECT_FALSE(obs::checkProm("# TYPE h histogram\n"
                                "h_bucket{le=\"1\"} 5\n"
                                "h_bucket{le=\"+Inf\"} 5\n"
                                "h_sum 1\nh_count 7\n")
                     .ok);
    // Bad escape in a label value.
    EXPECT_FALSE(
        obs::checkProm("a{l=\"bad\\x\"} 1\n").ok);
    // Unterminated label value.
    EXPECT_FALSE(obs::checkProm("a{l=\"open} 1\n").ok);
    // Bad metric name.
    EXPECT_FALSE(obs::checkProm("9metric 1\n").ok);
    // Unknown TYPE.
    EXPECT_FALSE(obs::checkProm("# TYPE a weird\na 1\n").ok);
    // TYPE after the family's samples.
    EXPECT_FALSE(
        obs::checkProm("a 1\n# TYPE a counter\na 2\n").ok);
    // Garbage value.
    EXPECT_FALSE(obs::checkProm("a one\n").ok);
}

} // namespace
