/**
 * @file
 * serve store tests: every /v1 response a live lagd-shaped server
 * returns must be byte-identical to the batch reference — a cold
 * full `aggregateFromCache(incremental=false)` fed through the same
 * core/figure_json emitters — and `POST /v1/refresh` must recompute
 * exactly the apps whose `.ares` bytes changed, provable through
 * `serve.refresh.recomputed` and the engine's `cache.aggregate.*`
 * counters. Everything the server says must be strict JSON.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <string_view>
#include <tuple>
#include <utility>
#include <vector>

#include "app/study.hh"
#include "core/figure_json.hh"
#include "engine/incremental.hh"
#include "engine/pool.hh"
#include "engine/result_cache.hh"
#include "obs/json_check.hh"
#include "obs/metrics.hh"
#include "serve/client.hh"
#include "serve/router.hh"
#include "serve/server.hh"
#include "serve/store.hh"

namespace lag::serve
{
namespace
{

namespace fs = std::filesystem;

/** Scoped cache directory: clean before and after the test. */
struct CacheDir
{
    std::string path;

    explicit CacheDir(std::string p) : path(std::move(p))
    {
        fs::remove_all(path);
    }

    ~CacheDir() { fs::remove_all(path); }
};

/** A tiny quick study (first 2 apps, 2 sessions each) with a
 * private cache dir — small enough that the full load and the cold
 * reference both run in seconds. */
app::StudyConfig
tinyStudy(const std::string &cache_dir)
{
    app::StudyConfig config = app::StudyConfig::quickStudy(5);
    config.apps.resize(2);
    config.sessionsPerApp = 2;
    config.cacheDir = cache_dir;
    return config;
}

/** Percent-encode anything a query value cannot carry raw. */
std::string
urlEncode(const std::string &text)
{
    static const char hex[] = "0123456789ABCDEF";
    std::string out;
    for (const char c : text) {
        const bool plain = (c >= 'a' && c <= 'z') ||
                           (c >= 'A' && c <= 'Z') ||
                           (c >= '0' && c <= '9') || c == '-' ||
                           c == '_' || c == '.' || c == '~';
        if (plain) {
            out.push_back(c);
        } else {
            out.push_back('%');
            out.push_back(hex[(static_cast<unsigned char>(c) >> 4)]);
            out.push_back(hex[(static_cast<unsigned char>(c) & 0xf)]);
        }
    }
    return out;
}

/** The batch side of the equivalence: a cold, non-incremental full
 * aggregation (never touches the `.ares` cache) pushed through the
 * same emitters the server uses. */
struct Reference
{
    std::vector<std::string> names;
    std::vector<core::MergedPatternSet> merged;
    std::vector<core::AppFigureData> figures;

    Reference(const app::StudyConfig &config,
              engine::ThreadPool &pool)
    {
        app::Study study(config);
        study.validate();
        for (const app::AppParams &params : config.apps)
            names.push_back(params.name);
        const engine::ResultCache cache(config.cacheDir,
                                        config.fingerprint());
        engine::AggregateOptions options;
        options.incremental = false;
        const engine::StudyAggregate aggregate =
            engine::aggregateFromCache(
                cache, names, config.sessionsPerApp,
                config.perceptibleThreshold, pool,
                [&study](std::size_t a, std::uint32_t s) {
                    return study.loadSession(a, s);
                },
                options);
        merged = aggregate.merged;
        for (std::size_t a = 0; a < names.size(); ++a)
            figures.push_back(engine::averageSessionAnalyses(
                names[a], aggregate.grid[a]));
    }
};

/** A live server over a freshly loaded HotStore. */
struct LiveServer
{
    engine::ThreadPool pool{2};
    HotStore store;
    HttpServer server;

    explicit LiveServer(const app::StudyConfig &config)
        : store(config, pool),
          server(ServerConfig{}, routedStore(), pool)
    {
        server.start();
    }

    ~LiveServer() { server.stop(); }

    Router
    routedStore()
    {
        store.load();
        Router router;
        store.installRoutes(router);
        return router;
    }

    /** GET @p target; asserts transport success and strict JSON. */
    ClientResult
    get(const std::string &target)
    {
        ClientOptions options;
        options.port = server.port();
        const ClientResult result =
            httpRequest(options, "GET", target);
        EXPECT_TRUE(result.ok) << target << ": " << result.error;
        EXPECT_TRUE(obs::checkJson(result.body).ok)
            << target << ": " << result.body;
        return result;
    }

    ClientResult
    post(const std::string &target)
    {
        ClientOptions options;
        options.port = server.port();
        const ClientResult result =
            httpRequest(options, "POST", target);
        EXPECT_TRUE(result.ok) << target << ": " << result.error;
        EXPECT_TRUE(obs::checkJson(result.body).ok)
            << target << ": " << result.body;
        return result;
    }
};

TEST(ServeStore, ResponsesByteIdenticalToBatchReference)
{
    const CacheDir cache_dir("lagalyzer-cache-serve-equiv-test");
    const app::StudyConfig config = tinyStudy(cache_dir.path);

    LiveServer live(config);
    const Reference reference(config, live.pool);

    // /v1/apps
    {
        const ClientResult result = live.get("/v1/apps");
        EXPECT_EQ(result.status, 200);
        EXPECT_EQ(result.body,
                  appsJson(reference.names, config.sessionsPerApp,
                           reference.merged));
    }

    for (std::size_t a = 0; a < reference.names.size(); ++a) {
        const std::string app = urlEncode(reference.names[a]);

        // /v1/patterns: every sort key, unlimited and limited.
        for (const std::string_view sort : core::kPatternSortKeys) {
            for (const std::size_t limit : {std::size_t{0},
                                            std::size_t{3}}) {
                std::string target = "/v1/patterns?app=" + app +
                                     "&sort=" + std::string(sort);
                if (limit != 0)
                    target += "&limit=" + std::to_string(limit);
                const ClientResult result = live.get(target);
                EXPECT_EQ(result.status, 200) << target;
                EXPECT_EQ(result.body,
                          core::patternsJson(reference.names[a],
                                             reference.merged[a],
                                             sort, limit))
                    << target;
            }
        }

        // Default sort is "episodes", default limit is "all".
        {
            const ClientResult result =
                live.get("/v1/patterns?app=" + app);
            EXPECT_EQ(result.body,
                      core::patternsJson(reference.names[a],
                                         reference.merged[a],
                                         "episodes", 0));
        }

        // /v1/cdf
        {
            const ClientResult result =
                live.get("/v1/cdf?app=" + app);
            EXPECT_EQ(result.status, 200);
            EXPECT_EQ(result.body,
                      core::cdfJson(
                          reference.names[a],
                          reference.figures[a]
                              .cdfEpisodesAtPatternPercent));
        }

        // /v1/episodes for every merged pattern of this app.
        for (const core::MergedPattern &pattern :
             reference.merged[a].patterns) {
            const std::string target =
                "/v1/episodes?app=" + app + "&pattern=" +
                core::patternKeyHex(pattern.key);
            const ClientResult result = live.get(target);
            EXPECT_EQ(result.status, 200) << target;
            EXPECT_EQ(result.body,
                      core::episodesJson(
                          reference.names[a], pattern,
                          reference.merged[a].sessionCount))
                << target;
        }
    }

    // /v1/figures/<id> for every figure and table.
    for (const std::string &id : core::figureIds()) {
        const ClientResult result = live.get("/v1/figures/" + id);
        EXPECT_EQ(result.status, 200) << id;
        EXPECT_EQ(result.body,
                  core::figureJson(id, reference.figures))
            << id;
    }

    // Health and metrics are strict JSON too (checked in get()).
    EXPECT_EQ(live.get("/healthz").status, 200);
    EXPECT_EQ(live.get("/metricsz").status, 200);

    // Error paths the querier hits in practice.
    EXPECT_EQ(live.get("/v1/patterns?app=no-such-app").status, 404);
    EXPECT_EQ(live.get("/v1/patterns?app=" +
                       urlEncode(reference.names[0]) +
                       "&sort=bogus")
                  .status,
              400);
    EXPECT_EQ(live.get("/v1/patterns?app=" +
                       urlEncode(reference.names[0]) +
                       "&limit=three")
                  .status,
              400);
    EXPECT_EQ(live.get("/v1/cdf").status, 404);
    EXPECT_EQ(live.get("/v1/episodes?app=" +
                       urlEncode(reference.names[0]))
                  .status,
              400);
    EXPECT_EQ(live.get("/v1/episodes?app=" +
                       urlEncode(reference.names[0]) +
                       "&pattern=zzzz")
                  .status,
              400);
    EXPECT_EQ(live.get("/v1/episodes?app=" +
                       urlEncode(reference.names[0]) +
                       "&pattern=ffffffffffffffff")
                  .status,
              404);
    EXPECT_EQ(live.get("/v1/figures/fig99").status, 404);
}

TEST(ServeStore, RefreshRecomputesExactlyTheDirtiedApp)
{
    const CacheDir cache_dir("lagalyzer-cache-serve-refresh-test");
    const app::StudyConfig config = tinyStudy(cache_dir.path);

    LiveServer live(config);
    const engine::ResultCache cache(config.cacheDir,
                                    config.fingerprint());

    const auto counters = [] {
        const obs::MetricsSnapshot snap = obs::metrics().snapshot();
        return std::make_tuple(
            snap.counterValue("serve.refresh.recomputed"),
            snap.counterValue("cache.aggregate.recomputed"),
            snap.counterValue("cache.aggregate.cached"));
    };

    // A no-op refresh: nothing changed, nothing recomputed.
    const auto before_noop = counters();
    {
        const ClientResult result = live.post("/v1/refresh");
        EXPECT_EQ(result.status, 200);
        EXPECT_EQ(result.body, "{\"recomputed\":[],\"unchanged\":" +
                                   std::to_string(
                                       config.apps.size()) +
                                   "}");
    }
    const auto after_noop = counters();
    EXPECT_EQ(std::get<0>(after_noop), std::get<0>(before_noop));
    EXPECT_EQ(std::get<1>(after_noop), std::get<1>(before_noop));
    EXPECT_EQ(std::get<2>(after_noop), std::get<2>(before_noop));

    // Dirty exactly app 0: delete its cache entries. The digest
    // treats present-vs-absent as a change, so refresh must
    // re-aggregate app 0 (recomputing every session) and must not
    // touch app 1 at all.
    const std::string &dirty = config.apps[0].name;
    for (std::uint32_t s = 0; s < config.sessionsPerApp; ++s)
        ASSERT_TRUE(fs::remove(cache.entryPath(dirty, s)))
            << cache.entryPath(dirty, s);

    const auto before = counters();
    {
        const ClientResult result = live.post("/v1/refresh");
        EXPECT_EQ(result.status, 200);
        EXPECT_EQ(result.body,
                  "{\"recomputed\":[\"" + core::jsonEscape(dirty) +
                      "\"],\"unchanged\":" +
                      std::to_string(config.apps.size() - 1) + "}");
    }
    const auto after = counters();
    // One app recomputed...
    EXPECT_EQ(std::get<0>(after), std::get<0>(before) + 1);
    // ...all of its sessions from scratch...
    EXPECT_EQ(std::get<1>(after),
              std::get<1>(before) + config.sessionsPerApp);
    // ...and zero sessions of any other app even re-read.
    EXPECT_EQ(std::get<2>(after), std::get<2>(before));

    // Post-refresh responses are byte-identical to a cold full
    // batch aggregation — the invalidation lost nothing.
    const Reference reference(config, live.pool);
    for (std::size_t a = 0; a < reference.names.size(); ++a) {
        const ClientResult result = live.get(
            "/v1/patterns?app=" + urlEncode(reference.names[a]) +
            "&sort=total_lag");
        EXPECT_EQ(result.status, 200);
        EXPECT_EQ(result.body,
                  core::patternsJson(reference.names[a],
                                     reference.merged[a],
                                     "total_lag", 0));
    }
    const ClientResult apps = live.get("/v1/apps");
    EXPECT_EQ(apps.body,
              appsJson(reference.names, config.sessionsPerApp,
                       reference.merged));

    // And a second refresh right after is a no-op again.
    const ClientResult again = live.post("/v1/refresh");
    EXPECT_EQ(again.body, "{\"recomputed\":[],\"unchanged\":" +
                              std::to_string(config.apps.size()) +
                              "}");
}

} // namespace
} // namespace lag::serve
