/**
 * @file
 * Proves every lag-lint rule live: each fixture under
 * tests/lint_fixtures/ seeds one violation, and the test asserts
 * the exact diagnostic (rule tag, file, line) plus the exit-status
 * contract, the per-line suppression syntax, and the cross-file
 * (paired .hh) declaration lookup.
 *
 * The binary path and fixture root come in as compile definitions
 * from tests/CMakeLists.txt, so the test is independent of the
 * working directory ctest chooses.
 */

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <string>

namespace
{

struct LintRun
{
    int exitCode = -1;
    std::string output;
};

/** Run lag_lint rooted at the fixture tree on @p path. */
LintRun
runLint(const std::string &args)
{
    const std::string command = std::string(LAG_LINT_BIN) + " " +
                                args + " 2>&1";
    LintRun run;
    std::FILE *pipe = popen(command.c_str(), "r");
    if (pipe == nullptr)
        return run;
    std::array<char, 4096> chunk{};
    std::size_t got = 0;
    while ((got = fread(chunk.data(), 1, chunk.size(), pipe)) > 0)
        run.output.append(chunk.data(), got);
    const int status = pclose(pipe);
    if (WIFEXITED(status))
        run.exitCode = WEXITSTATUS(status);
    return run;
}

LintRun
lintFixture(const std::string &rel)
{
    return runLint("--root " + std::string(LAG_LINT_FIXTURES) + " " +
                   rel);
}

TEST(LagLint, WallclockRuleFires)
{
    const LintRun run = lintFixture("src/sim/wallclock_bad.cc");
    EXPECT_EQ(run.exitCode, 1);
    EXPECT_NE(run.output.find("[wallclock]"), std::string::npos)
        << run.output;
    EXPECT_NE(run.output.find("src/sim/wallclock_bad.cc:6:"),
              std::string::npos)
        << run.output;
    // The comment/string mentions must not produce extra findings.
    EXPECT_NE(run.output.find("1 finding(s)"), std::string::npos)
        << run.output;
}

TEST(LagLint, UnorderedIterRuleFires)
{
    const LintRun run = lintFixture("src/core/unordered_bad.cc");
    EXPECT_EQ(run.exitCode, 1);
    EXPECT_NE(run.output.find("[unordered-iter]"), std::string::npos)
        << run.output;
    EXPECT_NE(run.output.find("src/core/unordered_bad.cc:9:"),
              std::string::npos)
        << run.output;
}

TEST(LagLint, UnorderedIterSeesPairedHeaderDecls)
{
    const LintRun run = lintFixture("src/lila/member_iter.cc");
    EXPECT_EQ(run.exitCode, 1);
    EXPECT_NE(run.output.find("[unordered-iter]"), std::string::npos)
        << run.output;
    EXPECT_NE(run.output.find("src/lila/member_iter.cc:9:"),
              std::string::npos)
        << run.output;
}

TEST(LagLint, RawMutexRuleFires)
{
    const LintRun run = lintFixture("src/app/rawmutex_bad.cc");
    EXPECT_EQ(run.exitCode, 1);
    EXPECT_NE(run.output.find("[raw-mutex]"), std::string::npos)
        << run.output;
    EXPECT_NE(run.output.find("src/app/rawmutex_bad.cc:4:"),
              std::string::npos)
        << run.output;
}

TEST(LagLint, NakedNewRuleFires)
{
    const LintRun run = lintFixture("src/engine/nakednew_bad.cc");
    EXPECT_EQ(run.exitCode, 1);
    EXPECT_NE(run.output.find("[naked-new]"), std::string::npos)
        << run.output;
    EXPECT_NE(run.output.find("src/engine/nakednew_bad.cc:4:"),
              std::string::npos)
        << run.output;
    EXPECT_NE(run.output.find("src/engine/nakednew_bad.cc:8:"),
              std::string::npos)
        << run.output;
    // `= delete`, comments and strings stay silent: exactly the
    // two seeded lines.
    EXPECT_NE(run.output.find("2 finding(s)"), std::string::npos)
        << run.output;
}

TEST(LagLint, FloatHashRuleFires)
{
    const LintRun run = lintFixture("src/util/hash.hh");
    EXPECT_EQ(run.exitCode, 1);
    EXPECT_NE(run.output.find("[float-hash]"), std::string::npos)
        << run.output;
    EXPECT_NE(run.output.find("src/util/hash.hh:6:"),
              std::string::npos)
        << run.output;
}

TEST(LagLint, ReserveLoopRuleFires)
{
    const LintRun run =
        lintFixture("src/trace/reserveloop_bad.cc");
    EXPECT_EQ(run.exitCode, 1);
    EXPECT_NE(run.output.find("[reserve-loop]"), std::string::npos)
        << run.output;
    EXPECT_NE(run.output.find("src/trace/reserveloop_bad.cc:10:"),
              std::string::npos)
        << run.output;
    EXPECT_NE(run.output.find("src/trace/reserveloop_bad.cc:18:"),
              std::string::npos)
        << run.output;
    // The reserved loop and the suppressed loop must stay silent:
    // exactly the two seeded lines.
    EXPECT_NE(run.output.find("2 finding(s)"), std::string::npos)
        << run.output;
}

TEST(LagLint, ByteHashLoopRuleFires)
{
    const LintRun run = lintFixture("src/util/bytehash_bad.cc");
    EXPECT_EQ(run.exitCode, 1);
    EXPECT_NE(run.output.find("[byte-hash-loop]"), std::string::npos)
        << run.output;
    EXPECT_NE(run.output.find("src/util/bytehash_bad.cc:11:"),
              std::string::npos)
        << run.output;
    // The suppressed tail loop and the plain-assignment word folds
    // must stay silent: exactly the one seeded line.
    EXPECT_NE(run.output.find("1 finding(s)"), std::string::npos)
        << run.output;
}

TEST(LagLint, ObsClockRuleFires)
{
    const LintRun run = lintFixture("src/engine/obsclock_bad.cc");
    EXPECT_EQ(run.exitCode, 1);
    EXPECT_NE(run.output.find("[obs-clock]"), std::string::npos)
        << run.output;
    EXPECT_NE(run.output.find("src/engine/obsclock_bad.cc:8:"),
              std::string::npos)
        << run.output;
    // The comment and string mentions must stay silent: exactly the
    // one seeded line.
    EXPECT_NE(run.output.find("1 finding(s)"), std::string::npos)
        << run.output;
}

TEST(LagLint, SignalSafeRuleFires)
{
    const LintRun run = lintFixture("src/obs/sigsafe_bad.cc");
    EXPECT_EQ(run.exitCode, 1);
    EXPECT_NE(run.output.find("[signal-safe]"), std::string::npos)
        << run.output;
    EXPECT_NE(run.output.find("src/obs/sigsafe_bad.cc:8:"),
              std::string::npos)
        << run.output;
    EXPECT_NE(run.output.find("src/obs/sigsafe_bad.cc:10:"),
              std::string::npos)
        << run.output;
    // malloc, printf, std::string, free — and the comment mentions
    // stay silent: exactly the four seeded lines.
    EXPECT_NE(run.output.find("4 finding(s)"), std::string::npos)
        << run.output;
}

TEST(LagLint, SignalSafeIgnoresUnmarkedFiles)
{
    const LintRun run =
        lintFixture("src/obs/sigsafe_unmarked_ok.cc");
    EXPECT_EQ(run.exitCode, 0) << run.output;
}

TEST(LagLint, SuppressionSilencesFindings)
{
    // Covers all three suppression forms: allow(rule),
    // allow(rule-a, rule-b) and allow-next(rule).
    const LintRun run = lintFixture("src/core/suppressed_ok.cc");
    EXPECT_EQ(run.exitCode, 0) << run.output;
    EXPECT_EQ(run.output.find("finding"), std::string::npos)
        << run.output;
}

TEST(LagLint, SuppressionForOtherRuleDoesNotSilence)
{
    const LintRun run =
        lintFixture("src/core/suppressed_wrong_rule.cc");
    EXPECT_EQ(run.exitCode, 1);
    EXPECT_NE(run.output.find("[unordered-iter]"), std::string::npos)
        << run.output;
    EXPECT_NE(run.output.find("1 finding(s)"), std::string::npos)
        << run.output;
}

TEST(LagLint, CleanFileExitsZero)
{
    const LintRun run = lintFixture("src/core/clean_ok.cc");
    EXPECT_EQ(run.exitCode, 0) << run.output;
}

TEST(LagLint, MissingPathExitsTwo)
{
    const LintRun run = lintFixture("src/no/such/file.cc");
    EXPECT_EQ(run.exitCode, 2);
}

TEST(LagLint, ListRulesNamesEveryRule)
{
    const LintRun run = runLint("--list-rules");
    EXPECT_EQ(run.exitCode, 0);
    for (const char *rule :
         {"wallclock", "unordered-iter", "raw-mutex", "naked-new",
          "float-hash", "reserve-loop", "obs-clock",
          "byte-hash-loop", "signal-safe"}) {
        EXPECT_NE(run.output.find(rule), std::string::npos)
            << "missing rule: " << rule;
    }
}

TEST(LagLint, RealTreeIsClean)
{
    const LintRun run =
        runLint("--root " + std::string(LAG_SOURCE_DIR) +
                " src bench tests");
    EXPECT_EQ(run.exitCode, 0) << run.output;
}

} // namespace
