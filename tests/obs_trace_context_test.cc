/**
 * @file
 * Trace-context tests: minting (never-zero, unique), the hex
 * round-trip, scope install/restore, and — the tentpole — context
 * propagation through every engine fan-out primitive
 * (ThreadPool::submit, parallelFor, TaskGraph) so spans recorded on
 * pool workers carry the submitting request's id all the way into
 * the Chrome-trace export.
 *
 * Span buffers are process-global and append-only, so tests use
 * uniquely named spans and never assume the buffers start empty.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "engine/graph.hh"
#include "engine/pool.hh"
#include "engine/study_driver.hh"
#include "obs/chrome_trace.hh"
#include "obs/span.hh"
#include "obs/trace_context.hh"

namespace
{

using namespace lag;

/** RAII guard so a failing test cannot leak spans-enabled state. */
struct SpansOn
{
    SpansOn() { obs::setSpansEnabled(true); }
    ~SpansOn() { obs::setSpansEnabled(false); }
};

/** First published span named @p name, or nullptr. */
const obs::SpanEvent *
findSpan(std::string_view name)
{
    for (const auto &buffer : obs::spanBuffers()) {
        const std::size_t published = buffer->published();
        for (std::size_t i = 0; i < published; ++i) {
            if (buffer->at(i).name == name)
                return &buffer->at(i);
        }
    }
    return nullptr;
}

TEST(TraceContext, MintedIdsAreActiveAndUnique)
{
    std::set<std::string> seen;
    for (int i = 0; i < 100; ++i) {
        const obs::TraceContext ctx = obs::mintTraceContext();
        EXPECT_TRUE(ctx.active());
        seen.insert(obs::traceIdHex(ctx));
    }
    EXPECT_EQ(seen.size(), 100u);
}

TEST(TraceContext, HexRoundTrip)
{
    const obs::TraceContext ctx = obs::mintTraceContext();
    const std::string hex = obs::traceIdHex(ctx);
    EXPECT_EQ(hex.size(), 32u);
    for (const char c : hex)
        EXPECT_TRUE((c >= '0' && c <= '9') ||
                    (c >= 'a' && c <= 'f'))
            << hex;

    obs::TraceContext parsed;
    ASSERT_TRUE(obs::parseTraceIdHex(hex, parsed));
    EXPECT_EQ(parsed, ctx);

    // Anything that is not exactly 32 hex chars is rejected.
    EXPECT_FALSE(obs::parseTraceIdHex("", parsed));
    EXPECT_FALSE(obs::parseTraceIdHex(hex.substr(1), parsed));
    EXPECT_FALSE(obs::parseTraceIdHex(hex + "0", parsed));
    std::string bad = hex;
    bad[7] = 'z';
    EXPECT_FALSE(obs::parseTraceIdHex(bad, parsed));
}

TEST(TraceContext, ScopeInstallsAndRestores)
{
    EXPECT_FALSE(obs::currentTraceContext().active());
    const obs::TraceContext outer = obs::mintTraceContext();
    {
        obs::TraceContextScope outer_scope(outer);
        EXPECT_EQ(obs::currentTraceContext(), outer);
        const obs::TraceContext inner = obs::mintTraceContext();
        {
            obs::TraceContextScope inner_scope(inner);
            EXPECT_EQ(obs::currentTraceContext(), inner);
        }
        EXPECT_EQ(obs::currentTraceContext(), outer);
    }
    EXPECT_FALSE(obs::currentTraceContext().active());
}

TEST(TraceContext, SubmitPropagatesContextToWorkers)
{
    engine::ThreadPool pool(2);
    const obs::TraceContext ctx = obs::mintTraceContext();
    std::atomic<bool> matched{false};
    {
        obs::TraceContextScope scope(ctx);
        pool.submit([&matched, ctx] {
            matched.store(obs::currentTraceContext() == ctx);
        });
    }
    pool.waitIdle();
    EXPECT_TRUE(matched.load());

    // Without a context at submit time the worker sees none.
    std::atomic<bool> inactive{false};
    pool.submit([&inactive] {
        inactive.store(!obs::currentTraceContext().active());
    });
    pool.waitIdle();
    EXPECT_TRUE(inactive.load());
}

TEST(TraceContext, ParallelForInheritsContext)
{
    engine::ThreadPool pool(3);
    const obs::TraceContext ctx = obs::mintTraceContext();
    constexpr std::size_t kCount = 64;
    std::vector<int> matched(kCount, 0);
    {
        obs::TraceContextScope scope(ctx);
        engine::parallelFor(pool, kCount,
                            [&matched, ctx](std::size_t i) {
                                matched[i] =
                                    obs::currentTraceContext() ==
                                    ctx;
                            });
    }
    for (std::size_t i = 0; i < kCount; ++i)
        EXPECT_EQ(matched[i], 1) << i;
}

TEST(TraceContext, TaskGraphInheritsContextTransitively)
{
    engine::ThreadPool pool(2);
    const obs::TraceContext ctx = obs::mintTraceContext();
    std::atomic<int> matched{0};
    const auto probe = [&matched, ctx] {
        if (obs::currentTraceContext() == ctx)
            matched.fetch_add(1);
    };

    engine::TaskGraph graph;
    // A diamond: the dependents are submitted from inside the
    // workers running their parents, so the context must flow
    // through that second-generation submit too.
    const engine::TaskId root = graph.add(probe);
    const engine::TaskId left = graph.add(probe, {root});
    const engine::TaskId right = graph.add(probe, {root});
    graph.add(probe, {left, right});
    {
        obs::TraceContextScope scope(ctx);
        graph.run(pool);
    }
    EXPECT_EQ(matched.load(), 4);
}

TEST(TraceContext, SpansStampTheActiveContext)
{
    const SpansOn on;
    const obs::TraceContext ctx = obs::mintTraceContext();
    {
        obs::TraceContextScope scope(ctx);
        LAG_SPAN("test.trace_context.stamped");
    }
    {
        LAG_SPAN("test.trace_context.unstamped");
    }

    const obs::SpanEvent *stamped =
        findSpan("test.trace_context.stamped");
    ASSERT_NE(stamped, nullptr);
    EXPECT_EQ(stamped->traceHi, ctx.hi);
    EXPECT_EQ(stamped->traceLo, ctx.lo);

    const obs::SpanEvent *unstamped =
        findSpan("test.trace_context.unstamped");
    ASSERT_NE(unstamped, nullptr);
    EXPECT_EQ(unstamped->traceHi, 0u);
    EXPECT_EQ(unstamped->traceLo, 0u);
}

TEST(TraceContext, ChromeTraceExportCarriesTraceIds)
{
    const SpansOn on;
    engine::ThreadPool pool(2);
    const obs::TraceContext ctx = obs::mintTraceContext();
    {
        obs::TraceContextScope scope(ctx);
        LAG_SPAN("test.trace_context.export");
        pool.submit([] { LAG_SPAN("test.trace_context.pooled"); });
        pool.waitIdle();
    }

    const std::string json = obs::chromeTraceJson();
    const std::string hex = obs::traceIdHex(ctx);
    // Both the local span and the pool-worker span carry the same
    // request id in their args.
    const std::size_t first =
        json.find("\"trace\":\"" + hex + "\"");
    EXPECT_NE(first, std::string::npos);
    EXPECT_NE(json.find("\"trace\":\"" + hex + "\"", first + 1),
              std::string::npos);

    // Spans recorded with no context carry no trace arg at all:
    // find the unstamped event and check its object.
    const std::size_t at =
        json.find("test.trace_context.unstamped");
    if (at != std::string::npos) {
        const std::size_t close = json.find('}', at);
        ASSERT_NE(close, std::string::npos);
        EXPECT_EQ(
            json.substr(at, close - at).find("\"trace\""),
            std::string::npos);
    }
}

} // namespace
