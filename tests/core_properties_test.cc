/**
 * @file
 * Pipeline-wide property tests, parameterized over all 14
 * application models: for every app, a short live session must
 * satisfy the invariants LagAlyzer's analyses rely on.
 */

#include <gtest/gtest.h>

#include "app/catalog.hh"
#include "app/session_runner.hh"
#include "core/blame.hh"
#include "core/concurrency.hh"
#include "core/location.hh"
#include "core/overview.hh"
#include "core/pattern.hh"
#include "core/pattern_stats.hh"
#include "core/triggers.hh"
#include "trace/io.hh"

namespace lag::core
{
namespace
{

class AppPipelineProperties
    : public ::testing::TestWithParam<const char *>
{
  protected:
    static Session
    makeSession(const char *name)
    {
        app::AppParams params = app::catalogApp(name);
        params.sessionLength = secToNs(20);
        auto result = app::runSession(params, 2);
        // Through the codec, as in production.
        return Session::fromTrace(trace::deserializeTrace(
            trace::serializeTrace(result.trace)));
    }
};

TEST_P(AppPipelineProperties, EveryEpisodeAccountedFor)
{
    const Session session = makeSession(GetParam());
    const PatternSet set = PatternMiner(msToNs(100)).mine(session);
    EXPECT_EQ(set.coveredEpisodes + set.structurelessEpisodes,
              session.episodes().size());
    // Each covered episode appears in exactly one pattern.
    std::vector<int> seen(session.episodes().size(), 0);
    for (const auto &pattern : set.patterns) {
        for (const std::size_t idx : pattern.episodes)
            ++seen[idx];
    }
    for (const int count : seen)
        ASSERT_LE(count, 1);
}

TEST_P(AppPipelineProperties, PatternStatsConsistent)
{
    const Session session = makeSession(GetParam());
    const PatternSet set = PatternMiner(msToNs(100)).mine(session);
    for (const auto &pattern : set.patterns) {
        ASSERT_FALSE(pattern.episodes.empty());
        ASSERT_LE(pattern.minLag, pattern.maxLag);
        ASSERT_GE(pattern.avgLag(), pattern.minLag);
        ASSERT_LE(pattern.avgLag(), pattern.maxLag);
        ASSERT_LE(pattern.perceptibleCount, pattern.episodes.size());
        // Occurrence class matches the counts.
        switch (pattern.occurrence) {
          case OccurrenceClass::Never:
            ASSERT_EQ(pattern.perceptibleCount, 0u);
            break;
          case OccurrenceClass::Always:
            ASSERT_EQ(pattern.perceptibleCount,
                      pattern.episodes.size());
            break;
          case OccurrenceClass::Once:
            ASSERT_EQ(pattern.perceptibleCount, 1u);
            ASSERT_GT(pattern.episodes.size(), 1u);
            break;
          case OccurrenceClass::Sometimes:
            ASSERT_GT(pattern.perceptibleCount, 1u);
            ASSERT_LT(pattern.perceptibleCount,
                      pattern.episodes.size());
            break;
        }
    }
}

TEST_P(AppPipelineProperties, SharesSumToOne)
{
    const Session session = makeSession(GetParam());
    const auto triggers = analyzeTriggers(session, msToNs(100));
    if (triggers.all.episodeCount > 0) {
        EXPECT_NEAR(triggers.all.input + triggers.all.output +
                        triggers.all.async + triggers.all.unspecified,
                    1.0, 1e-9);
    }
    const auto states = analyzeGuiStates(session, msToNs(100));
    if (states.all.sampleCount > 0) {
        EXPECT_NEAR(states.all.blocked + states.all.waiting +
                        states.all.sleeping + states.all.runnable,
                    1.0, 1e-9);
    }
    const auto location = analyzeLocation(session, msToNs(100));
    if (location.all.sampleCount > 0) {
        EXPECT_NEAR(location.all.appFraction +
                        location.all.libraryFraction,
                    1.0, 1e-9);
    }
    EXPECT_LE(location.all.gcFraction + location.all.nativeFraction,
              1.0 + 1e-9);
}

TEST_P(AppPipelineProperties, CdfMonotoneEndsAtOne)
{
    const Session session = makeSession(GetParam());
    const PatternSet set = PatternMiner(msToNs(100)).mine(session);
    const auto cdf = patternCdf(set);
    for (std::size_t i = 1; i < cdf.size(); ++i) {
        ASSERT_GE(cdf[i].first, cdf[i - 1].first);
        ASSERT_GE(cdf[i].second, cdf[i - 1].second);
    }
    if (set.coveredEpisodes > 0) {
        EXPECT_DOUBLE_EQ(cdf.back().first, 1.0);
        EXPECT_DOUBLE_EQ(cdf.back().second, 1.0);
    }
}

TEST_P(AppPipelineProperties, BlameSharesBounded)
{
    const Session session = makeSession(GetParam());
    BlameOptions options;
    options.perceptibleThreshold = 0;
    options.limit = 0;
    const auto report = blameReport(session, options);
    double total_share = 0.0;
    for (const auto &entry : report) {
        ASSERT_LE(entry.notRunnableSamples, entry.samples);
        total_share += entry.share;
    }
    if (!report.empty()) {
        EXPECT_NEAR(total_share, 1.0, 1e-9);
    }
}

TEST_P(AppPipelineProperties, GcCopiesOnEveryThread)
{
    const Session session = makeSession(GetParam());
    // Count GC roots/nodes per thread: every thread sees the same
    // number of collections (paper SII.A).
    std::vector<std::size_t> per_thread;
    for (const auto &tree : session.threads()) {
        std::size_t count = 0;
        const std::function<void(const IntervalNode &)> walk =
            [&](const IntervalNode &node) {
                if (node.type == IntervalType::Gc)
                    ++count;
                for (const auto &child : node.children)
                    walk(child);
            };
        for (const auto &root : tree.roots)
            walk(root);
        per_thread.push_back(count);
    }
    for (const std::size_t count : per_thread)
        ASSERT_EQ(count, per_thread.front());
}

INSTANTIATE_TEST_SUITE_P(
    AllApps, AppPipelineProperties,
    ::testing::Values("Arabeske", "ArgoUML", "CrosswordSage",
                      "Euclide", "FindBugs", "FreeMind",
                      "GanttProject", "JEdit", "JFreeChart",
                      "JHotDraw", "Jmol", "Laoe", "NetBeans",
                      "SwingSet"),
    [](const ::testing::TestParamInfo<const char *> &param_info) {
        return std::string(param_info.param);
    });

} // namespace
} // namespace lag::core
