/**
 * @file
 * Tests for the flat (structure-of-arrays) interval trees: preorder
 * layout invariants, walk/signature equivalence against the node
 * tree, depth-guard behaviour on hostile nesting, structural
 * equality, and the SIMD/scalar marker-scan contract.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/flat_simd.hh"
#include "core/flat_tree.hh"
#include "core/location.hh"
#include "core/pattern.hh"
#include "core/triggers.hh"
#include "trace_builder.hh"
#include "util/hash.hh"

namespace lag::core
{
namespace
{

using trace::IntervalKind;

/** A session exercising every interval type, nesting and GC. */
Session
richSession()
{
    test::TraceBuilder builder;
    builder.dispatchBegin(0)
        .intervalBegin(1000, IntervalKind::Listener, "app.A", "act")
        .intervalBegin(2000, IntervalKind::Native, "app.N", "jni")
        .gc(3000, 4000)
        .intervalEnd(msToNs(6), IntervalKind::Native)
        .intervalEnd(msToNs(8), IntervalKind::Listener)
        .intervalBegin(msToNs(9), IntervalKind::Paint, "app.P", "p")
        .intervalEnd(msToNs(12), IntervalKind::Paint)
        .dispatchEnd(msToNs(14));
    builder.dispatchBegin(msToNs(20))
        .intervalBegin(msToNs(21), IntervalKind::Async, "app.Q", "r")
        .intervalBegin(msToNs(22), IntervalKind::Paint, "app.P", "p")
        .intervalEnd(msToNs(23), IntervalKind::Paint)
        .intervalEnd(msToNs(24), IntervalKind::Async)
        .dispatchEnd(msToNs(25));
    builder.dispatchBegin(msToNs(30)).dispatchEnd(msToNs(31));
    return builder.buildSession(secToNs(1));
}

/** Preorder walk of a node tree collecting (type, begin, end). */
void
preorder(const IntervalNode &node,
         std::vector<const IntervalNode *> &out)
{
    out.push_back(&node);
    for (const auto &child : node.children)
        preorder(child, out);
}

TEST(FlatTreeTest, PreorderLayoutMatchesNodeTree)
{
    const Session session = richSession();
    const FlatSession flat = flattenSession(session);
    ASSERT_EQ(flat.trees().size(), session.threads().size());

    for (std::size_t t = 0; t < flat.trees().size(); ++t) {
        const FlatTree &tree = flat.trees()[t];
        std::vector<const IntervalNode *> nodes;
        for (const IntervalNode &root :
             session.threads()[t].roots)
            preorder(root, nodes);
        ASSERT_EQ(tree.size(), nodes.size());
        for (std::size_t i = 0; i < nodes.size(); ++i) {
            EXPECT_EQ(tree.typeOf(i), nodes[i]->type) << i;
            EXPECT_EQ(tree.begin[i], nodes[i]->begin) << i;
            EXPECT_EQ(tree.end[i], nodes[i]->end) << i;
            EXPECT_EQ(tree.classSym[i], nodes[i]->classSym) << i;
            EXPECT_EQ(tree.methodSym[i], nodes[i]->methodSym) << i;
            // Subtree slice = this node plus all descendants.
            EXPECT_EQ(tree.subtreeSize(static_cast<std::uint32_t>(i)),
                      nodes[i]->descendantCount() + 1)
                << i;
        }
    }
}

TEST(FlatTreeTest, EpisodeRefsPointAtEpisodeRoots)
{
    const Session session = richSession();
    const FlatSession flat = flattenSession(session);
    ASSERT_EQ(session.episodes().size(), 3u);
    for (std::size_t i = 0; i < session.episodes().size(); ++i) {
        const IntervalNode &root =
            session.episodeRoot(session.episodes()[i]);
        const FlatTree &tree = flat.trees()[flat.episodeTree(i)];
        const std::uint32_t node = flat.episodeNode(i);
        EXPECT_EQ(tree.begin[node], root.begin);
        EXPECT_EQ(tree.end[node], root.end);
        EXPECT_EQ(tree.typeOf(node), IntervalType::Dispatch);
    }
}

TEST(FlatTreeTest, WalksMatchNodeWalks)
{
    const Session session = richSession();
    const FlatSession flat = flattenSession(session);
    for (std::size_t i = 0; i < session.episodes().size(); ++i) {
        const IntervalNode &root =
            session.episodeRoot(session.episodes()[i]);
        const FlatTree &tree = flat.trees()[flat.episodeTree(i)];
        const std::uint32_t node = flat.episodeNode(i);
        EXPECT_EQ(flatDescendantCount(tree, node),
                  root.descendantCount());
        EXPECT_EQ(flatDepth(tree, node), root.depth());
        for (const IntervalType type :
             {IntervalType::Listener, IntervalType::Paint,
              IntervalType::Native, IntervalType::Async,
              IntervalType::Gc}) {
            EXPECT_EQ(flatTypeTime(tree, node, type),
                      root.typeTime(type))
                << "type " << static_cast<int>(type);
        }
        EXPECT_EQ(flatNativeTimeExcludingGc(tree, node),
                  nativeTimeExcludingGc(root));
        EXPECT_EQ(flatEpisodeTrigger(tree, node),
                  episodeTrigger(root));
    }
}

TEST(FlatTreeTest, SignaturesMatchNodeSignatures)
{
    const Session session = richSession();
    const FlatSession flat = flattenSession(session);
    FlatSigStack scratch;
    for (std::size_t i = 0; i < session.episodes().size(); ++i) {
        const IntervalNode &root =
            session.episodeRoot(session.episodes()[i]);
        const FlatTree &tree = flat.trees()[flat.episodeTree(i)];
        const std::uint32_t node = flat.episodeNode(i);
        const std::string nodeSig =
            patternSignature(root, session.strings());
        EXPECT_EQ(flatSignatureString(tree, node, session.strings()),
                  nodeSig);
        EXPECT_EQ(flatSignatureHash(tree, node, session.strings(),
                                    scratch),
                  fnv1a(nodeSig));
    }
}

TEST(FlatTreeTest, FlatMiningIsByteIdenticalToNodeMining)
{
    test::TraceBuilder builder;
    // Three episodes of one pattern, two of another, one empty.
    for (int k = 0; k < 3; ++k) {
        const TimeNs base = msToNs(100 * k);
        builder.listenerEpisode(base, base + msToNs(50), "app.A");
    }
    for (int k = 0; k < 2; ++k) {
        const TimeNs base = msToNs(400 + 200 * k);
        builder.listenerEpisode(base, base + msToNs(150), "app.B");
    }
    builder.dispatchBegin(msToNs(800)).dispatchEnd(msToNs(801));
    const Session session = builder.buildSession(secToNs(1));
    const FlatSession flat = flattenSession(session);

    const PatternMiner miner(msToNs(100));
    const PatternSet nodeSet = miner.mine(session);
    const PatternSet flatSet = miner.mine(session, flat);

    EXPECT_EQ(flatSet.coveredEpisodes, nodeSet.coveredEpisodes);
    EXPECT_EQ(flatSet.structurelessEpisodes,
              nodeSet.structurelessEpisodes);
    ASSERT_EQ(flatSet.patterns.size(), nodeSet.patterns.size());
    for (std::size_t p = 0; p < nodeSet.patterns.size(); ++p) {
        const Pattern &a = nodeSet.patterns[p];
        const Pattern &b = flatSet.patterns[p];
        EXPECT_EQ(b.signature, a.signature);
        EXPECT_EQ(b.key, a.key);
        EXPECT_EQ(b.episodes, a.episodes);
        EXPECT_EQ(b.minLag, a.minLag);
        EXPECT_EQ(b.maxLag, a.maxLag);
        EXPECT_EQ(b.totalLag, a.totalLag);
        EXPECT_EQ(b.perceptibleCount, a.perceptibleCount);
        EXPECT_EQ(b.firstPerceptible, a.firstPerceptible);
        EXPECT_EQ(b.descendants, a.descendants);
        EXPECT_EQ(b.depth, a.depth);
        EXPECT_EQ(b.occurrence, a.occurrence);
    }
}

/** Hand-built (heap) nesting chain of @p depth Native nodes (Native
 * is no trigger marker, so every walk must reach the bottom). */
IntervalVec
deepForest(std::size_t depth)
{
    IntervalNode current;
    current.type = IntervalType::Native;
    current.begin = 0;
    current.end = 10;
    for (std::size_t d = 1; d < depth; ++d) {
        IntervalNode parent;
        parent.type = IntervalType::Native;
        parent.begin = 0;
        parent.end = 10;
        parent.children.push_back(std::move(current));
        current = std::move(parent);
    }
    IntervalVec roots;
    roots.push_back(std::move(current));
    return roots;
}

TEST(FlatTreeTest, DeepTreesAreIterativeOnFlatAndGuardedOnNodes)
{
    const std::size_t depth = 2 * kMaxIntervalDepth;
    const IntervalVec roots = deepForest(depth);
    const IntervalNode &root = roots.front();

    // Node-tree walks must refuse (TraceError), not smash the stack.
    EXPECT_THROW(root.descendantCount(), trace::TraceError);
    EXPECT_THROW(root.depth(), trace::TraceError);
    EXPECT_THROW(root.typeTime(IntervalType::Gc), trace::TraceError);
    trace::StringTable strings;
    EXPECT_THROW(patternSignature(root, strings), trace::TraceError);
    EXPECT_THROW(episodeTrigger(root), trace::TraceError);

    // Flat walks are iterative by construction: any depth works.
    const FlatTree tree = flattenForest(roots);
    ASSERT_EQ(tree.size(), depth);
    EXPECT_EQ(flatDescendantCount(tree, 0), depth - 1);
    EXPECT_EQ(flatDepth(tree, 0), depth);
    EXPECT_EQ(flatTypeTime(tree, 0, IntervalType::Gc), 0);
    const std::string sig = flatSignatureString(tree, 0, strings);
    EXPECT_EQ(sig.size(), depth + 2 * (depth - 1));
}

TEST(FlatTreeTest, StructureEqualsIsGcBlindAndSymbolSensitive)
{
    // Symbol ids only compare within one session, so all three
    // episode shapes live in the same trace: plain, plain + GC,
    // different class.
    test::TraceBuilder builder;
    builder.dispatchBegin(0)
        .intervalBegin(1000, IntervalKind::Listener, "app.A", "act")
        .intervalEnd(msToNs(5), IntervalKind::Listener)
        .dispatchEnd(msToNs(6));
    builder.dispatchBegin(msToNs(10))
        .intervalBegin(msToNs(11), IntervalKind::Listener, "app.A",
                       "act")
        .gc(msToNs(12), msToNs(13))
        .intervalEnd(msToNs(15), IntervalKind::Listener)
        .dispatchEnd(msToNs(16));
    builder.dispatchBegin(msToNs(20))
        .intervalBegin(msToNs(21), IntervalKind::Listener, "app.B",
                       "act")
        .intervalEnd(msToNs(25), IntervalKind::Listener)
        .dispatchEnd(msToNs(26));
    const Session session = builder.buildSession(secToNs(1));
    const FlatSession flat = flattenSession(session);

    const auto treeOf = [&flat](std::size_t e) -> const FlatTree & {
        return flat.trees()[flat.episodeTree(e)];
    };
    // Same symbols, GC ignored: equal.
    EXPECT_TRUE(flatStructureEquals(treeOf(0), flat.episodeNode(0),
                                    treeOf(1), flat.episodeNode(1)));
    // Different class symbol: not equal.
    EXPECT_FALSE(flatStructureEquals(treeOf(0), flat.episodeNode(0),
                                     treeOf(2), flat.episodeNode(2)));
    // Reflexive.
    EXPECT_TRUE(flatStructureEquals(treeOf(2), flat.episodeNode(2),
                                    treeOf(2), flat.episodeNode(2)));
}

TEST(FlatSimdTest, ScalarFindsFirstMarker)
{
    const std::uint8_t types[] = {0, 0, 3, 5, 1, 2, 4, 0};
    EXPECT_EQ(findFirstMarkerScalar(types, 0, 8), 4u);
    EXPECT_EQ(findFirstMarkerScalar(types, 5, 8), 5u);
    EXPECT_EQ(findFirstMarkerScalar(types, 0, 4), 4u); // none: to
    EXPECT_EQ(findFirstMarkerScalar(types, 7, 8), 8u);
    EXPECT_EQ(findFirstMarkerScalar(types, 3, 3), 3u); // empty
}

TEST(FlatSimdTest, SimdMatchesScalarOnRandomArrays)
{
    // Deterministic LCG; no OS entropy in tests either.
    std::uint32_t state = 0x9e3779b9u;
    const auto next = [&state] {
        state = state * 1664525u + 1013904223u;
        return state >> 24;
    };
    for (int round = 0; round < 200; ++round) {
        std::vector<std::uint8_t> types(
            static_cast<std::size_t>(next() % 120));
        for (auto &t : types)
            t = static_cast<std::uint8_t>(next() % 6);
        const auto n = static_cast<std::uint32_t>(types.size());
        for (std::uint32_t from = 0; from <= n;
             from += 1 + from / 3) {
            const std::uint32_t expected =
                findFirstMarkerScalar(types.data(), from, n);
            EXPECT_EQ(findFirstMarker(types.data(), from, n),
                      expected);
#if defined(LAG_HAS_SSE2) || defined(LAG_HAS_NEON)
            EXPECT_EQ(findFirstMarkerSimd(types.data(), from, n),
                      expected);
#endif
        }
    }
}

TEST(FlatTreeTest, GcPrefixSumsAnswerSubtreeQueries)
{
    const Session session = richSession();
    const FlatSession flat = flattenSession(session);
    const FlatTree &tree = flat.trees()[flat.episodeTree(0)];
    const std::uint32_t node = flat.episodeNode(0);
    ASSERT_TRUE(tree.gcLeavesOnly);
    // Episode 0 contains exactly one GC of 1000 ns (inside the
    // native call).
    EXPECT_EQ(tree.gcCountIn(node), 1u);
    EXPECT_EQ(tree.gcTimeIn(node), 1000);
    // Episode 2 (structureless) contains none.
    const FlatTree &tree2 = flat.trees()[flat.episodeTree(2)];
    EXPECT_EQ(tree2.gcCountIn(flat.episodeNode(2)), 0u);
}

} // namespace
} // namespace lag::core
