/**
 * @file
 * Tests for pattern mining: signature semantics (GC- and timing-
 * blind), occurrence classification, coverage accounting and the
 * browser statistics.
 */

#include <gtest/gtest.h>

#include "util/logging.hh"

#include "core/pattern.hh"
#include "core/pattern_stats.hh"
#include "trace_builder.hh"

namespace lag::core
{
namespace
{

using trace::IntervalKind;
using trace::TraceGcKind;

TEST(PatternSignatureTest, EncodesTypeAndSymbols)
{
    test::TraceBuilder builder;
    builder.dispatchBegin(0)
        .intervalBegin(1, IntervalKind::Listener, "app.A", "act")
        .intervalBegin(2, IntervalKind::Paint, "app.B", "paint")
        .intervalEnd(3, IntervalKind::Paint)
        .intervalEnd(4, IntervalKind::Listener)
        .dispatchEnd(5);
    const Session session = builder.buildSession(secToNs(1));
    const std::string sig = patternSignature(
        session.episodeRoot(session.episodes()[0]), session.strings());
    EXPECT_EQ(sig, "D(L[app.A.act](P[app.B.paint]))");
}

TEST(PatternSignatureTest, IgnoresTiming)
{
    const auto make = [](TimeNs scale) {
        test::TraceBuilder builder;
        builder.dispatchBegin(0)
            .intervalBegin(1, IntervalKind::Listener, "app.A", "act")
            .intervalEnd(1 + scale, IntervalKind::Listener)
            .dispatchEnd(2 + scale);
        return builder.buildSession(secToNs(10));
    };
    const Session fast = make(msToNs(5));
    const Session slow = make(msToNs(500));
    EXPECT_EQ(patternSignature(fast.episodeRoot(fast.episodes()[0]),
                               fast.strings()),
              patternSignature(slow.episodeRoot(slow.episodes()[0]),
                               slow.strings()));
}

TEST(PatternSignatureTest, ExcludesGcNodes)
{
    test::TraceBuilder with_gc;
    with_gc.dispatchBegin(0)
        .intervalBegin(1, IntervalKind::Listener, "app.A", "act")
        .gc(msToNs(1), msToNs(2))
        .intervalEnd(msToNs(5), IntervalKind::Listener)
        .dispatchEnd(msToNs(6));
    test::TraceBuilder without_gc;
    without_gc.dispatchBegin(0)
        .intervalBegin(1, IntervalKind::Listener, "app.A", "act")
        .intervalEnd(msToNs(5), IntervalKind::Listener)
        .dispatchEnd(msToNs(6));
    const Session a = with_gc.buildSession(secToNs(1));
    const Session b = without_gc.buildSession(secToNs(1));
    EXPECT_EQ(patternSignature(a.episodeRoot(a.episodes()[0]),
                               a.strings()),
              patternSignature(b.episodeRoot(b.episodes()[0]),
                               b.strings()));
}

TEST(PatternSignatureTest, DistinguishesSymbols)
{
    const auto sig_for = [](const char *cls) {
        test::TraceBuilder builder;
        builder.listenerEpisode(0, msToNs(10), cls);
        const Session session = builder.buildSession(secToNs(1));
        return patternSignature(
            session.episodeRoot(session.episodes()[0]),
            session.strings());
    };
    EXPECT_NE(sig_for("app.A"), sig_for("app.B"));
}

TEST(PatternSignatureTest, DistinguishesNestingShape)
{
    // D(L(P)) vs D(L, P): nesting matters, not just the node set.
    test::TraceBuilder nested;
    nested.dispatchBegin(0)
        .intervalBegin(1, IntervalKind::Listener, "a.A", "m")
        .intervalBegin(2, IntervalKind::Paint, "a.P", "m")
        .intervalEnd(3, IntervalKind::Paint)
        .intervalEnd(4, IntervalKind::Listener)
        .dispatchEnd(5);
    test::TraceBuilder flat;
    flat.dispatchBegin(0)
        .intervalBegin(1, IntervalKind::Listener, "a.A", "m")
        .intervalEnd(2, IntervalKind::Listener)
        .intervalBegin(3, IntervalKind::Paint, "a.P", "m")
        .intervalEnd(4, IntervalKind::Paint)
        .dispatchEnd(5);
    const Session a = nested.buildSession(secToNs(1));
    const Session b = flat.buildSession(secToNs(1));
    EXPECT_NE(patternSignature(a.episodeRoot(a.episodes()[0]),
                               a.strings()),
              patternSignature(b.episodeRoot(b.episodes()[0]),
                               b.strings()));
}

/** Session with four episodes of pattern "X" at chosen durations and
 * one of pattern "Y". */
Session
mixedSession(const std::vector<DurationNs> &x_durations)
{
    test::TraceBuilder builder;
    TimeNs now = 0;
    for (const DurationNs d : x_durations) {
        builder.listenerEpisode(now, now + d, "app.X");
        now += d + msToNs(1);
    }
    builder.listenerEpisode(now, now + msToNs(10), "app.Y");
    return builder.buildSession(now + secToNs(1));
}

TEST(PatternMinerTest, GroupsByStructure)
{
    const Session session =
        mixedSession({msToNs(10), msToNs(20), msToNs(30)});
    const PatternSet set = PatternMiner(msToNs(100)).mine(session);
    ASSERT_EQ(set.patterns.size(), 2u);
    // Sorted most-populous first.
    EXPECT_EQ(set.patterns[0].episodes.size(), 3u);
    EXPECT_EQ(set.patterns[1].episodes.size(), 1u);
    EXPECT_EQ(set.coveredEpisodes, 4u);
    EXPECT_EQ(set.singletonCount(), 1u);
}

TEST(PatternMinerTest, LagStatistics)
{
    const Session session =
        mixedSession({msToNs(10), msToNs(30), msToNs(20)});
    const PatternSet set = PatternMiner(msToNs(100)).mine(session);
    const Pattern &p = set.patterns[0];
    EXPECT_EQ(p.minLag, msToNs(10));
    EXPECT_EQ(p.maxLag, msToNs(30));
    EXPECT_EQ(p.totalLag, msToNs(60));
    EXPECT_EQ(p.avgLag(), msToNs(20));
}

TEST(PatternMinerTest, OccurrenceNever)
{
    const Session session = mixedSession({msToNs(10), msToNs(20)});
    const PatternSet set = PatternMiner(msToNs(100)).mine(session);
    EXPECT_EQ(set.patterns[0].occurrence, OccurrenceClass::Never);
    EXPECT_EQ(set.perceptiblePatternCount(), 0u);
}

TEST(PatternMinerTest, OccurrenceAlways)
{
    const Session session = mixedSession({msToNs(150), msToNs(200)});
    const PatternSet set = PatternMiner(msToNs(100)).mine(session);
    EXPECT_EQ(set.patterns[0].occurrence, OccurrenceClass::Always);
    EXPECT_EQ(set.patterns[0].perceptibleCount, 2u);
}

TEST(PatternMinerTest, OccurrenceOnce)
{
    const Session session =
        mixedSession({msToNs(150), msToNs(20), msToNs(30)});
    const PatternSet set = PatternMiner(msToNs(100)).mine(session);
    EXPECT_EQ(set.patterns[0].occurrence, OccurrenceClass::Once);
    EXPECT_TRUE(set.patterns[0].firstPerceptible)
        << "the perceptible episode was the pattern's first";
}

TEST(PatternMinerTest, OccurrenceSometimes)
{
    const Session session = mixedSession(
        {msToNs(150), msToNs(20), msToNs(200), msToNs(30)});
    const PatternSet set = PatternMiner(msToNs(100)).mine(session);
    EXPECT_EQ(set.patterns[0].occurrence, OccurrenceClass::Sometimes);
}

TEST(PatternMinerTest, PerceptibleSingletonIsAlways)
{
    // Paper §IV.B: "We classify singleton patterns as always if
    // their only episode was perceptible."
    test::TraceBuilder builder;
    builder.listenerEpisode(0, msToNs(500), "app.Solo");
    const Session session = builder.buildSession(secToNs(1));
    const PatternSet set = PatternMiner(msToNs(100)).mine(session);
    ASSERT_EQ(set.patterns.size(), 1u);
    EXPECT_EQ(set.patterns[0].occurrence, OccurrenceClass::Always);
}

TEST(PatternMinerTest, StructurelessEpisodesExcluded)
{
    test::TraceBuilder builder;
    builder.dispatchBegin(0).dispatchEnd(msToNs(10)); // no children
    builder.listenerEpisode(msToNs(20), msToNs(30), "app.A");
    const Session session = builder.buildSession(secToNs(1));
    const PatternSet set = PatternMiner(msToNs(100)).mine(session);
    EXPECT_EQ(set.coveredEpisodes, 1u);
    EXPECT_EQ(set.structurelessEpisodes, 1u);
}

TEST(PatternMinerTest, GcOnlyEpisodeHasEmptyStructureSignature)
{
    // An episode whose only child is a GC (the Arabeske shape).
    test::TraceBuilder builder;
    builder.dispatchBegin(0).gc(msToNs(1), msToNs(400)).dispatchEnd(
        msToNs(401));
    const Session session = builder.buildSession(secToNs(1));
    const PatternSet set = PatternMiner(msToNs(100)).mine(session);
    ASSERT_EQ(set.patterns.size(), 1u);
    EXPECT_EQ(set.patterns[0].signature, "D");
    EXPECT_EQ(set.patterns[0].descendants, 0u);
}

TEST(PatternMinerTest, KeysAreStableHashesOfSignatures)
{
    const Session session = mixedSession({msToNs(10)});
    const PatternSet a = PatternMiner(msToNs(100)).mine(session);
    const PatternSet b = PatternMiner(msToNs(100)).mine(session);
    ASSERT_EQ(a.patterns.size(), b.patterns.size());
    for (std::size_t i = 0; i < a.patterns.size(); ++i)
        EXPECT_EQ(a.patterns[i].key, b.patterns[i].key);
}

TEST(PatternStatsTest, CdfMonotoneAndComplete)
{
    test::TraceBuilder builder;
    TimeNs now = 0;
    // 6 episodes of A, 3 of B, 1 of C.
    const struct
    {
        const char *cls;
        int n;
    } spec[] = {{"app.A", 6}, {"app.B", 3}, {"app.C", 1}};
    for (const auto &[cls, n] : spec) {
        for (int i = 0; i < n; ++i) {
            builder.listenerEpisode(now, now + msToNs(10), cls);
            now += msToNs(11);
        }
    }
    const Session session = builder.buildSession(now + secToNs(1));
    const PatternSet set = PatternMiner(msToNs(100)).mine(session);
    const auto cdf = patternCdf(set);

    ASSERT_EQ(cdf.size(), 4u); // origin + 3 patterns
    EXPECT_EQ(cdf.front(), (std::pair<double, double>{0.0, 0.0}));
    EXPECT_DOUBLE_EQ(cdf.back().first, 1.0);
    EXPECT_DOUBLE_EQ(cdf.back().second, 1.0);
    for (std::size_t i = 1; i < cdf.size(); ++i) {
        EXPECT_GE(cdf[i].first, cdf[i - 1].first);
        EXPECT_GE(cdf[i].second, cdf[i - 1].second);
    }
    // Most-populous-first: the first pattern covers 60%.
    EXPECT_NEAR(cdf[1].second, 0.6, 1e-9);
}

TEST(PatternStatsTest, CdfOfEmptySet)
{
    PatternSet empty;
    const auto cdf = patternCdf(empty);
    ASSERT_EQ(cdf.size(), 1u);
    EXPECT_EQ(cdf[0], (std::pair<double, double>{0.0, 0.0}));
}

TEST(PatternStatsTest, OccurrenceSharesSumToOne)
{
    const Session session = mixedSession(
        {msToNs(150), msToNs(20), msToNs(200), msToNs(30)});
    const PatternSet set = PatternMiner(msToNs(100)).mine(session);
    const OccurrenceShares shares = occurrenceShares(set);
    EXPECT_NEAR(shares.always + shares.sometimes + shares.once +
                    shares.never,
                1.0, 1e-9);
    EXPECT_EQ(shares.patternCount, set.patterns.size());
}

TEST(PatternMinerTest, InvalidThresholdPanics)
{
    EXPECT_THROW(PatternMiner(0), PanicError);
}

} // namespace
} // namespace lag::core
