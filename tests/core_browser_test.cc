/**
 * @file
 * Tests for the Pattern Browser model (paper §II.E).
 */

#include <gtest/gtest.h>

#include "util/logging.hh"

#include "core/browser.hh"
#include "trace_builder.hh"

namespace lag::core
{
namespace
{

/** 3 episodes of app.A (one perceptible), 2 of app.B (none). */
Session
browserSession()
{
    test::TraceBuilder builder;
    builder.listenerEpisode(0, msToNs(10), "app.A");
    builder.listenerEpisode(msToNs(20), msToNs(220), "app.A");
    builder.listenerEpisode(msToNs(230), msToNs(240), "app.A");
    builder.listenerEpisode(msToNs(250), msToNs(260), "app.B");
    builder.listenerEpisode(msToNs(270), msToNs(280), "app.B");
    return builder.buildSession(secToNs(1));
}

TEST(BrowserTest, AllPatternsVisibleByDefault)
{
    const Session session = browserSession();
    const PatternSet set = PatternMiner(msToNs(100)).mine(session);
    PatternBrowserModel browser(session, set);
    EXPECT_EQ(browser.visibleRows().size(), 2u);
    EXPECT_FALSE(browser.hasSelection());
}

TEST(BrowserTest, PerceptibleFilterElides)
{
    const Session session = browserSession();
    const PatternSet set = PatternMiner(msToNs(100)).mine(session);
    PatternBrowserModel browser(session, set);
    browser.setPerceptibleOnly(true);
    ASSERT_EQ(browser.visibleRows().size(), 1u);
    browser.selectRow(0);
    EXPECT_EQ(browser.selectedPattern().perceptibleCount, 1u);
    browser.setPerceptibleOnly(false);
    EXPECT_EQ(browser.visibleRows().size(), 2u);
}

TEST(BrowserTest, SelectionRevealsEpisodesInOrder)
{
    const Session session = browserSession();
    const PatternSet set = PatternMiner(msToNs(100)).mine(session);
    PatternBrowserModel browser(session, set);
    browser.selectRow(0); // app.A pattern (3 episodes)
    ASSERT_TRUE(browser.hasSelection());
    EXPECT_EQ(browser.selectedPattern().episodes.size(), 3u);
    // The first episode of the pattern is shown first (paper §II.E).
    EXPECT_EQ(browser.currentEpisodeIndex(), 0u);
    EXPECT_EQ(browser.currentEpisode().begin, 0);
}

TEST(BrowserTest, EpisodeNavigationClampsAtEnds)
{
    const Session session = browserSession();
    const PatternSet set = PatternMiner(msToNs(100)).mine(session);
    PatternBrowserModel browser(session, set);
    browser.selectRow(0);
    browser.prevEpisode(); // already at the start
    EXPECT_EQ(browser.currentEpisodeIndex(), 0u);
    browser.nextEpisode();
    EXPECT_EQ(browser.currentEpisodeIndex(), 1u);
    EXPECT_EQ(browser.currentEpisode().begin, msToNs(20));
    browser.nextEpisode();
    browser.nextEpisode(); // clamped at the last episode
    EXPECT_EQ(browser.currentEpisodeIndex(), 2u);
}

TEST(BrowserTest, FilterDropsSelectionWhenHidden)
{
    const Session session = browserSession();
    const PatternSet set = PatternMiner(msToNs(100)).mine(session);
    PatternBrowserModel browser(session, set);
    // Select the never-perceptible app.B pattern (row 1).
    browser.selectRow(1);
    ASSERT_TRUE(browser.hasSelection());
    browser.setPerceptibleOnly(true);
    EXPECT_FALSE(browser.hasSelection());
}

TEST(BrowserTest, OutOfRangeSelectionPanics)
{
    const Session session = browserSession();
    const PatternSet set = PatternMiner(msToNs(100)).mine(session);
    PatternBrowserModel browser(session, set);
    EXPECT_THROW(browser.selectRow(99), PanicError);
    EXPECT_THROW(browser.selectedPattern(), PanicError);
}

} // namespace
} // namespace lag::core
