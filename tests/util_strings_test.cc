/**
 * @file
 * Tests for the string helpers.
 */

#include <gtest/gtest.h>

#include "util/strings.hh"
#include "util/types.hh"

namespace lag
{
namespace
{

TEST(StringsTest, StartsWith)
{
    EXPECT_TRUE(startsWith("javax.swing.JPanel", "javax."));
    EXPECT_FALSE(startsWith("org.app.Foo", "javax."));
    EXPECT_TRUE(startsWith("abc", ""));
    EXPECT_FALSE(startsWith("ab", "abc"));
}

TEST(StringsTest, EndsWith)
{
    EXPECT_TRUE(endsWith("trace.lag", ".lag"));
    EXPECT_FALSE(endsWith("trace.lag", ".txt"));
    EXPECT_FALSE(endsWith("g", ".lag"));
}

TEST(StringsTest, SplitKeepsEmptyFields)
{
    const auto parts = split("a,,b", ',');
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[1], "");
    EXPECT_EQ(parts[2], "b");
}

TEST(StringsTest, SplitSingleField)
{
    const auto parts = split("abc", ',');
    ASSERT_EQ(parts.size(), 1u);
    EXPECT_EQ(parts[0], "abc");
}

TEST(StringsTest, JoinRoundTrip)
{
    EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
    EXPECT_EQ(join({}, ","), "");
    EXPECT_EQ(join({"solo"}, ","), "solo");
}

TEST(StringsTest, FormatDouble)
{
    EXPECT_EQ(formatDouble(3.14159, 2), "3.14");
    EXPECT_EQ(formatDouble(2.0, 0), "2");
    EXPECT_EQ(formatDouble(-1.5, 1), "-1.5");
}

TEST(StringsTest, FormatDurationPicksUnit)
{
    EXPECT_EQ(formatDurationNs(500), "500 ns");
    EXPECT_EQ(formatDurationNs(1500), "1.5 us");
    EXPECT_EQ(formatDurationNs(msToNs(100)), "100.0 ms");
    EXPECT_EQ(formatDurationNs(secToNs(2)), "2.00 s");
}

TEST(StringsTest, FormatPercent)
{
    EXPECT_EQ(formatPercent(0.5), "50.0%");
    EXPECT_EQ(formatPercent(0.123, 0), "12%");
}

TEST(StringsTest, FormatCountGroupsThousands)
{
    EXPECT_EQ(formatCount(0), "0");
    EXPECT_EQ(formatCount(999), "999");
    EXPECT_EQ(formatCount(1000), "1'000");
    EXPECT_EQ(formatCount(1241198), "1'241'198");
}

TEST(StringsTest, XmlEscape)
{
    EXPECT_EQ(xmlEscape("a<b>&\"c'"), "a&lt;b&gt;&amp;&quot;c&apos;");
    EXPECT_EQ(xmlEscape("plain"), "plain");
}

} // namespace
} // namespace lag
