/**
 * @file
 * Proves every lag-check rule live: each tree under
 * tests/check_fixtures/ seeds exactly one diagnostic (or none, for
 * the clean/suppression tree), and the test asserts the rule tag,
 * file, line, finding count and the exit-status contract — plus the
 * JSON report, the config-error path, and the real-tree self-check
 * (the actual repository must be clean under its own
 * ci/layers.conf).
 *
 * Binary and fixture paths arrive as compile definitions from
 * tests/CMakeLists.txt, mirroring lint_test.cc.
 */

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

namespace
{

struct CheckRun
{
    int exitCode = -1;
    std::string output;
};

CheckRun
runCheck(const std::string &args)
{
    const std::string command = std::string(LAG_CHECK_BIN) + " " +
                                args + " 2>&1";
    CheckRun run;
    std::FILE *pipe = popen(command.c_str(), "r");
    if (pipe == nullptr)
        return run;
    std::array<char, 4096> chunk{};
    std::size_t got = 0;
    while ((got = fread(chunk.data(), 1, chunk.size(), pipe)) > 0)
        run.output.append(chunk.data(), got);
    const int status = pclose(pipe);
    if (WIFEXITED(status))
        run.exitCode = WEXITSTATUS(status);
    return run;
}

/** Run lag_check rooted at fixture tree @p name over src/. */
CheckRun
checkFixture(const std::string &name,
             const std::string &extraArgs = "")
{
    return runCheck("--root " + std::string(LAG_CHECK_FIXTURES) +
                    "/" + name + " " + extraArgs + " src");
}

void
expectSingleFinding(const CheckRun &run, const char *rule,
                    const char *location)
{
    EXPECT_EQ(run.exitCode, 1) << run.output;
    EXPECT_NE(run.output.find(std::string("[") + rule + "]"),
              std::string::npos)
        << run.output;
    EXPECT_NE(run.output.find(location), std::string::npos)
        << run.output;
    EXPECT_NE(run.output.find("1 finding(s)"), std::string::npos)
        << run.output;
}

TEST(LagCheck, LayerCycleFires)
{
    const CheckRun run = checkFixture("layer_cycle");
    expectSingleFinding(run, "layer-cycle", "src/util/a.hh:3:");
    // The cycle names every member once.
    EXPECT_NE(run.output.find(
                  "cycle among: src/util/a.hh, src/util/b.hh"),
              std::string::npos)
        << run.output;
}

TEST(LagCheck, LayerViolationFires)
{
    const CheckRun run = checkFixture("layer_inversion");
    expectSingleFinding(run, "layer-violation",
                        "src/util/base.hh:3:");
    EXPECT_NE(run.output.find(
                  "'util' may not depend on layer 'engine'"),
              std::string::npos)
        << run.output;
}

TEST(LagCheck, LayerUnmappedFires)
{
    const CheckRun run = checkFixture("unmapped");
    expectSingleFinding(run, "layer-unmapped",
                        "src/engine/orphan.cc:1:");
}

TEST(LagCheck, UnusedIncludeFires)
{
    const CheckRun run = checkFixture("unused_include");
    expectSingleFinding(run, "unused-include",
                        "src/engine/main.cc:3:");
}

TEST(LagCheck, RankInversionDirectFires)
{
    const CheckRun run = checkFixture("rank_inversion");
    expectSingleFinding(run, "rank-inversion",
                        "src/engine/work.cc:15:");
    EXPECT_NE(run.output.find("LockRank::High = 100"),
              std::string::npos)
        << run.output;
    EXPECT_NE(run.output.find("LockRank::Low = 10"),
              std::string::npos)
        << run.output;
}

TEST(LagCheck, RankInversionThroughCallGraphFires)
{
    const CheckRun run = checkFixture("rank_inversion_call");
    expectSingleFinding(run, "rank-inversion",
                        "src/engine/caller.cc:22:");
    // The witness names the callee and the acquisition site.
    EXPECT_NE(run.output.find("call to 'touchHigh'"),
              std::string::npos)
        << run.output;
    EXPECT_NE(run.output.find("at src/engine/caller.cc:15"),
              std::string::npos)
        << run.output;
}

TEST(LagCheck, LockAcrossBlockingFires)
{
    const CheckRun run = checkFixture("lock_blocking");
    expectSingleFinding(run, "lock-across-blocking",
                        "src/engine/io_under_lock.cc:16:");
    EXPECT_NE(run.output.find("'write()' may block"),
              std::string::npos)
        << run.output;
}

TEST(LagCheck, GuardedByGapFires)
{
    const CheckRun run = checkFixture("guarded_gap");
    expectSingleFinding(run, "guarded-by-gap",
                        "src/engine/state.hh:20:");
    // Only value_: the annotated member and the pre-mutex member
    // stay silent.
    EXPECT_NE(run.output.find("member 'value_'"),
              std::string::npos)
        << run.output;
}

TEST(LagCheck, CleanTreeWithSuppressionExitsZero)
{
    // The clean tree contains a seeded inversion silenced with
    // `// lag-lint: allow(rank-inversion)` — the shared
    // suppression syntax must work for lag_check too.
    const CheckRun run = checkFixture("clean");
    EXPECT_EQ(run.exitCode, 0) << run.output;
    EXPECT_EQ(run.output.find("finding"), std::string::npos)
        << run.output;
}

TEST(LagCheck, ConfigCycleExitsTwo)
{
    const CheckRun run = checkFixture("bad_conf");
    EXPECT_EQ(run.exitCode, 2) << run.output;
    EXPECT_NE(run.output.find("layer dependency cycle"),
              std::string::npos)
        << run.output;
}

TEST(LagCheck, MissingConfExitsTwo)
{
    const CheckRun run = checkFixture(
        "clean", "--layers /no/such/layers.conf");
    EXPECT_EQ(run.exitCode, 2) << run.output;
}

TEST(LagCheck, JsonReportAndSummary)
{
    const std::string json =
        ::testing::TempDir() + "lag_check_report.json";
    const CheckRun run = checkFixture(
        "rank_inversion", "--summary --json " + json);
    EXPECT_EQ(run.exitCode, 1) << run.output;
    EXPECT_NE(
        run.output.find(
            "{\"tool\": \"lag-check\", \"findings\": 1, "
            "\"rank-inversion\": 1}"),
        std::string::npos)
        << run.output;

    std::ifstream in(json);
    ASSERT_TRUE(in.good());
    std::stringstream content;
    content << in.rdbuf();
    const std::string report = content.str();
    EXPECT_NE(report.find("\"tool\": \"lag-check\""),
              std::string::npos)
        << report;
    EXPECT_NE(report.find("\"rule\": \"rank-inversion\""),
              std::string::npos)
        << report;
    EXPECT_NE(report.find("\"file\": \"src/engine/work.cc\""),
              std::string::npos)
        << report;
    EXPECT_NE(report.find("\"line\": 15"), std::string::npos)
        << report;
    EXPECT_NE(report.find("\"total\": 1"), std::string::npos)
        << report;
    std::remove(json.c_str());
}

TEST(LagCheck, ListRulesNamesEveryRule)
{
    const CheckRun run = runCheck("--list-rules");
    EXPECT_EQ(run.exitCode, 0);
    for (const char *rule :
         {"layer-cycle", "layer-violation", "layer-unmapped",
          "include-unresolved", "unused-include", "rank-inversion",
          "lock-across-blocking", "guarded-by-gap"}) {
        EXPECT_NE(run.output.find(rule), std::string::npos)
            << "missing rule: " << rule;
    }
}

TEST(LagCheck, RealTreeIsClean)
{
    // The repository itself, under its own ci/layers.conf: the
    // acceptance bar for every heuristic in the tool.
    const CheckRun run = runCheck(
        "--root " + std::string(LAG_SOURCE_DIR) + " src tools");
    EXPECT_EQ(run.exitCode, 0) << run.output;
}

} // namespace
