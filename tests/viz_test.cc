/**
 * @file
 * Tests for the visualization substrate: SVG writer, charts and
 * episode sketches.
 */

#include <gtest/gtest.h>

#include <filesystem>

#include "trace_builder.hh"
#include "viz/charts.hh"
#include "viz/palette.hh"
#include "viz/sketch.hh"
#include "viz/svg.hh"

namespace lag::viz
{
namespace
{

using trace::IntervalKind;
using trace::TraceThreadState;

/** Count occurrences of a substring. */
std::size_t
countOf(const std::string &haystack, const std::string &needle)
{
    std::size_t count = 0;
    std::size_t pos = 0;
    while ((pos = haystack.find(needle, pos)) != std::string::npos) {
        ++count;
        pos += needle.size();
    }
    return count;
}

TEST(SvgTest, DocumentStructure)
{
    SvgDocument doc(200, 100);
    doc.rect(10, 10, 50, 20, "#ff0000");
    doc.circle(30, 30, 5, "#00ff00", "hover me");
    doc.text(5, 95, "label", 12);
    doc.line(0, 0, 200, 100, "#000000");
    doc.polyline({{0, 0}, {10, 10}, {20, 5}}, "#0000ff");
    const std::string svg = doc.finish();

    EXPECT_NE(svg.find("<svg xmlns"), std::string::npos);
    EXPECT_NE(svg.find("width=\"200.00\""), std::string::npos);
    EXPECT_NE(svg.find("<rect"), std::string::npos);
    EXPECT_NE(svg.find("<circle"), std::string::npos);
    EXPECT_NE(svg.find("<title>hover me</title>"), std::string::npos);
    EXPECT_NE(svg.find(">label</text>"), std::string::npos);
    EXPECT_NE(svg.find("<polyline"), std::string::npos);
    EXPECT_NE(svg.find("</svg>"), std::string::npos);
}

TEST(SvgTest, EscapesTooltipsAndText)
{
    SvgDocument doc(100, 100);
    doc.rect(0, 0, 10, 10, "#fff", "", "a<b & c");
    doc.text(0, 0, "x<y", 10);
    const std::string svg = doc.finish();
    EXPECT_NE(svg.find("a&lt;b &amp; c"), std::string::npos);
    EXPECT_NE(svg.find("x&lt;y"), std::string::npos);
    EXPECT_EQ(svg.find("a<b"), std::string::npos);
}

TEST(SvgTest, WritesFile)
{
    SvgDocument doc(50, 50);
    doc.rect(0, 0, 10, 10, "#123456");
    const std::string path = "viz_test_out.svg";
    doc.writeFile(path);
    EXPECT_TRUE(std::filesystem::exists(path));
    EXPECT_GT(std::filesystem::file_size(path), 100u);
    std::filesystem::remove(path);
}

TEST(PaletteTest, DistinctIntervalColors)
{
    std::set<std::string_view> colors;
    for (const auto type :
         {core::IntervalType::Dispatch, core::IntervalType::Listener,
          core::IntervalType::Paint, core::IntervalType::Native,
          core::IntervalType::Async, core::IntervalType::Gc}) {
        colors.insert(intervalColor(type));
    }
    EXPECT_EQ(colors.size(), 6u);
}

TEST(PaletteTest, SeriesColorsCycle)
{
    EXPECT_EQ(seriesColor(0), seriesColor(seriesColorCount()));
    EXPECT_NE(seriesColor(0), seriesColor(1));
}

TEST(StackedBarChartTest, RendersRowsAndLegend)
{
    StackedBarChart chart("My chart", "Episodes [%]", 100.0);
    chart.addLegend("Input", "#111111");
    chart.addLegend("Output", "#222222");
    chart.addRow(BarRow{"AppA",
                        {{60.0, "#111111"}, {40.0, "#222222"}}});
    chart.addRow(BarRow{"AppB",
                        {{10.0, "#111111"}, {90.0, "#222222"}}});
    const std::string svg = chart.render().finish();
    EXPECT_NE(svg.find("My chart"), std::string::npos);
    EXPECT_NE(svg.find("AppA"), std::string::npos);
    EXPECT_NE(svg.find("AppB"), std::string::npos);
    EXPECT_NE(svg.find("Input"), std::string::npos);
    EXPECT_NE(svg.find("Episodes [%]"), std::string::npos);
    // 2 legend swatches + 4 segments + background at least.
    EXPECT_GE(countOf(svg, "<rect"), 7u);
}

TEST(StackedBarChartTest, ZeroAndOverflowSegmentsSafe)
{
    StackedBarChart chart("Edge", "x", 100.0);
    chart.addRow(BarRow{"Row",
                        {{0.0, "#111111"},
                         {150.0, "#222222"},
                         {50.0, "#333333"}}});
    const std::string svg = chart.render().finish();
    // The 150% segment is clipped to the plot; the trailing segment
    // is dropped; nothing crashes.
    EXPECT_NE(svg.find("Row"), std::string::npos);
}

TEST(CdfChartTest, RendersSeries)
{
    CdfChart chart("CDF", "Patterns [%]", "Episodes [%]");
    CdfSeries series;
    series.label = "AppA";
    series.color = "#ff0000";
    series.points = {{0.0, 0.0}, {0.2, 0.8}, {1.0, 1.0}};
    chart.addSeries(series);
    const std::string svg = chart.render().finish();
    EXPECT_NE(svg.find("CDF"), std::string::npos);
    EXPECT_NE(svg.find("AppA"), std::string::npos);
    EXPECT_GE(countOf(svg, "<polyline"), 1u);
}

core::Session
sketchSession()
{
    test::TraceBuilder builder;
    builder.dispatchBegin(0)
        .intervalBegin(msToNs(1), IntervalKind::Paint,
                       "javax.swing.JFrame", "paint")
        .intervalBegin(msToNs(2), IntervalKind::Native,
                       "sun.java2d.loops.DrawLine", "DrawLine")
        .gc(msToNs(3), msToNs(40))
        .intervalEnd(msToNs(45), IntervalKind::Native)
        .intervalEnd(msToNs(48), IntervalKind::Paint)
        .dispatchEnd(msToNs(50));
    builder.sample(msToNs(1) + usToNs(500),
                   TraceThreadState::Runnable);
    builder.sample(msToNs(46), TraceThreadState::Runnable);
    return builder.buildSession(secToNs(1));
}

TEST(SketchTest, SvgContainsTreeAndSamples)
{
    const core::Session session = sketchSession();
    const SvgDocument doc =
        renderEpisodeSketch(session, session.episodes()[0]);
    const std::string svg = doc.finish();
    EXPECT_NE(svg.find("JFrame.paint"), std::string::npos);
    EXPECT_NE(svg.find("Native sun.java2d.loops.DrawLine.DrawLine"),
              std::string::npos);
    EXPECT_GE(countOf(svg, "<circle"), 2u) << "sample dots missing";
    // Stack tooltips include the frames.
    EXPECT_NE(svg.find("at java.lang.Thread.run"), std::string::npos);
    // Legend names all six types.
    EXPECT_NE(svg.find(">GC</text>"), std::string::npos);
}

TEST(SketchTest, AsciiShowsRowsPerDepth)
{
    const core::Session session = sketchSession();
    const std::string ascii =
        renderAsciiSketch(session, session.episodes()[0], 80);
    // Sample row + 4 tree rows (D, P, N, G) + header.
    EXPECT_NE(ascii.find('D'), std::string::npos);
    EXPECT_NE(ascii.find('P'), std::string::npos);
    EXPECT_NE(ascii.find('N'), std::string::npos);
    EXPECT_NE(ascii.find('G'), std::string::npos);
    EXPECT_NE(ascii.find('r'), std::string::npos);
    // Every rendered line fits the width.
    std::size_t pos = 0;
    std::size_t line = 0;
    while (pos < ascii.size()) {
        const std::size_t next = ascii.find('\n', pos);
        if (line > 0) { // header line may be longer
            EXPECT_LE(next - pos, 80u);
        }
        pos = next + 1;
        ++line;
    }
    EXPECT_GE(line, 5u);
}

TEST(SketchTest, CustomOptionsApplied)
{
    const core::Session session = sketchSession();
    SketchOptions options;
    options.width = 500;
    options.legend = false;
    options.title = "Custom title";
    const SvgDocument doc = renderEpisodeSketch(
        session, session.episodes()[0], options);
    EXPECT_EQ(doc.width(), 500);
    const std::string svg = doc.finish();
    EXPECT_NE(svg.find("Custom title"), std::string::npos);
    EXPECT_EQ(svg.find(">GC</text>"), std::string::npos);
}

} // namespace
} // namespace lag::viz
