/**
 * @file
 * Tests for the task graph and the sharded study driver: dependency
 * order, failure cascades, construction-time validation, and the
 * per-item stage chains the study pipeline relies on.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <utility>
#include <stdexcept>
#include <string>
#include <vector>

#include "engine/graph.hh"
#include "engine/pool.hh"
#include "engine/study_driver.hh"
#include "util/logging.hh"
#include "util/mutex.hh"

namespace lag::engine
{
namespace
{

TEST(EngineGraph, ChainRunsInOrder)
{
    ThreadPool pool(4);
    TaskGraph graph;
    std::vector<int> order;
    Mutex mutex(LockRank::Client, "test-order");
    const auto record = [&](int step) {
        MutexLock lock(mutex);
        order.push_back(step);
    };

    const TaskId a = graph.add([&] { record(1); });
    const TaskId b = graph.add([&] { record(2); }, {a});
    const TaskId c = graph.add([&] { record(3); }, {b});
    graph.run(pool);

    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(graph.state(a), TaskState::Done);
    EXPECT_EQ(graph.state(c), TaskState::Done);
}

TEST(EngineGraph, DiamondJoinWaitsForBothBranches)
{
    ThreadPool pool(4);
    for (int round = 0; round < 25; ++round) {
        TaskGraph graph;
        std::atomic<int> branches{0};
        std::atomic<int> seenAtJoin{-1};

        const TaskId top = graph.add([] {});
        const TaskId left = graph.add([&] { ++branches; }, {top});
        const TaskId right = graph.add([&] { ++branches; }, {top});
        graph.add([&] { seenAtJoin = branches.load(); },
                  {left, right});
        graph.run(pool);
        EXPECT_EQ(seenAtJoin.load(), 2);
    }
}

TEST(EngineGraph, IndependentChainsAllComplete)
{
    ThreadPool pool(3);
    TaskGraph graph;
    constexpr std::size_t kChains = 40;
    std::vector<int> progress(kChains, 0);
    for (std::size_t chain = 0; chain < kChains; ++chain) {
        TaskId prev{};
        for (int step = 0; step < 4; ++step) {
            std::vector<TaskId> deps;
            if (prev.valid())
                deps.push_back(prev);
            prev = graph.add(
                [&progress, chain, step] {
                    // In-order execution makes this race-free: only
                    // one task of a chain runs at a time.
                    EXPECT_EQ(progress[chain], step);
                    progress[chain] = step + 1;
                },
                deps);
        }
    }
    graph.run(pool);
    for (const int p : progress)
        EXPECT_EQ(p, 4);
}

TEST(EngineGraph, FailureSkipsTransitiveDependents)
{
    ThreadPool pool(2);
    TaskGraph graph;
    std::atomic<bool> siblingRan{false};
    std::atomic<bool> dependentRan{false};

    const TaskId bad =
        graph.add([] { throw std::runtime_error("boom"); });
    const TaskId child =
        graph.add([&] { dependentRan = true; }, {bad});
    const TaskId grandchild =
        graph.add([&] { dependentRan = true; }, {child});
    const TaskId sibling = graph.add([&] { siblingRan = true; });

    EXPECT_THROW(graph.run(pool), std::runtime_error);
    EXPECT_FALSE(dependentRan.load());
    EXPECT_TRUE(siblingRan.load());
    EXPECT_EQ(graph.state(bad), TaskState::Failed);
    EXPECT_EQ(graph.state(child), TaskState::Skipped);
    EXPECT_EQ(graph.state(grandchild), TaskState::Skipped);
    EXPECT_EQ(graph.state(sibling), TaskState::Done);
}

TEST(EngineGraph, AddValidatesDependencies)
{
    TaskGraph graph;
    // A dependency must name a task already in the graph.
    EXPECT_THROW(graph.add([] {}, {TaskId{0}}), PanicError);
    EXPECT_THROW(graph.add([] {}, {TaskId{}}), PanicError);
    EXPECT_THROW(graph.add(nullptr), PanicError);
}

TEST(EngineGraph, EmptyGraphRuns)
{
    ThreadPool pool(1);
    TaskGraph graph;
    graph.run(pool); // no-op, must not hang
    EXPECT_EQ(graph.size(), 0u);
}

TEST(EngineStudyDriver, StagesRunInOrderPerItem)
{
    ThreadPool pool(4);
    constexpr std::size_t kShards = 3;
    constexpr std::size_t kItems = 5;
    StudyDriver driver(kShards, kItems);
    EXPECT_EQ(driver.itemCount(), kShards * kItems);

    int stage_of[kShards][kItems] = {};
    driver.addStage("first", [&](std::size_t s, std::size_t i) {
        EXPECT_EQ(stage_of[s][i], 0);
        stage_of[s][i] = 1;
    });
    driver.addStage("second", [&](std::size_t s, std::size_t i) {
        EXPECT_EQ(stage_of[s][i], 1);
        stage_of[s][i] = 2;
    });
    driver.addStage("third", [&](std::size_t s, std::size_t i) {
        EXPECT_EQ(stage_of[s][i], 2);
        stage_of[s][i] = 3;
    });
    driver.run(pool);

    for (std::size_t s = 0; s < kShards; ++s)
        for (std::size_t i = 0; i < kItems; ++i)
            EXPECT_EQ(stage_of[s][i], 3);
}

TEST(EngineStudyDriver, RaggedGridCoversEveryItem)
{
    ThreadPool pool(2);
    StudyDriver driver(std::vector<std::size_t>{2, 0, 3});
    EXPECT_EQ(driver.itemCount(), 5u);

    Mutex mutex(LockRank::Client, "test-seen");
    std::vector<std::pair<std::size_t, std::size_t>> seen;
    driver.addStage("collect", [&](std::size_t s, std::size_t i) {
        MutexLock lock(mutex);
        seen.emplace_back(s, i);
    });
    driver.run(pool);

    std::sort(seen.begin(), seen.end());
    const std::vector<std::pair<std::size_t, std::size_t>> expected{
        {0, 0}, {0, 1}, {2, 0}, {2, 1}, {2, 2}};
    EXPECT_EQ(seen, expected);
}

TEST(EngineStudyDriver, StageFailureStopsThatItemOnly)
{
    ThreadPool pool(2);
    StudyDriver driver(1, 4);
    std::atomic<int> secondStageRuns{0};
    driver.addStage("first", [](std::size_t, std::size_t item) {
        if (item == 2)
            throw std::runtime_error("item 2 is bad");
    });
    driver.addStage("second", [&](std::size_t, std::size_t) {
        ++secondStageRuns;
    });
    EXPECT_THROW(driver.run(pool), std::runtime_error);
    EXPECT_EQ(secondStageRuns.load(), 3)
        << "only the failed item's later stages are skipped";
}

TEST(EngineParallelFor, CoversEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    constexpr std::size_t kCount = 777;
    std::vector<int> hits(kCount, 0);
    parallelFor(pool, kCount,
                [&](std::size_t i) { ++hits[i]; });
    for (const int h : hits)
        EXPECT_EQ(h, 1);
}

TEST(EngineParallelFor, ZeroCountIsANoOp)
{
    ThreadPool pool(1);
    parallelFor(pool, 0, [](std::size_t) { FAIL(); });
}

TEST(EngineParallelFor, PropagatesException)
{
    ThreadPool pool(2);
    EXPECT_THROW(parallelFor(pool, 10,
                             [](std::size_t i) {
                                 if (i == 5)
                                     throw std::runtime_error("bad");
                             }),
                 std::runtime_error);
}

} // namespace
} // namespace lag::engine
