/**
 * @file
 * Differential suite for the live-ingest pipeline: streaming every
 * example app's trace through TraceTailer + IngestPipeline must end
 * in a SessionAnalysis that serializes byte-identically to the
 * batch path, no matter how the bytes arrived (chunk sizes from one
 * byte to the whole file) or how wide the analysis pool is. Also
 * covers kill-and-resume (a fresh pipeline converges on the same
 * bytes) and the publish/quarantine bookkeeping.
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "app/study.hh"
#include "engine/ingest.hh"
#include "engine/pool.hh"
#include "engine/result_cache.hh"

namespace lag::engine
{
namespace
{

namespace fs = std::filesystem;

/** Scoped scratch directory: clean before and after the test. */
struct ScratchDir
{
    std::string path;

    explicit ScratchDir(std::string p) : path(std::move(p))
    {
        fs::remove_all(path);
        fs::create_directories(path);
    }

    ~ScratchDir() { fs::remove_all(path); }
};

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    return bytes;
}

/** The per-path terminal update captured from the publish hook. */
struct Published
{
    std::map<std::string, IngestUpdate> last;
    std::map<std::string, std::size_t> completeCount;

    void
    accept(const IngestUpdate &update)
    {
        last[update.path] = update;
        if (update.complete)
            ++completeCount[update.path];
    }
};

/** Study fixture shared by the differential cases: one quick
 * session per example app, traces materialized once. */
struct StudyFixture
{
    ScratchDir cache{"lagalyzer-cache-test-ingest"};
    app::StudyConfig config = app::StudyConfig::quickStudy(3);
    std::vector<std::vector<std::string>> tracePaths;
    std::vector<std::string> batchBytes; ///< reference per app

    StudyFixture()
    {
        config.sessionsPerApp = 1;
        config.cacheDir = cache.path;
        config.jobs = 4;
        app::Study study(config);
        tracePaths = study.ensureTraces();
        batchBytes.reserve(config.apps.size());
        for (std::size_t a = 0; a < config.apps.size(); ++a) {
            batchBytes.push_back(
                serializeSessionAnalysis(analyzeSession(
                    study.loadSession(a, 0),
                    config.perceptibleThreshold)));
        }
    }
};

StudyFixture &
fixture()
{
    static StudyFixture fixture;
    return fixture;
}

/**
 * Stream every app's trace into one IngestPipeline in @p chunk-byte
 * writes, cutting epochs at roughly @p epochs points mid-stream,
 * and assert the terminal update per app equals the batch bytes.
 */
void
runDifferential(std::size_t chunk, std::uint32_t jobs,
                std::size_t epochs)
{
    StudyFixture &fix = fixture();
    ASSERT_GE(fix.config.apps.size(), 14u)
        << "catalog shrank; the suite must cover every app model";

    const ScratchDir live("lagalyzer-ingest-live-" +
                          std::to_string(chunk) + "-" +
                          std::to_string(jobs));
    ThreadPool pool(jobs);
    Published published;
    IngestOptions options;
    options.perceptibleThreshold = fix.config.perceptibleThreshold;
    IngestPipeline pipeline(
        pool, options, [&published](const IngestUpdate &update) {
            published.accept(update);
        });

    struct Stream
    {
        std::string bytes;
        std::string dest;
        std::ofstream out;
        std::size_t offset = 0;
    };
    std::vector<Stream> streams(fix.config.apps.size());
    std::size_t totalBytes = 0;
    for (std::size_t a = 0; a < streams.size(); ++a) {
        streams[a].bytes = slurp(fix.tracePaths[a][0]);
        ASSERT_FALSE(streams[a].bytes.empty());
        streams[a].dest = live.path + "/app" + std::to_string(a) +
                          ".lag";
        streams[a].out.open(streams[a].dest,
                            std::ios::binary | std::ios::trunc);
        pipeline.addSource(streams[a].dest);
        totalBytes += streams[a].bytes.size();
    }

    // Write all sources forward in lockstep, cutting an epoch every
    // ~1/epochs of the total byte volume so epoch boundaries land at
    // arbitrary (usually mid-record) offsets in every file.
    std::size_t written = 0;
    std::size_t nextEpochAt = totalBytes / epochs + 1;
    bool sawPartialPublish = false;
    for (bool progressed = true; progressed;) {
        progressed = false;
        for (Stream &s : streams) {
            if (s.offset >= s.bytes.size())
                continue;
            const std::size_t n =
                std::min(chunk, s.bytes.size() - s.offset);
            s.out.write(s.bytes.data() + s.offset,
                        static_cast<std::streamsize>(n));
            s.offset += n;
            written += n;
            progressed = true;
        }
        if (written >= nextEpochAt && progressed) {
            for (Stream &s : streams)
                s.out.flush();
            pipeline.runEpoch();
            if (!published.last.empty() && !pipeline.allComplete())
                sawPartialPublish = true;
            nextEpochAt += totalBytes / epochs + 1;
        }
    }
    for (Stream &s : streams)
        s.out.close();

    // Drain: a bounded number of epochs must finish every source.
    for (int i = 0; i < 10 && !pipeline.allComplete(); ++i)
        pipeline.runEpoch();
    ASSERT_TRUE(pipeline.allComplete())
        << "chunk=" << chunk << " jobs=" << jobs;
    // Mid-stream epochs published partial sessions on the way
    // (unless a single epoch swallowed everything, which whole-file
    // chunks legitimately do).
    if (chunk < 4096) {
        EXPECT_TRUE(sawPartialPublish);
    }

    for (std::size_t a = 0; a < streams.size(); ++a) {
        const auto it = published.last.find(streams[a].dest);
        ASSERT_NE(it, published.last.end())
            << "no update for " << streams[a].dest;
        EXPECT_TRUE(it->second.complete);
        EXPECT_EQ(it->second.appName, fix.config.apps[a].name);
        EXPECT_EQ(serializeSessionAnalysis(it->second.analysis),
                  fix.batchBytes[a])
            << "streamed analysis diverges from batch for "
            << fix.config.apps[a].name << " at chunk=" << chunk
            << " jobs=" << jobs;
        EXPECT_EQ(published.completeCount[streams[a].dest], 1u)
            << "complete snapshot must publish exactly once";
    }

    // One more epoch publishes nothing: every source is complete
    // and already published.
    EXPECT_EQ(pipeline.runEpoch(), 0u);
    for (const IngestSourceStatus &status : pipeline.status()) {
        EXPECT_TRUE(status.complete);
        EXPECT_EQ(status.backlogBytes, 0u);
        EXPECT_TRUE(status.error.empty());
    }
}

TEST(IngestDifferential, OneByteChunks)
{
    for (const std::uint32_t jobs : {1u, 8u})
        runDifferential(1, jobs, 7);
}

TEST(IngestDifferential, OneRecordChunks)
{
    // 23 bytes is exactly one encoded event record, so the event
    // section advances record-by-record but every other section's
    // records straddle the write boundary.
    for (const std::uint32_t jobs : {1u, 8u})
        runDifferential(23, jobs, 7);
}

TEST(IngestDifferential, FourKiBChunks)
{
    for (const std::uint32_t jobs : {1u, 8u})
        runDifferential(4096, jobs, 7);
}

TEST(IngestDifferential, WholeFileChunks)
{
    for (const std::uint32_t jobs : {1u, 8u})
        runDifferential(std::size_t(-1) / 2, jobs, 1);
}

TEST(IngestDifferential, KillAndResumeConvergesToSameBytes)
{
    StudyFixture &fix = fixture();
    const ScratchDir live("lagalyzer-ingest-resume");
    const std::string bytes = slurp(fix.tracePaths[0][0]);
    const std::string dest = live.path + "/resume.lag";

    const std::size_t half = bytes.size() / 2;
    {
        std::ofstream out(dest, std::ios::binary | std::ios::trunc);
        out.write(bytes.data(),
                  static_cast<std::streamsize>(half));
    }

    ThreadPool pool(4);
    IngestOptions options;
    options.perceptibleThreshold = fix.config.perceptibleThreshold;

    // First pipeline sees the first half, then dies mid-follow.
    {
        Published published;
        IngestPipeline dying(
            pool, options,
            [&published](const IngestUpdate &update) {
                published.accept(update);
            });
        dying.addSource(dest);
        dying.runEpoch();
        EXPECT_FALSE(dying.allComplete());
    }

    {
        std::ofstream out(dest, std::ios::binary | std::ios::app);
        out.write(bytes.data() + half,
                  static_cast<std::streamsize>(bytes.size() - half));
    }

    // The replacement re-tails from byte zero and must converge on
    // exactly the batch analysis.
    Published published;
    IngestPipeline resumed(
        pool, options, [&published](const IngestUpdate &update) {
            published.accept(update);
        });
    resumed.addSource(dest);
    for (int i = 0; i < 10 && !resumed.allComplete(); ++i)
        resumed.runEpoch();
    ASSERT_TRUE(resumed.allComplete());
    const auto it = published.last.find(dest);
    ASSERT_NE(it, published.last.end());
    EXPECT_TRUE(it->second.complete);
    EXPECT_EQ(serializeSessionAnalysis(it->second.analysis),
              fix.batchBytes[0]);
}

TEST(IngestDifferential, CorruptSourceIsQuarantined)
{
    StudyFixture &fix = fixture();
    const ScratchDir live("lagalyzer-ingest-corrupt");
    std::string bytes = slurp(fix.tracePaths[0][0]);
    bytes[0] = 'X'; // bad magic: structurally corrupt
    const std::string badDest = live.path + "/bad.lag";
    {
        std::ofstream out(badDest,
                          std::ios::binary | std::ios::trunc);
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
    }
    const std::string goodBytes = slurp(fix.tracePaths[1][0]);
    const std::string goodDest = live.path + "/good.lag";
    {
        std::ofstream out(goodDest,
                          std::ios::binary | std::ios::trunc);
        out.write(goodBytes.data(),
                  static_cast<std::streamsize>(goodBytes.size()));
    }

    ThreadPool pool(2);
    IngestOptions options;
    options.perceptibleThreshold = fix.config.perceptibleThreshold;
    Published published;
    IngestPipeline pipeline(
        pool, options, [&published](const IngestUpdate &update) {
            published.accept(update);
        });
    pipeline.addSource(badDest);
    pipeline.addSource(goodDest);
    for (int i = 0; i < 10 && !pipeline.allComplete(); ++i)
        pipeline.runEpoch();

    // The corrupt source is quarantined with its error recorded;
    // the good one still completes and publishes the batch answer.
    ASSERT_TRUE(pipeline.allComplete());
    bool sawQuarantine = false;
    for (const IngestSourceStatus &status : pipeline.status()) {
        if (status.path == badDest) {
            EXPECT_FALSE(status.error.empty());
            EXPECT_FALSE(status.complete);
            sawQuarantine = true;
        } else {
            EXPECT_TRUE(status.error.empty());
            EXPECT_TRUE(status.complete);
        }
    }
    EXPECT_TRUE(sawQuarantine);
    EXPECT_EQ(published.last.count(badDest), 0u);
    const auto it = published.last.find(goodDest);
    ASSERT_NE(it, published.last.end());
    EXPECT_EQ(serializeSessionAnalysis(it->second.analysis),
              fix.batchBytes[1]);
}

TEST(IngestDifferential, DirectoryScanPicksUpNewFiles)
{
    StudyFixture &fix = fixture();
    const ScratchDir live("lagalyzer-ingest-scan");
    ThreadPool pool(2);
    IngestOptions options;
    options.perceptibleThreshold = fix.config.perceptibleThreshold;
    Published published;
    IngestPipeline pipeline(
        pool, options, [&published](const IngestUpdate &update) {
            published.accept(update);
        });

    EXPECT_EQ(pipeline.scanDirectory(live.path), 0u);
    EXPECT_FALSE(pipeline.allComplete()); // no sources yet

    const std::string bytes = slurp(fix.tracePaths[0][0]);
    const std::string dest = live.path + "/late.lag";
    {
        std::ofstream out(dest, std::ios::binary | std::ios::trunc);
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
    }
    // A non-trace file must be ignored by the scan.
    { std::ofstream noise(live.path + "/notes.txt"); }

    EXPECT_EQ(pipeline.scanDirectory(live.path), 1u);
    EXPECT_EQ(pipeline.scanDirectory(live.path), 0u); // idempotent
    for (int i = 0; i < 10 && !pipeline.allComplete(); ++i)
        pipeline.runEpoch();
    ASSERT_TRUE(pipeline.allComplete());
    EXPECT_EQ(serializeSessionAnalysis(
                  published.last.at(dest).analysis),
              fix.batchBytes[0]);
}

} // namespace
} // namespace lag::engine
