/**
 * @file
 * MetricsRegistry unit tests: histogram bucket-edge semantics
 * (zero, inclusive bounds, overflow), gauge high-water tracking,
 * dump determinism (sorted, stable) and JSON validity of the
 * --metrics-out format, plus the strict JSON checker itself.
 *
 * The registry is the process-wide singleton — instruments from
 * other tests in this binary coexist, so every test uses its own
 * `test.`-prefixed names and asserts on those, never on the whole
 * dump.
 */

#include <gtest/gtest.h>

#include <string>

#include "obs/json_check.hh"
#include "obs/metrics.hh"

namespace
{

using lag::obs::metrics;

TEST(ObsCounter, AccumulatesDeltas)
{
    auto &counter = metrics().counter("test.counter.acc");
    EXPECT_EQ(counter.value(), 0u);
    counter.add();
    counter.add(41);
    EXPECT_EQ(counter.value(), 42u);
    // Find-or-create returns the same instrument.
    EXPECT_EQ(&metrics().counter("test.counter.acc"), &counter);
    EXPECT_EQ(metrics().counter("test.counter.acc").value(), 42u);
}

TEST(ObsGauge, TracksLevelAndHighWater)
{
    auto &gauge = metrics().gauge("test.gauge.hw");
    gauge.set(5);
    gauge.set(3);
    EXPECT_EQ(gauge.value(), 3);
    EXPECT_EQ(gauge.max(), 5);
    gauge.updateMax(10); // raise the mark without moving the level
    EXPECT_EQ(gauge.value(), 3);
    EXPECT_EQ(gauge.max(), 10);
    gauge.updateMax(2); // never lowers
    EXPECT_EQ(gauge.max(), 10);
}

TEST(ObsHistogram, BucketEdges)
{
    auto &hist = metrics().histogram("test.hist.edges", {10, 100});
    hist.record(0);   // below everything: first bucket
    hist.record(10);  // == first bound: still first bucket (inclusive)
    hist.record(11);  // just past: second bucket
    hist.record(100); // == last bound: last real bucket, NOT overflow
    hist.record(101); // past every bound: overflow
    EXPECT_EQ(hist.bucketCount(0), 2u);
    EXPECT_EQ(hist.bucketCount(1), 2u);
    EXPECT_EQ(hist.bucketCount(2), 1u); // overflow slot
    EXPECT_EQ(hist.count(), 5u);
    EXPECT_EQ(hist.sum(), 0 + 10 + 11 + 100 + 101);
}

TEST(ObsHistogram, ReRegistrationReturnsSameInstrument)
{
    auto &first = metrics().histogram("test.hist.rereg", {1, 2, 3});
    auto &second = metrics().histogram("test.hist.rereg", {1, 2, 3});
    EXPECT_EQ(&first, &second);
}

TEST(ObsSnapshot, LookupsDefaultToZeroWhenAbsent)
{
    metrics().counter("test.snap.present").add(7);
    metrics().gauge("test.snap.gauge").set(9);
    const auto snap = metrics().snapshot();
    EXPECT_EQ(snap.counterValue("test.snap.present"), 7u);
    EXPECT_EQ(snap.counterValue("test.snap.no-such-name"), 0u);
    EXPECT_EQ(snap.gaugeMax("test.snap.gauge"), 9);
    EXPECT_EQ(snap.gaugeMax("test.snap.no-such-name"), 0);
}

TEST(ObsDump, TextIsSortedAndStable)
{
    metrics().counter("test.dump.zzz").add(1);
    metrics().counter("test.dump.aaa").add(2);
    const std::string text = metrics().dumpText();
    const auto a = text.find("test.dump.aaa");
    const auto z = text.find("test.dump.zzz");
    ASSERT_NE(a, std::string::npos);
    ASSERT_NE(z, std::string::npos);
    EXPECT_LT(a, z) << "dump must sort by name";
    // Deterministic: a second dump with no metric activity in
    // between is byte-identical.
    EXPECT_EQ(text, metrics().dumpText());
}

TEST(ObsDump, JsonIsWellFormed)
{
    // Exercise every instrument kind, then strict-check the dump.
    metrics().counter("test.dump.json.counter").add(3);
    metrics().gauge("test.dump.json.gauge").set(-4);
    metrics().histogram("test.dump.json.hist", {5, 50}).record(6);
    const std::string json = metrics().dumpJson();
    const auto result = lag::obs::checkJson(json);
    EXPECT_TRUE(result.ok) << "at byte " << result.errorOffset << ": "
                           << result.message << "\n"
                           << json;
    EXPECT_NE(json.find("\"test.dump.json.counter\": 3"),
              std::string::npos)
        << json;
}

TEST(ObsSummary, NamesNonzeroCounters)
{
    metrics().counter("test.summary.hits").add(12);
    const std::string line = metrics().summaryLine();
    EXPECT_NE(line.find("test.summary.hits=12"), std::string::npos)
        << line;
}

TEST(JsonCheck, AcceptsWellFormedValues)
{
    for (const char *text :
         {"{}", "[]", "null", "-12.5e3", "\"esc \\\" \\\\ \\u0041\"",
          "{\"a\": [1, 2.5, true, null, \"s\\n\"], \"b\": {}}"}) {
        EXPECT_TRUE(lag::obs::checkJson(text).ok) << text;
    }
}

TEST(JsonCheck, RejectsMalformedValues)
{
    for (const char *text :
         {"", "{", "[1 2]", "{\"a\":}", "{\"a\" 1}", "nope",
          "{} trailing", "\"unterminated", "{\"a\":1,}"}) {
        EXPECT_FALSE(lag::obs::checkJson(text).ok) << text;
    }
}

TEST(JsonCheck, ChromeShapeRequiresTraceEventsArray)
{
    EXPECT_TRUE(lag::obs::checkChromeTrace(
                    "{\"traceEvents\": [{\"ph\": \"X\"}]}")
                    .ok);
    // Well-formed JSON but not a Chrome trace.
    EXPECT_FALSE(lag::obs::checkChromeTrace("[1, 2]").ok);
    EXPECT_FALSE(
        lag::obs::checkChromeTrace("{\"traceEvents\": 3}").ok);
    EXPECT_FALSE(lag::obs::checkChromeTrace("{\"events\": []}").ok);
}

} // namespace
