/**
 * @file
 * Adversarial decode tests: every truncation, every single-bit
 * flip, random garbage and forged section counts must surface as a
 * trace::TraceError — never a crash, a hang or a huge allocation.
 *
 * The bit-flip and truncation sweeps rely on the container format:
 * the whole payload is checksummed and the checksum is verified
 * before any section is parsed, so damage anywhere in the file is
 * caught up front. Forged counts additionally exercise the
 * plausibility guards that run before any count-sized allocation
 * (a forged count can carry a forged checksum).
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <random>
#include <string>

#include "trace/io.hh"
#include "trace_builder.hh"
#include "util/hash.hh"

namespace lag::trace
{
namespace
{

/** A small but fully featured trace: several episode shapes, GC,
 * native work and call-stack samples. */
Trace
sampleTrace()
{
    test::TraceBuilder builder;
    const ThreadId worker = builder.addThread("worker");
    builder.listenerEpisode(msToNs(10), msToNs(60), "app.Editor");
    builder.dispatchBegin(msToNs(100));
    builder.intervalBegin(msToNs(101), IntervalKind::Paint,
                          "app.Canvas", "paint");
    builder.intervalBegin(msToNs(110), IntervalKind::Native,
                          "app.Canvas", "blit");
    builder.gc(msToNs(115), msToNs(125));
    builder.intervalEnd(msToNs(140), IntervalKind::Native);
    builder.intervalEnd(msToNs(150), IntervalKind::Paint);
    builder.dispatchEnd(msToNs(160));
    builder.sample(msToNs(30), TraceThreadState::Runnable);
    builder.sample(msToNs(120), TraceThreadState::Blocked);
    builder.listenerEpisode(msToNs(200), msToNs(420), "app.Search");
    builder.dispatchBegin(msToNs(500), worker);
    builder.dispatchEnd(msToNs(510), worker);
    return builder.build(msToNs(600));
}

/** File offsets of the outer container (see io.cc). */
constexpr std::size_t kChecksumOffset = 12;
constexpr std::size_t kPayloadOffset = 20;

/** Rewrite the container checksum to match the (edited) payload,
 * so damage behind it reaches the section parsers. */
void
resealChecksum(std::string &file)
{
    ASSERT_GE(file.size(), kPayloadOffset);
    Fnv1aHasher hasher;
    hasher.addBytes(file.data() + kPayloadOffset,
                    file.size() - kPayloadOffset);
    const std::uint64_t digest = hasher.digest();
    std::memcpy(file.data() + kChecksumOffset, &digest,
                sizeof(digest));
}

TEST(TraceFuzz, EveryTruncationThrows)
{
    const std::string bytes = serializeTrace(sampleTrace());
    ASSERT_GT(bytes.size(), 100u);
    for (std::size_t len = 0; len < bytes.size(); ++len) {
        EXPECT_THROW(deserializeTrace(bytes.substr(0, len)),
                     TraceError)
            << "prefix of " << len << " bytes decoded";
    }
}

TEST(TraceFuzz, EverySingleBitFlipThrows)
{
    const std::string bytes = serializeTrace(sampleTrace());
    for (std::size_t pos = 0; pos < bytes.size(); ++pos) {
        for (int bit = 0; bit < 8; ++bit) {
            std::string bad = bytes;
            bad[pos] = static_cast<char>(bad[pos] ^ (1 << bit));
            EXPECT_THROW(deserializeTrace(bad), TraceError)
                << "flip at byte " << pos << " bit " << bit
                << " decoded";
        }
    }
}

TEST(TraceFuzz, RandomGarbageThrows)
{
    std::mt19937_64 rng(0x1a6a1721);
    std::uniform_int_distribution<int> byte(0, 255);
    std::uniform_int_distribution<std::size_t> length(0, 4096);
    for (int round = 0; round < 200; ++round) {
        std::string junk(length(rng), '\0');
        for (char &c : junk)
            c = static_cast<char>(byte(rng));
        EXPECT_THROW(deserializeTrace(junk), TraceError)
            << "garbage round " << round << " decoded";
    }
}

TEST(TraceFuzz, ResealedPayloadDamageStillThrows)
{
    // Flip payload bytes AND reseal the checksum, so the section
    // parsers (not the checksum) must reject the damage; any
    // accidental valid decode of a corrupt record would be caught
    // by the cross-checks against the section header.
    const std::string bytes = serializeTrace(sampleTrace());
    std::mt19937_64 rng(0x5eed);
    std::uniform_int_distribution<std::size_t> pos(
        kPayloadOffset, bytes.size() - 1);
    std::uniform_int_distribution<int> bit(0, 7);
    int rejected = 0;
    for (int round = 0; round < 500; ++round) {
        std::string bad = bytes;
        const std::size_t at = pos(rng);
        bad[at] = static_cast<char>(bad[at] ^ (1 << bit(rng)));
        resealChecksum(bad);
        try {
            const Trace decoded = deserializeTrace(bad);
            // A flip in a value field (a time, a symbol id) can
            // legitimately decode; it must still be structurally
            // complete.
            EXPECT_EQ(decoded.events.size(),
                      sampleTrace().events.size());
        } catch (const TraceError &) {
            ++rejected;
        }
    }
    // The majority of flips hit structure (counts, types, string
    // lengths) and must have been rejected.
    EXPECT_GT(rejected, 0);
}

TEST(TraceFuzz, ForgedCountsAreRejectedBeforeAllocation)
{
    const std::string bytes = serializeTrace(sampleTrace());

    // Section-count fields inside the payload's section header.
    const std::size_t eventCountOffset = kPayloadOffset + 8;
    const std::size_t sampleCountOffset = kPayloadOffset + 16;

    for (const std::size_t offset :
         {eventCountOffset, sampleCountOffset}) {
        std::string bad = bytes;
        const std::uint64_t huge = 1ull << 60;
        std::memcpy(bad.data() + offset, &huge, sizeof(huge));
        resealChecksum(bad);
        try {
            deserializeTrace(bad);
            FAIL() << "forged count at offset " << offset
                   << " decoded";
        } catch (const TraceError &e) {
            EXPECT_NE(std::string(e.what()).find("implausible"),
                      std::string::npos)
                << "unexpected error: " << e.what();
        }
    }
}

TEST(TraceFuzz, RecordErrorsCarryOffsetAndIndex)
{
    // Build two traces identical up to the event section — same
    // threads, same interned strings — one without events.  The
    // shorter file's length is then exactly the event section's
    // file offset in the longer one.
    const Trace full = sampleTrace();
    Trace empty = full;
    empty.events.clear();
    empty.samples.clear();
    const std::string bytes = serializeTrace(full);
    const std::string prefix = serializeTrace(empty);
    ASSERT_LT(prefix.size(), bytes.size());

    // Corrupt the kind byte (offset 13 in the 23-byte event wire
    // record) of event 0 and reseal: the decoder must name the
    // record and its payload offset.
    const std::size_t eventOffset = prefix.size();
    std::string bad = bytes;
    bad[eventOffset + 13] = '\x7f';
    resealChecksum(bad);
    try {
        deserializeTrace(bad);
        FAIL() << "corrupt event decoded";
    } catch (const TraceError &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("event 0"), std::string::npos)
            << "missing record index: " << what;
        EXPECT_NE(what.find("payload offset"), std::string::npos)
            << "missing payload offset: " << what;
    }
}

} // namespace
} // namespace lag::trace
