/**
 * @file
 * Tests for incremental cross-session aggregation from the result
 * cache: aggregateFromCache must be byte-identical to the direct
 * decode-and-mine path at any worker count on any mix of cache hits
 * and misses, a fully warm cache must never touch the trace decoder,
 * old-version entries must read as misses, hostile app names must
 * stay inside the analysis directory, and eviction must keep honest
 * books when removal or stat fails.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "app/study.hh"
#include "core/aggregate.hh"
#include "engine/incremental.hh"
#include "engine/pool.hh"
#include "engine/result_cache.hh"
#include "obs/metrics.hh"

namespace lag::engine
{
namespace
{

namespace fs = std::filesystem;

/** Scoped cache directory: clean before and after the test. */
struct CacheDir
{
    std::string path;

    explicit CacheDir(std::string p) : path(std::move(p))
    {
        fs::remove_all(path);
    }

    ~CacheDir() { fs::remove_all(path); }
};

/** A tiny quick study (first 2 apps) with a private cache dir. */
app::StudyConfig
tinyStudy(const std::string &cache_dir)
{
    app::StudyConfig config = app::StudyConfig::quickStudy(5);
    config.apps.resize(2);
    config.cacheDir = cache_dir;
    return config;
}

/** A hand-built analysis with a populated pattern summary. */
SessionAnalysis
sampleAnalysis()
{
    SessionAnalysis a;
    a.overview.tracedCount = 11;
    a.cdf = {{0.0, 0.0}, {1.0, 1.0}};
    a.patternKeys = {7ull};
    a.episodeDurations = {msToNs(3)};
    a.patternSummary.perceptibleThreshold = msToNs(100);
    core::PatternSummary p;
    p.signature = "L app.A.run";
    p.key = 7;
    p.episodeCount = 1;
    p.minLag = msToNs(3);
    p.maxLag = msToNs(3);
    p.totalLag = msToNs(3);
    a.patternSummary.patterns.push_back(std::move(p));
    return a;
}

/** Canonical dump of a merged set for equality comparison (every
 * field is integral or a string, so text equality is bit equality). */
std::string
dumpMerged(const core::MergedPatternSet &set)
{
    std::ostringstream out;
    out << set.sessionCount << '|' << set.perceptibleThreshold
        << '\n';
    for (const core::MergedPattern &p : set.patterns) {
        out << p.signature << '|' << p.key << '|';
        for (const std::size_t s : p.sessions)
            out << s << ',';
        out << '|';
        for (const std::size_t c : p.episodeCounts)
            out << c << ',';
        out << '|' << p.totalEpisodes << '|' << p.totalPerceptible
            << '|' << p.minLag << '|' << p.maxLag << '|' << p.totalLag
            << '|' << static_cast<int>(p.occurrence) << '|'
            << p.descendants << '|' << p.depth << '\n';
    }
    return out.str();
}

TEST(EngineIncremental, MatchesDirectAnalysisAcrossCacheStates)
{
    const CacheDir dir("lagalyzer-cache-test-incr-equiv");
    app::Study study(tinyStudy(dir.path));
    const app::StudyConfig &config = study.config();
    const DurationNs threshold = config.perceptibleThreshold;
    study.ensureTraces();

    std::vector<std::string> names;
    for (const auto &app : config.apps)
        names.push_back(app.name);
    const std::size_t total = names.size() * config.sessionsPerApp;

    // Reference: decode every session and run the direct path.
    std::vector<std::vector<std::string>> reference_grid(
        names.size());
    std::vector<std::string> reference_merged;
    for (std::size_t a = 0; a < names.size(); ++a) {
        std::vector<core::Session> sessions;
        for (std::uint32_t s = 0; s < config.sessionsPerApp; ++s)
            sessions.push_back(study.loadSession(a, s));
        for (const core::Session &session : sessions) {
            reference_grid[a].push_back(serializeSessionAnalysis(
                analyzeSession(session, threshold)));
        }
        reference_merged.push_back(dumpMerged(
            core::minePatternsAcrossSessions(sessions, threshold)));
    }

    const ResultCache cache(config.cacheDir, config.fingerprint());
    const SessionLoader loader =
        [&study](std::size_t a, std::uint32_t s) {
            return study.loadSession(a, s);
        };

    const auto check = [&](std::uint32_t jobs,
                           const AggregateOptions &options,
                           std::size_t expect_cached,
                           std::size_t expect_recomputed,
                           const char *label) {
        ThreadPool pool(jobs);
        const StudyAggregate aggregate =
            aggregateFromCache(cache, names, config.sessionsPerApp,
                               threshold, pool, loader, options);
        EXPECT_EQ(aggregate.sessionsFromCache, expect_cached)
            << label;
        EXPECT_EQ(aggregate.sessionsRecomputed, expect_recomputed)
            << label;
        ASSERT_EQ(aggregate.grid.size(), names.size()) << label;
        ASSERT_EQ(aggregate.merged.size(), names.size()) << label;
        for (std::size_t a = 0; a < names.size(); ++a) {
            ASSERT_EQ(aggregate.grid[a].size(),
                      config.sessionsPerApp)
                << label;
            for (std::size_t s = 0; s < aggregate.grid[a].size();
                 ++s) {
                EXPECT_EQ(
                    serializeSessionAnalysis(aggregate.grid[a][s]),
                    reference_grid[a][s])
                    << label << ": app " << a << " session " << s;
            }
            EXPECT_EQ(dumpMerged(aggregate.merged[a]),
                      reference_merged[a])
                << label << ": app " << a;
        }
    };

    // Cold cache, serial: every session recomputed (and stored).
    check(1, AggregateOptions{}, 0, total, "cold/serial");
    // Warm cache, parallel: every session answered from disk.
    check(8, AggregateOptions{}, total, 0, "warm/parallel");
    // Partially evicted: exactly the missing entry is recomputed.
    ASSERT_TRUE(fs::remove(cache.entryPath(names[1], 2)));
    check(8, AggregateOptions{}, total - 1, 1, "partial/parallel");
    // The escape hatch recomputes everything, same bytes.
    AggregateOptions off;
    off.incremental = false;
    check(4, off, 0, total, "no-incremental");
}

TEST(EngineIncremental, WarmCacheNeverTouchesTheDecoder)
{
    const CacheDir dir("lagalyzer-cache-test-incr-decoder");
    app::StudyConfig config = tinyStudy(dir.path);
    config.apps.resize(1);
    app::Study study(config);
    study.ensureTraces();

    std::vector<std::string> names{config.apps[0].name};
    const ResultCache cache(config.cacheDir, config.fingerprint());
    const SessionLoader loader =
        [&study](std::size_t a, std::uint32_t s) {
            return study.loadSession(a, s);
        };

    ThreadPool pool(4);
    // Cold pass populates every entry.
    aggregateFromCache(cache, names, config.sessionsPerApp,
                       config.perceptibleThreshold, pool, loader);

    const obs::MetricsSnapshot before = obs::metrics().snapshot();
    const StudyAggregate warm = aggregateFromCache(
        cache, names, config.sessionsPerApp,
        config.perceptibleThreshold, pool, loader);
    const obs::MetricsSnapshot after = obs::metrics().snapshot();

    EXPECT_EQ(warm.sessionsFromCache, config.sessionsPerApp);
    EXPECT_EQ(warm.sessionsRecomputed, 0u);
    EXPECT_EQ(after.counterValue("trace.decode.bytes"),
              before.counterValue("trace.decode.bytes"))
        << "warm aggregation must not decode any trace";
    EXPECT_EQ(after.counterValue("trace.decode.count"),
              before.counterValue("trace.decode.count"));
}

TEST(EngineIncremental, OldVersionEntryReadsAsMiss)
{
    const CacheDir dir("lagalyzer-cache-test-incr-version");
    const ResultCache cache(dir.path, "fp");
    cache.store("App", 0, sampleAnalysis());
    const std::string path = cache.entryPath("App", 0);
    ASSERT_TRUE(cache.load("App", 0).has_value());

    // Rewrite the version field (little-endian u32 after the 8-byte
    // magic) to v1. The checksum only covers the payload, so the
    // file is otherwise intact — the version check alone must turn
    // it into a miss, not an error.
    std::string bytes;
    {
        std::ifstream in(path, std::ios::binary);
        std::ostringstream buffer;
        buffer << in.rdbuf();
        bytes = buffer.str();
    }
    ASSERT_GT(bytes.size(), 12u);
    bytes[8] = 1;
    bytes[9] = 0;
    bytes[10] = 0;
    bytes[11] = 0;
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
    }
    EXPECT_FALSE(cache.load("App", 0).has_value());
}

TEST(EngineIncremental, HostileAppNamesStayInTheAnalysisDir)
{
    const CacheDir dir("lagalyzer-cache-test-incr-hostile");
    const ResultCache cache(dir.path, "fp");

    const std::string hostile = "../../etc/pwn";
    const std::string path = cache.entryPath(hostile, 0);
    const std::string filename = fs::path(path).filename().string();
    // The whole name (not just a suffix) must live under analysis/:
    // no separators or dot-dot segments survive sanitization.
    EXPECT_EQ(fs::path(path).parent_path(),
              fs::path(dir.path) / "analysis");
    EXPECT_EQ(filename.find('/'), std::string::npos);
    EXPECT_EQ(filename.find(".."), std::string::npos);

    // Hostile names still round-trip...
    cache.store(hostile, 0, sampleAnalysis());
    EXPECT_TRUE(fs::exists(path));
    EXPECT_TRUE(cache.load(hostile, 0).has_value());

    // ...and two names with the same sanitized prefix cannot
    // collide: the raw name feeds the content hash.
    EXPECT_NE(cache.entryPath("a/b", 0), cache.entryPath("a.b", 0));
    cache.store("a/b", 0, sampleAnalysis());
    cache.store("a.b", 0, sampleAnalysis());
    EXPECT_TRUE(cache.load("a/b", 0).has_value());
    EXPECT_TRUE(cache.load("a.b", 0).has_value());

    // An empty name degrades to a readable placeholder.
    const std::string empty_name =
        fs::path(cache.entryPath("", 3)).filename().string();
    EXPECT_EQ(empty_name.rfind("app_s3_g", 0), 0u) << empty_name;
}

TEST(EngineIncremental, EvictBooksFailedRemovalsAsKept)
{
    const CacheDir dir("lagalyzer-cache-test-incr-rmfail");
    const ResultCache cache(dir.path, "fp");
    for (std::uint32_t s = 0; s < 3; ++s)
        cache.store("App", s, sampleAnalysis());
    // A stale-generation entry that also refuses to go.
    const ResultCache stale(dir.path, "fp-old");
    stale.store("App", 0, sampleAnalysis());

    const auto entry_bytes = static_cast<std::uint64_t>(
        fs::file_size(cache.entryPath("App", 0)));

    // Budget for one entry, but every unlink fails: nothing may be
    // booked as removed and every byte must stay on the books.
    CacheEvictionPolicy policy;
    policy.maxBytes = entry_bytes;
    const CacheEvictionResult result = cache.evict(
        policy, [](const fs::path &) { return false; });

    EXPECT_EQ(result.removedFiles, 0u);
    EXPECT_EQ(result.removedBytes, 0u);
    EXPECT_EQ(result.keptFiles, 4u);
    EXPECT_EQ(result.keptBytes, 4 * entry_bytes);
    for (std::uint32_t s = 0; s < 3; ++s)
        EXPECT_TRUE(fs::exists(cache.entryPath("App", s)));
    EXPECT_TRUE(fs::exists(stale.entryPath("App", 0)));

    // A working remover under the same budget leaves one entry.
    const CacheEvictionResult cleaned = cache.evict(policy);
    EXPECT_EQ(cleaned.removedFiles, 3u);
    EXPECT_EQ(cleaned.keptFiles, 1u);
    EXPECT_EQ(cleaned.keptBytes, entry_bytes);
}

TEST(EngineIncremental, EvictKeepsEntriesItCannotStat)
{
    const CacheDir dir("lagalyzer-cache-test-incr-statfail");
    const ResultCache cache(dir.path, "fp");
    cache.store("App", 0, sampleAnalysis());

    // A self-referential symlink with a live-generation name: every
    // stat on it fails with ELOOP. Before the fix a failed stat left
    // an epoch mtime, which any age budget read as "ancient" and
    // evicted; the entry must instead be kept and warned about.
    const std::string loop_name =
        fs::path(cache.entryPath("Loop", 7)).filename().string();
    const fs::path loop =
        fs::path(dir.path) / "analysis" / loop_name;
    fs::create_symlink(loop_name, loop);
    ASSERT_TRUE(fs::is_symlink(fs::symlink_status(loop)));

    CacheEvictionPolicy policy;
    policy.maxAgeSeconds = 3600;
    const CacheEvictionResult result = cache.evict(policy);

    EXPECT_EQ(result.removedFiles, 0u);
    EXPECT_EQ(result.keptFiles, 2u);
    EXPECT_TRUE(fs::is_symlink(fs::symlink_status(loop)))
        << "unstattable entry must survive eviction";
    EXPECT_TRUE(fs::exists(cache.entryPath("App", 0)));
    EXPECT_TRUE(cache.load("App", 0).has_value());
}

} // namespace
} // namespace lag::engine
