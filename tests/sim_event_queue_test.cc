/**
 * @file
 * Tests for the discrete-event kernel: ordering, priorities,
 * cancellation and determinism.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"
#include "util/logging.hh"
#include "util/random.hh"

namespace lag::sim
{
namespace
{

TEST(EventQueueTest, FiresInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });
    q.runUntil(100);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 100);
}

TEST(EventQueueTest, SameTimeFifoWithinPriority)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        q.schedule(10, [&order, i] { order.push_back(i); });
    q.runUntil(10);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, PriorityBreaksTimeTies)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(10, [&] { order.push_back(2); }, EventPriority::Normal);
    q.schedule(10, [&] { order.push_back(3); }, EventPriority::Low);
    q.schedule(10, [&] { order.push_back(1); }, EventPriority::High);
    q.runUntil(10);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, RunUntilLeavesLaterEventsPending)
{
    EventQueue q;
    int fired = 0;
    q.schedule(10, [&] { ++fired; });
    q.schedule(50, [&] { ++fired; });
    EXPECT_EQ(q.runUntil(20), 1u);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(q.now(), 20);
    EXPECT_EQ(q.pending(), 1u);
    q.runUntil(50);
    EXPECT_EQ(fired, 2);
}

TEST(EventQueueTest, EventAtHorizonFires)
{
    EventQueue q;
    bool fired = false;
    q.schedule(20, [&] { fired = true; });
    q.runUntil(20);
    EXPECT_TRUE(fired);
}

TEST(EventQueueTest, CancelPreventsFiring)
{
    EventQueue q;
    bool fired = false;
    const EventId id = q.schedule(10, [&] { fired = true; });
    EXPECT_TRUE(q.cancel(id));
    EXPECT_FALSE(q.cancel(id)) << "double cancel must report false";
    q.runUntil(100);
    EXPECT_FALSE(fired);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, CancelUnknownIdIsNoop)
{
    EventQueue q;
    EXPECT_FALSE(q.cancel(12345));
}

TEST(EventQueueTest, EventsScheduledDuringRunFire)
{
    EventQueue q;
    std::vector<TimeNs> times;
    q.schedule(10, [&] {
        times.push_back(q.now());
        q.scheduleAfter(5, [&] { times.push_back(q.now()); });
    });
    q.runUntil(100);
    EXPECT_EQ(times, (std::vector<TimeNs>{10, 15}));
}

TEST(EventQueueTest, ZeroDelaySelfScheduleAdvances)
{
    EventQueue q;
    int count = 0;
    std::function<void()> tick = [&] {
        if (++count < 5)
            q.scheduleAfter(1, tick);
    };
    q.schedule(0, tick);
    q.runUntil(10);
    EXPECT_EQ(count, 5);
    EXPECT_EQ(q.servicedCount(), 5u);
}

TEST(EventQueueTest, StepServicesExactlyOne)
{
    EventQueue q;
    int fired = 0;
    q.schedule(5, [&] { ++fired; });
    q.schedule(6, [&] { ++fired; });
    EXPECT_TRUE(q.step());
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(q.now(), 5);
    EXPECT_TRUE(q.step());
    EXPECT_FALSE(q.step());
}

TEST(EventQueueTest, PastSchedulingPanics)
{
    EventQueue q;
    q.schedule(10, [] {});
    q.runUntil(10);
    EXPECT_THROW(q.schedule(5, [] {}), PanicError);
    EXPECT_THROW(q.scheduleAfter(-1, [] {}), PanicError);
}

TEST(EventQueueTest, NullCallbackPanics)
{
    EventQueue q;
    EXPECT_THROW(q.schedule(1, EventFn{}), PanicError);
}

TEST(EventQueueTest, TimeNeverMovesBackwards)
{
    EventQueue q;
    q.schedule(50, [] {});
    q.runUntil(100);
    EXPECT_EQ(q.now(), 100);
    q.runUntil(80); // horizon before now: nothing fires, no rewind
    EXPECT_EQ(q.now(), 100);
}

/** Property sweep: random schedules fire in nondecreasing time
 * order and every non-cancelled event fires exactly once. */
class RandomScheduleTest : public ::testing::TestWithParam<int>
{
};

TEST_P(RandomScheduleTest, OrderAndCompleteness)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()));
    EventQueue q;
    const int n = 500;
    std::vector<int> fire_count(n, 0);
    std::vector<EventId> ids;
    TimeNs last_seen = -1;
    for (int i = 0; i < n; ++i) {
        const TimeNs when = rng.uniformInt(0, 10000);
        ids.push_back(q.schedule(when, [&, i] {
            ASSERT_GE(q.now(), last_seen);
            last_seen = q.now();
            ++fire_count[static_cast<std::size_t>(i)];
        }));
    }
    // Cancel a random third.
    std::vector<bool> cancelled(n, false);
    for (int i = 0; i < n; ++i) {
        if (rng.chance(0.33)) {
            q.cancel(ids[static_cast<std::size_t>(i)]);
            cancelled[static_cast<std::size_t>(i)] = true;
        }
    }
    q.runUntil(10000);
    for (int i = 0; i < n; ++i) {
        EXPECT_EQ(fire_count[static_cast<std::size_t>(i)],
                  cancelled[static_cast<std::size_t>(i)] ? 0 : 1);
    }
    EXPECT_TRUE(q.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomScheduleTest,
                         ::testing::Range(1, 9));

} // namespace
} // namespace lag::sim
