/**
 * @file
 * Tests for the generational heap model and GC trigger policy.
 */

#include <gtest/gtest.h>

#include "jvm/heap.hh"

namespace lag::jvm
{
namespace
{

HeapConfig
smallConfig()
{
    HeapConfig config;
    config.youngCapacityBytes = 1000;
    config.promoteFraction = 0.1;
    config.oldCapacityBytes = 400;
    config.oldSurvivorFraction = 0.5;
    return config;
}

TEST(HeapTest, MinorTriggerAtCapacity)
{
    Heap heap(smallConfig(), 1);
    heap.allocate(999);
    EXPECT_FALSE(heap.needsMinor());
    heap.allocate(1);
    EXPECT_TRUE(heap.needsMinor());
}

TEST(HeapTest, MinorCollectionPromotes)
{
    Heap heap(smallConfig(), 1);
    heap.allocate(1000);
    heap.finishCollection(GcKind::Minor);
    EXPECT_EQ(heap.youngUsed(), 0u);
    EXPECT_EQ(heap.oldUsed(), 100u);
    EXPECT_EQ(heap.minorCount(), 1u);
    EXPECT_EQ(heap.totalAllocated(), 1000u);
}

TEST(HeapTest, MajorTriggerWhenOldFills)
{
    Heap heap(smallConfig(), 1);
    for (int i = 0; i < 4; ++i) {
        heap.allocate(1000);
        heap.finishCollection(GcKind::Minor);
    }
    EXPECT_TRUE(heap.needsMajor()); // 4 x 100 promoted = 400 = cap
}

TEST(HeapTest, MajorCollectionShrinksOld)
{
    Heap heap(smallConfig(), 1);
    for (int i = 0; i < 4; ++i) {
        heap.allocate(1000);
        heap.finishCollection(GcKind::Minor);
    }
    heap.finishCollection(GcKind::Major);
    EXPECT_EQ(heap.oldUsed(), 200u);
    EXPECT_FALSE(heap.needsMajor());
    EXPECT_EQ(heap.majorCount(), 1u);
}

TEST(HeapTest, PauseDrawsRespectClamps)
{
    HeapConfig config = smallConfig();
    config.minorPauseMin = msToNs(5);
    config.minorPauseMax = msToNs(20);
    config.majorPauseMin = msToNs(100);
    config.majorPauseMax = msToNs(300);
    Heap heap(config, 42);
    for (int i = 0; i < 1000; ++i) {
        const DurationNs minor = heap.drawPause(GcKind::Minor);
        ASSERT_GE(minor, msToNs(5));
        ASSERT_LE(minor, msToNs(20));
        const DurationNs major = heap.drawPause(GcKind::Major);
        ASSERT_GE(major, msToNs(100));
        ASSERT_LE(major, msToNs(300));
    }
}

TEST(HeapTest, MajorPausesLongerThanMinor)
{
    Heap heap(HeapConfig{}, 7);
    DurationNs minor_total = 0;
    DurationNs major_total = 0;
    for (int i = 0; i < 200; ++i) {
        minor_total += heap.drawPause(GcKind::Minor);
        major_total += heap.drawPause(GcKind::Major);
    }
    EXPECT_GT(major_total, minor_total * 5);
}

TEST(HeapTest, DeterministicPausesPerSeed)
{
    Heap a(HeapConfig{}, 99);
    Heap b(HeapConfig{}, 99);
    for (int i = 0; i < 100; ++i)
        ASSERT_EQ(a.drawPause(GcKind::Minor), b.drawPause(GcKind::Minor));
}

TEST(HeapTest, GcKindNames)
{
    EXPECT_STREQ(gcKindName(GcKind::Minor), "minor");
    EXPECT_STREQ(gcKindName(GcKind::Major), "major");
}

} // namespace
} // namespace lag::jvm
