/**
 * @file
 * Property tests for the simulated JVM: across randomized workloads
 * and seeds, the hook stream must maintain the invariants LagAlyzer
 * depends on (paper §II.A): proper nesting per thread, balanced
 * begin/end pairs, non-overlapping stop-the-world collections, and
 * monotone time.
 */

#include <gtest/gtest.h>

#include <vector>

#include "jvm/vm.hh"
#include "jvm_test_util.hh"
#include "util/random.hh"

namespace lag::jvm
{
namespace
{

using test::HookRecord;
using test::RecordingListener;

/** Random activity tree with listener/paint/native/plain nodes. */
ActivityNode
randomTree(Rng &rng, int depth)
{
    ActivityNode node;
    const double pick = rng.nextDouble();
    if (pick < 0.3)
        node.kind = ActivityKind::Listener;
    else if (pick < 0.55)
        node.kind = ActivityKind::Paint;
    else if (pick < 0.7)
        node.kind = ActivityKind::Native;
    else
        node.kind = ActivityKind::Plain;
    node.frame = Frame{"app.C" + std::to_string(rng.uniformInt(0, 9)),
                       "m" + std::to_string(rng.uniformInt(0, 4))};
    node.selfCost = rng.uniformInt(usToNs(10), usToNs(800));
    node.allocBytes = static_cast<std::uint64_t>(
        rng.uniformInt(0, 64 << 10));
    if (rng.chance(0.05))
        node.sleepNs = rng.uniformInt(usToNs(100), msToNs(5));
    if (depth > 0) {
        const int kids = static_cast<int>(rng.uniformInt(0, 3));
        for (int i = 0; i < kids; ++i)
            node.children.push_back(randomTree(rng, depth - 1));
    }
    return node;
}

class VmPropertyTest : public ::testing::TestWithParam<int>
{
};

TEST_P(VmPropertyTest, HookStreamInvariants)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919);
    JvmConfig config;
    config.seed = static_cast<std::uint64_t>(GetParam());
    config.heap.youngCapacityBytes = 4 << 20; // GCs happen
    config.samplePeriod = msToNs(1);
    RecordingListener listener;
    Jvm vm(config, listener);
    vm.createEventDispatchThread();
    vm.start();

    // Post a random mix of events across the first 200 ms.
    for (int i = 0; i < 60; ++i) {
        const TimeNs when = rng.uniformInt(1, msToNs(200));
        const bool background = rng.chance(0.3);
        auto tree = std::make_shared<const ActivityNode>(
            randomTree(rng, 3));
        vm.eventQueue().schedule(when, [&vm, tree, background] {
            GuiEvent event;
            event.handler = tree;
            event.postedByBackground = background;
            vm.postGuiEvent(event);
        });
    }
    vm.run(secToNs(5));

    // --- Invariants over the hook stream ----------------------------
    TimeNs last = 0;
    int interval_depth = 0;
    int dispatch_open = 0;
    int gc_open = 0;
    std::uint64_t dispatches = 0;
    for (const auto &record : listener.records) {
        ASSERT_GE(record.time, last) << "time went backwards";
        last = record.time;
        switch (record.kind) {
          case HookRecord::Kind::DispatchBegin:
            ++dispatch_open;
            ++dispatches;
            ASSERT_EQ(dispatch_open, 1) << "episodes overlap";
            ASSERT_EQ(interval_depth, 0)
                << "episode started inside an interval";
            break;
          case HookRecord::Kind::DispatchEnd:
            --dispatch_open;
            ASSERT_GE(dispatch_open, 0);
            ASSERT_EQ(interval_depth, 0)
                << "episode ended with open intervals";
            break;
          case HookRecord::Kind::IntervalBegin:
            ASSERT_EQ(dispatch_open, 1)
                << "interval outside an episode on the EDT";
            ++interval_depth;
            break;
          case HookRecord::Kind::IntervalEnd:
            --interval_depth;
            ASSERT_GE(interval_depth, 0) << "unbalanced interval end";
            break;
          case HookRecord::Kind::GcBegin:
            ++gc_open;
            ASSERT_EQ(gc_open, 1) << "collections overlap";
            break;
          case HookRecord::Kind::GcEnd:
            --gc_open;
            ASSERT_GE(gc_open, 0);
            break;
          case HookRecord::Kind::Sample:
            break;
        }
    }
    EXPECT_EQ(dispatch_open, 0) << "episode still open at the end";
    EXPECT_EQ(gc_open, 0) << "collection still open at the end";
    EXPECT_EQ(dispatches, 60u) << "every posted event dispatched";
}

TEST_P(VmPropertyTest, SamplesNeverInsideCollections)
{
    JvmConfig config;
    config.seed = static_cast<std::uint64_t>(GetParam()) ^ 0xabcd;
    config.heap.youngCapacityBytes = 2 << 20;
    config.samplePeriod = usToNs(500);
    RecordingListener listener;
    Jvm vm(config, listener);
    vm.createEventDispatchThread();
    vm.start();
    Rng rng(config.seed);
    for (int i = 0; i < 30; ++i) {
        vm.eventQueue().schedule(
            rng.uniformInt(1, msToNs(100)), [&vm] {
                ActivityBuilder handler(ActivityKind::Listener,
                                        "app.H", "act");
                handler.cost(msToNs(5));
                handler.alloc(1 << 20);
                GuiEvent event;
                event.handler = std::move(handler).buildShared();
                vm.postGuiEvent(event);
            });
    }
    vm.run(secToNs(3));
    ASSERT_GT(vm.stats().minorGcs, 0u);

    bool in_gc = false;
    for (const auto &record : listener.records) {
        if (record.kind == HookRecord::Kind::GcBegin)
            in_gc = true;
        else if (record.kind == HookRecord::Kind::GcEnd)
            in_gc = false;
        else if (record.kind == HookRecord::Kind::Sample) {
            ASSERT_FALSE(in_gc) << "sample during a collection";
        }
    }
}

TEST_P(VmPropertyTest, CpuConservationOnSingleCore)
{
    // On one core with no sleeps/GC, the finish time of a batch of
    // work equals the total demand regardless of slicing.
    JvmConfig config;
    config.cores = 1;
    config.seed = static_cast<std::uint64_t>(GetParam());
    config.heap.youngCapacityBytes = 1ull << 40; // no GC
    RecordingListener listener;
    Jvm vm(config, listener);
    Rng rng(config.seed ^ 0x5555);
    DurationNs total = 0;
    const int threads = 3;
    for (int t = 0; t < threads; ++t) {
        const DurationNs cost = rng.uniformInt(msToNs(5), msToNs(40));
        total += cost;
        ActivityBuilder work(ActivityKind::Plain, "bg.W", "run");
        work.cost(cost);
        std::deque<ProgramStep> steps;
        steps.push_back(ProgramStep::runActivity(
            std::move(work).buildShared()));
        vm.createThread("w-" + std::to_string(t), false,
                        std::make_shared<test::ScriptedProgram>(
                            std::move(steps)));
    }
    vm.start();
    vm.run(total - 1);
    // Just before the total demand, someone must still be live.
    bool any_live = false;
    for (const auto &thread : vm.threads())
        any_live |= thread->isLive();
    EXPECT_TRUE(any_live);
    vm.run(total + msToNs(1));
    for (const auto &thread : vm.threads()) {
        EXPECT_EQ(thread->state(), ThreadState::Terminated)
            << thread->name();
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VmPropertyTest,
                         ::testing::Range(1, 11));

} // namespace
} // namespace lag::jvm
