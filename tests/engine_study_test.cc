/**
 * @file
 * End-to-end tests of the parallel study pipeline: parallel output
 * is byte-identical to serial, the result cache round-trips and
 * rejects damage, truncated traces are regenerated, and manifest
 * writes never leave a torn file behind.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "app/study.hh"
#include "engine/result_cache.hh"
#include "trace/io.hh"

namespace lag::engine
{
namespace
{

namespace fs = std::filesystem;

std::string
readFileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in) << "cannot open " << path;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

/** A tiny quick study (first 3 apps) with a private cache dir. */
app::StudyConfig
testStudy(const std::string &cache_dir, std::uint32_t jobs)
{
    app::StudyConfig config = app::StudyConfig::quickStudy(5);
    config.apps.resize(3);
    config.cacheDir = cache_dir;
    config.jobs = jobs;
    return config;
}

/** Scoped cache directory: clean before and after the test. */
struct CacheDir
{
    std::string path;

    explicit CacheDir(std::string p) : path(std::move(p))
    {
        fs::remove_all(path);
    }

    ~CacheDir() { fs::remove_all(path); }
};

/** A hand-built analysis with every field populated. */
SessionAnalysis
sampleAnalysis()
{
    SessionAnalysis a;
    a.overview.tracedCount = 321;
    a.overview.perceptibleCount = 17;
    a.triggers.all.input = 0.25;
    a.triggers.all.output = 0.5;
    a.triggers.all.async = 0.125;
    a.triggers.all.unspecified = 0.125;
    a.triggers.all.episodeCount = 321;
    a.triggers.perceptible.input = 0.75;
    a.triggers.perceptible.episodeCount = 17;
    a.location.all.appFraction = 0.4;
    a.location.all.libraryFraction = 0.3;
    a.location.all.gcFraction = 0.2;
    a.location.all.nativeFraction = 0.1;
    a.location.all.sampleCount = 9999;
    a.concurrency.meanRunnableAll = 1.5;
    a.concurrency.samplesAll = 4242;
    a.states.all.blocked = 0.125;
    a.states.all.runnable = 0.875;
    a.states.all.sampleCount = 777;
    a.occurrence.always = 0.3;
    a.occurrence.sometimes = 0.4;
    a.occurrence.once = 0.2;
    a.occurrence.never = 0.1;
    a.occurrence.patternCount = 55;
    a.cdf = {{0.0, 0.0}, {0.5, 0.8}, {1.0, 1.0}};
    a.patternKeys = {0xdeadbeefull, 42ull, 7ull};
    a.episodeDurations = {msToNs(1), msToNs(250), usToNs(300)};
    return a;
}

TEST(EngineStudy, ParallelOutputMatchesSerialByteForByte)
{
    const CacheDir serialDir("lagalyzer-cache-test-serial");
    const CacheDir parallelDir("lagalyzer-cache-test-parallel");

    app::Study serial(testStudy(serialDir.path, 1));
    app::Study parallel(testStudy(parallelDir.path, 8));

    const auto serialPaths = serial.ensureTraces();
    const auto parallelPaths = parallel.ensureTraces();
    ASSERT_EQ(serialPaths.size(), parallelPaths.size());

    const DurationNs threshold =
        serial.config().perceptibleThreshold;
    for (std::size_t a = 0; a < serialPaths.size(); ++a) {
        ASSERT_EQ(serialPaths[a].size(), parallelPaths[a].size());
        for (std::size_t s = 0; s < serialPaths[a].size(); ++s) {
            EXPECT_EQ(readFileBytes(serialPaths[a][s]),
                      readFileBytes(parallelPaths[a][s]))
                << "trace bytes diverge at app " << a << " session "
                << s;
        }
    }

    // The decoded sessions analyze to bit-identical results too.
    const auto serialApps = serial.loadAll();
    const auto parallelApps = parallel.loadAll();
    ASSERT_EQ(serialApps.size(), parallelApps.size());
    for (std::size_t a = 0; a < serialApps.size(); ++a) {
        ASSERT_EQ(serialApps[a].sessions.size(),
                  parallelApps[a].sessions.size());
        for (std::size_t s = 0; s < serialApps[a].sessions.size();
             ++s) {
            EXPECT_EQ(serializeSessionAnalysis(analyzeSession(
                          serialApps[a].sessions[s], threshold)),
                      serializeSessionAnalysis(analyzeSession(
                          parallelApps[a].sessions[s], threshold)))
                << "analysis diverges at app " << a << " session "
                << s;
        }
    }
}

TEST(EngineStudy, SessionAnalysisSerializationRoundTrips)
{
    const SessionAnalysis original = sampleAnalysis();
    const std::string bytes = serializeSessionAnalysis(original);
    const SessionAnalysis decoded =
        deserializeSessionAnalysis(bytes);
    // Bit-exact round trip: re-serialization is byte-identical.
    EXPECT_EQ(serializeSessionAnalysis(decoded), bytes);
    EXPECT_EQ(decoded.overview.tracedCount,
              original.overview.tracedCount);
    EXPECT_EQ(decoded.cdf, original.cdf);
    EXPECT_EQ(decoded.patternKeys, original.patternKeys);
    EXPECT_EQ(decoded.episodeDurations, original.episodeDurations);
}

TEST(EngineStudy, ResultCacheRoundTrips)
{
    const CacheDir dir("lagalyzer-cache-test-rescache");
    const ResultCache cache(dir.path, "fp-1");

    EXPECT_FALSE(cache.load("App", 0).has_value()) << "cold miss";

    const SessionAnalysis original = sampleAnalysis();
    cache.store("App", 0, original);
    const auto loaded = cache.load("App", 0);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(serializeSessionAnalysis(*loaded),
              serializeSessionAnalysis(original));

    // Other sessions and other fingerprints still miss.
    EXPECT_FALSE(cache.load("App", 1).has_value());
    const ResultCache other(dir.path, "fp-2");
    EXPECT_FALSE(other.load("App", 0).has_value());
}

TEST(EngineStudy, DamagedCacheEntryReadsAsMiss)
{
    const CacheDir dir("lagalyzer-cache-test-damage");
    const ResultCache cache(dir.path, "fp");
    cache.store("App", 3, sampleAnalysis());
    const std::string path = cache.entryPath("App", 3);
    ASSERT_TRUE(fs::exists(path));

    // Truncation: half the file.
    const std::string bytes = readFileBytes(path);
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size() / 2));
    }
    EXPECT_FALSE(cache.load("App", 3).has_value());

    // Corruption: flip one payload byte (checksum must catch it).
    {
        std::string bad = bytes;
        bad[bad.size() - 1] =
            static_cast<char>(bad[bad.size() - 1] ^ 0x5a);
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out.write(bad.data(),
                  static_cast<std::streamsize>(bad.size()));
    }
    EXPECT_FALSE(cache.load("App", 3).has_value());

    // Intact bytes restored: hit again.
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
    }
    EXPECT_TRUE(cache.load("App", 3).has_value());
}

TEST(EngineStudy, EvictDropsStaleFingerprintEntries)
{
    const CacheDir dir("lagalyzer-cache-test-evict-stale");
    const ResultCache oldGen(dir.path, "fp-old");
    oldGen.store("App", 0, sampleAnalysis());
    oldGen.store("App", 1, sampleAnalysis());
    const ResultCache newGen(dir.path, "fp-new");
    newGen.store("App", 0, sampleAnalysis());

    // A non-entry file in the directory is not the cache's to
    // delete.
    {
        std::ofstream out(dir.path + "/analysis/notes.txt");
        out << "keep me";
    }

    // Unlimited policy: only the stale generation goes.
    const CacheEvictionResult result =
        newGen.evict(CacheEvictionPolicy{});
    EXPECT_EQ(result.removedFiles, 2u);
    EXPECT_EQ(result.keptFiles, 1u);
    EXPECT_FALSE(fs::exists(oldGen.entryPath("App", 0)));
    EXPECT_FALSE(fs::exists(oldGen.entryPath("App", 1)));
    EXPECT_TRUE(fs::exists(newGen.entryPath("App", 0)));
    EXPECT_TRUE(fs::exists(dir.path + "/analysis/notes.txt"));
    EXPECT_TRUE(newGen.load("App", 0).has_value());
}

TEST(EngineStudy, EvictEnforcesByteAndAgeBudgets)
{
    const CacheDir dir("lagalyzer-cache-test-evict-budget");
    const ResultCache cache(dir.path, "fp");
    for (std::uint32_t s = 0; s < 3; ++s)
        cache.store("App", s, sampleAnalysis());

    // Backdate the entries so age ordering is unambiguous even on
    // coarse filesystem timestamps: session 0 oldest.
    const auto now = fs::file_time_type::clock::now();
    using std::chrono::hours;
    fs::last_write_time(cache.entryPath("App", 0), now - hours(3));
    fs::last_write_time(cache.entryPath("App", 1), now - hours(2));
    fs::last_write_time(cache.entryPath("App", 2), now - hours(1));
    const auto entryBytes = static_cast<std::uint64_t>(
        fs::file_size(cache.entryPath("App", 0)));

    // Byte budget for two entries: the oldest one goes.
    CacheEvictionPolicy policy;
    policy.maxBytes = 2 * entryBytes + entryBytes / 2;
    CacheEvictionResult result = cache.evict(policy);
    EXPECT_EQ(result.removedFiles, 1u);
    EXPECT_EQ(result.keptFiles, 2u);
    EXPECT_EQ(result.keptBytes, 2 * entryBytes);
    EXPECT_FALSE(fs::exists(cache.entryPath("App", 0)));
    EXPECT_TRUE(fs::exists(cache.entryPath("App", 1)));
    EXPECT_TRUE(fs::exists(cache.entryPath("App", 2)));

    // Age limit of 90 minutes: only the freshest entry survives.
    policy = CacheEvictionPolicy{};
    policy.maxAgeSeconds = 90 * 60;
    result = cache.evict(policy);
    EXPECT_EQ(result.removedFiles, 1u);
    EXPECT_EQ(result.keptFiles, 1u);
    EXPECT_FALSE(fs::exists(cache.entryPath("App", 1)));
    EXPECT_TRUE(fs::exists(cache.entryPath("App", 2)));
    EXPECT_TRUE(cache.load("App", 2).has_value());
}

TEST(EngineStudy, TruncatedTraceIsResimulated)
{
    const CacheDir dir("lagalyzer-cache-test-truncated");
    app::StudyConfig config = testStudy(dir.path, 2);
    config.apps.resize(1);
    app::Study study(config);

    const auto paths = study.ensureTraces();
    const std::string &victim = paths[0][1];
    const std::string original = readFileBytes(victim);

    // Simulate a crash mid-write of a non-atomic writer.
    {
        std::ofstream out(victim,
                          std::ios::binary | std::ios::trunc);
        out.write(original.data(),
                  static_cast<std::streamsize>(original.size() / 3));
    }
    EXPECT_THROW(trace::readTraceFile(victim), trace::TraceError);

    // loadSession detects the damage and regenerates the session;
    // the rewritten file is byte-identical to the original (the
    // simulation is a pure function of the config and seed).
    const core::Session session = study.loadSession(0, 1);
    EXPECT_FALSE(session.episodes().empty());
    EXPECT_EQ(readFileBytes(victim), original);
}

TEST(EngineStudy, ManifestRewriteLeavesNoTempFile)
{
    const CacheDir dir("lagalyzer-cache-test-manifest");
    app::StudyConfig config = testStudy(dir.path, 2);
    config.apps.resize(1);

    app::Study study(config);
    study.ensureTraces();
    EXPECT_TRUE(fs::exists(dir.path + "/manifest"));
    EXPECT_FALSE(fs::exists(dir.path + "/manifest.tmp"));

    // A changed configuration invalidates the cache; the manifest
    // is rewritten atomically and stale traces are cleared.
    config.perceptibleThreshold = msToNs(200);
    app::Study changed(config);
    const auto paths = changed.ensureTraces();
    EXPECT_TRUE(fs::exists(dir.path + "/manifest"));
    EXPECT_FALSE(fs::exists(dir.path + "/manifest.tmp"));
    EXPECT_TRUE(fs::exists(paths[0][0]));

    std::ifstream manifest(dir.path + "/manifest");
    std::string stored;
    std::getline(manifest, stored);
    EXPECT_EQ(stored, config.fingerprint());
}

} // namespace
} // namespace lag::engine
