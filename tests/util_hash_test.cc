/**
 * @file
 * Tests for the stable FNV-1a hashing.
 */

#include <gtest/gtest.h>

#include "util/hash.hh"

namespace lag
{
namespace
{

TEST(HashTest, KnownFnv1aValues)
{
    // Published FNV-1a 64-bit test vectors.
    EXPECT_EQ(fnv1a(""), 0xcbf29ce484222325ULL);
    EXPECT_EQ(fnv1a("a"), 0xaf63dc4c8601ec8cULL);
    EXPECT_EQ(fnv1a("foobar"), 0x85944171f73967e8ULL);
}

TEST(HashTest, IncrementalMatchesOneShot)
{
    Fnv1aHasher h;
    h.addBytes("foo", 3);
    h.addBytes("bar", 3);
    EXPECT_EQ(h.digest(), fnv1a("foobar"));
}

TEST(HashTest, AddStringSeparatesFields)
{
    // ("ab", "c") and ("a", "bc") must differ: addString appends a
    // separator byte.
    Fnv1aHasher h1;
    h1.addString("ab");
    h1.addString("c");
    Fnv1aHasher h2;
    h2.addString("a");
    h2.addString("bc");
    EXPECT_NE(h1.digest(), h2.digest());
}

TEST(HashTest, AddValueIsOrderSensitive)
{
    Fnv1aHasher h1;
    h1.addValue<std::uint32_t>(1);
    h1.addValue<std::uint32_t>(2);
    Fnv1aHasher h2;
    h2.addValue<std::uint32_t>(2);
    h2.addValue<std::uint32_t>(1);
    EXPECT_NE(h1.digest(), h2.digest());
}

TEST(HashTest, StableAcrossRuns)
{
    // The pattern keys and cache keys depend on this exact value
    // never changing.
    EXPECT_EQ(fnv1a("LagAlyzer"), 0x7c79b209367a9126ULL);
}

} // namespace
} // namespace lag
