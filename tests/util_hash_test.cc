/**
 * @file
 * Tests for the stable FNV-1a hashing.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "util/hash.hh"

namespace lag
{
namespace
{

/** The textbook byte-at-a-time FNV-1a loop, as the reference for
 * the word-at-a-time addBytes fast path. */
std::uint64_t
naiveFnv1a(const unsigned char *bytes, std::size_t size)
{
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    for (std::size_t i = 0; i < size; ++i) {
        hash ^= bytes[i]; // lag-lint: allow(byte-hash-loop)
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

TEST(HashTest, KnownFnv1aValues)
{
    // Published FNV-1a 64-bit test vectors.
    EXPECT_EQ(fnv1a(""), 0xcbf29ce484222325ULL);
    EXPECT_EQ(fnv1a("a"), 0xaf63dc4c8601ec8cULL);
    EXPECT_EQ(fnv1a("foobar"), 0x85944171f73967e8ULL);
}

TEST(HashTest, IncrementalMatchesOneShot)
{
    Fnv1aHasher h;
    h.addBytes("foo", 3);
    h.addBytes("bar", 3);
    EXPECT_EQ(h.digest(), fnv1a("foobar"));
}

TEST(HashTest, AddStringSeparatesFields)
{
    // ("ab", "c") and ("a", "bc") must differ: addString appends a
    // separator byte.
    Fnv1aHasher h1;
    h1.addString("ab");
    h1.addString("c");
    Fnv1aHasher h2;
    h2.addString("a");
    h2.addString("bc");
    EXPECT_NE(h1.digest(), h2.digest());
}

TEST(HashTest, AddValueIsOrderSensitive)
{
    Fnv1aHasher h1;
    h1.addValue<std::uint32_t>(1);
    h1.addValue<std::uint32_t>(2);
    Fnv1aHasher h2;
    h2.addValue<std::uint32_t>(2);
    h2.addValue<std::uint32_t>(1);
    EXPECT_NE(h1.digest(), h2.digest());
}

TEST(HashTest, WordFoldMatchesByteLoopAllLengths)
{
    // The word-at-a-time fast path must be bit-identical to the
    // byte loop for every length 0–64 (covers the empty input, the
    // pure tail, exact multiples of 8 and every straddle).
    unsigned char bytes[64];
    for (std::size_t i = 0; i < sizeof(bytes); ++i)
        bytes[i] = static_cast<unsigned char>(i * 37 + 11);
    for (std::size_t len = 0; len <= sizeof(bytes); ++len) {
        Fnv1aHasher h;
        h.addBytes(bytes, len);
        EXPECT_EQ(h.digest(), naiveFnv1a(bytes, len))
            << "length " << len;
    }
}

TEST(HashTest, WordFoldMatchesByteLoopAcrossChunkings)
{
    // Splitting the input at any point (so words straddle addBytes
    // calls) must not change the digest.
    const std::string input =
        "D[app.Main.run](L[x.Y.on](P[a.B.paint])N[j.K.native])";
    const auto *bytes =
        reinterpret_cast<const unsigned char *>(input.data());
    const std::uint64_t expected = naiveFnv1a(bytes, input.size());
    EXPECT_EQ(fnv1a(input), expected);
    for (std::size_t cut = 0; cut <= input.size(); ++cut) {
        Fnv1aHasher h;
        h.addBytes(input.data(), cut);
        h.addBytes(input.data() + cut, input.size() - cut);
        EXPECT_EQ(h.digest(), expected) << "cut " << cut;
    }
}

TEST(HashTest, StableAcrossRuns)
{
    // The pattern keys and cache keys depend on this exact value
    // never changing.
    EXPECT_EQ(fnv1a("LagAlyzer"), 0x7c79b209367a9126ULL);
}

} // namespace
} // namespace lag
