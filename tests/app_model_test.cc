/**
 * @file
 * Tests for the application models: catalog integrity (Table II),
 * determinism of session generation, and per-quirk behaviours.
 */

#include <gtest/gtest.h>

#include <set>

#include "app/catalog.hh"
#include "app/handlers.hh"
#include "app/session_runner.hh"
#include "core/pattern.hh"
#include "core/session.hh"
#include "core/triggers.hh"
#include "trace/io.hh"

namespace lag::app
{
namespace
{

TEST(CatalogTest, FourteenApplicationsInPaperOrder)
{
    const auto catalog = defaultCatalog();
    ASSERT_EQ(catalog.size(), 14u);
    const char *expected[] = {
        "Arabeske", "ArgoUML",    "CrosswordSage", "Euclide",
        "FindBugs", "FreeMind",   "GanttProject",  "JEdit",
        "JFreeChart", "JHotDraw", "Jmol",          "Laoe",
        "NetBeans", "SwingSet",
    };
    for (std::size_t i = 0; i < catalog.size(); ++i)
        EXPECT_EQ(catalog[i].name, expected[i]);
}

TEST(CatalogTest, TableTwoIdentityData)
{
    // Versions and class counts exactly as in the paper's Table II.
    EXPECT_EQ(catalogApp("Arabeske").version, "2.0.1");
    EXPECT_EQ(catalogApp("Arabeske").classCount, 222);
    EXPECT_EQ(catalogApp("ArgoUML").classCount, 5349);
    EXPECT_EQ(catalogApp("CrosswordSage").classCount, 34);
    EXPECT_EQ(catalogApp("NetBeans").classCount, 45367);
    EXPECT_EQ(catalogApp("Jmol").version, "11.6.21");
    EXPECT_EQ(catalogApp("JEdit").version, "4.3pre16");
}

TEST(CatalogTest, SessionLengthsMatchTableThree)
{
    EXPECT_EQ(catalogApp("Arabeske").sessionLength, secToNs(461));
    EXPECT_EQ(catalogApp("ArgoUML").sessionLength, secToNs(630));
    EXPECT_EQ(catalogApp("JFreeChart").sessionLength, secToNs(250));
}

TEST(CatalogTest, QuirksAssignedToTheRightApps)
{
    EXPECT_GT(catalogApp("Arabeske").explicitGcProb, 0.0);
    EXPECT_GT(catalogApp("Euclide").comboSleepProb, 0.0);
    EXPECT_GT(catalogApp("JEdit").modalWaitProb, 0.0);
    EXPECT_GT(catalogApp("FreeMind").contentionProb, 0.0);
    EXPECT_FALSE(catalogApp("FreeMind").hogs.empty());
    EXPECT_FALSE(catalogApp("Jmol").timers.empty());
    EXPECT_TRUE(catalogApp("Jmol").timers[0].postsRepaint);
    EXPECT_GE(catalogApp("FindBugs").loaders.size(), 2u);
    EXPECT_FALSE(catalogApp("FindBugs").timers[0].postsRepaint);
    EXPECT_GE(catalogApp("GanttProject").paintDepthMin, 8);
    EXPECT_LT(catalogApp("JHotDraw").libraryTimeShare, 0.1);
    EXPECT_GT(catalogApp("Euclide").libraryTimeShare, 0.7);
}

TEST(CatalogTest, UnknownAppExitsFatally)
{
    EXPECT_EXIT((void)catalogApp("NoSuchApp"),
                ::testing::ExitedWithCode(1), "");
}

TEST(CatalogTest, FingerprintsDistinguishApps)
{
    const auto catalog = defaultCatalog();
    std::set<std::string> prints;
    for (const auto &app : catalog)
        prints.insert(app.fingerprint());
    EXPECT_EQ(prints.size(), catalog.size());
}

TEST(CatalogTest, FingerprintSensitiveToEveryKnob)
{
    AppParams base = catalogApp("JEdit");
    AppParams tweaked = base;
    tweaked.heavyClickProb += 0.01;
    EXPECT_NE(base.fingerprint(), tweaked.fingerprint());
    tweaked = base;
    tweaked.timers.push_back(TimerSpec{});
    EXPECT_NE(base.fingerprint(), tweaked.fingerprint());
    tweaked = base;
    tweaked.dragRepaintEvery += 1;
    EXPECT_NE(base.fingerprint(), tweaked.fingerprint());
}

AppParams
shortApp(const char *name, int seconds = 20)
{
    AppParams params = catalogApp(name);
    params.sessionLength = secToNs(seconds);
    return params;
}

TEST(SessionRunnerTest, DeterministicTraceBytes)
{
    const AppParams params = shortApp("CrosswordSage", 10);
    const auto a = runSession(params, 0);
    const auto b = runSession(params, 0);
    EXPECT_EQ(trace::serializeTrace(a.trace),
              trace::serializeTrace(b.trace));
}

TEST(SessionRunnerTest, SessionsDifferByIndex)
{
    const AppParams params = shortApp("CrosswordSage", 10);
    const auto a = runSession(params, 0);
    const auto b = runSession(params, 1);
    EXPECT_NE(trace::serializeTrace(a.trace),
              trace::serializeTrace(b.trace));
    EXPECT_NE(sessionSeed(params, 0), sessionSeed(params, 1));
}

TEST(SessionRunnerTest, ProducesValidAnalyzableTrace)
{
    const auto result = runSession(shortApp("SwingSet"), 0);
    EXPECT_NO_THROW(result.trace.validate());
    const core::Session session =
        core::Session::fromTrace(result.trace);
    EXPECT_GT(session.episodes().size(), 0u);
    EXPECT_GT(session.meta().filteredShortEpisodes, 0u);
    EXPECT_GT(session.samples().size(), 0u);
    EXPECT_GT(result.userEvents, 0u);
}

TEST(SessionRunnerTest, ArabeskeTriggersExplicitCollections)
{
    const auto result = runSession(shortApp("Arabeske", 60), 0);
    EXPECT_GT(result.vmStats.majorGcs, 0u)
        << "Arabeske's System.gc() commands must run major GCs";
}

TEST(SessionRunnerTest, JmolOutputDominated)
{
    const auto result = runSession(shortApp("Jmol", 60), 0);
    const core::Session session =
        core::Session::fromTrace(result.trace);
    const auto triggers =
        core::analyzeTriggers(session, msToNs(100));
    EXPECT_GT(triggers.all.output, 0.5)
        << "the animation timer must dominate JMol's episodes";
}

TEST(SessionRunnerTest, FindBugsHasAsyncEpisodes)
{
    const auto result = runSession(shortApp("FindBugs", 120), 0);
    const core::Session session =
        core::Session::fromTrace(result.trace);
    const auto triggers =
        core::analyzeTriggers(session, msToNs(100));
    EXPECT_GT(triggers.all.async, 0.05)
        << "the progress updater posts asynchronous episodes";
}

TEST(HandlerFactoryTest, ShortHandlersShareOnePattern)
{
    const AppParams params = catalogApp("JEdit");
    HandlerFactory factory(params, 99, 1234);
    const auto a = factory.typingEvent();
    const auto b = factory.typingEvent();
    EXPECT_EQ(a.handler->frame.className, b.handler->frame.className);
    EXPECT_EQ(a.handler->kind, jvm::ActivityKind::Listener);
}

TEST(HandlerFactoryTest, TemplatePoolGrowsSublinearly)
{
    AppParams params = catalogApp("JEdit");
    params.patternConcentration = 10;
    HandlerFactory factory(params, 7, 1234);
    for (int i = 0; i < 2000; ++i)
        (void)factory.clickEvent();
    // CRP with alpha=10 over 2000 draws: about alpha*ln(n/alpha),
    // far below n.
    EXPECT_LT(factory.templateCount(), 200u);
    EXPECT_GE(factory.templateCount(), 10u);
}

TEST(HandlerFactoryTest, RepaintManagerFlagSetsBackgroundPost)
{
    HandlerFactory factory(catalogApp("SwingSet"), 7, 1234);
    EXPECT_TRUE(factory.repaintEvent(true).postedByBackground);
    EXPECT_FALSE(factory.repaintEvent(false).postedByBackground);
}

TEST(HandlerFactoryTest, InstancesOfOneTemplateVaryInCost)
{
    AppParams params = catalogApp("JEdit");
    params.patternConcentration = 0.5; // nearly one template
    HandlerFactory factory(params, 21, 1234);
    std::set<DurationNs> costs;
    for (int i = 0; i < 50; ++i)
        costs.insert(factory.clickEvent().handler->subtreeCost());
    EXPECT_GT(costs.size(), 40u)
        << "per-instance jitter must vary costs within a pattern";
}

} // namespace
} // namespace lag::app
