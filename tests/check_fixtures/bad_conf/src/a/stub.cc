int
stub()
{
    return 0;
}
