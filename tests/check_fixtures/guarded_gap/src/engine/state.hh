// Fixture: value_ trails the mutex with no LAG_GUARDED_BY — a
// [guarded-by-gap]. The annotated and pre-mutex members stay
// silent.
#include "util/mutex.hh"

#define LAG_GUARDED_BY(x)

namespace lag
{

class State
{
  public:
    int value() const;

  private:
    int config_ = 0; // before the mutex: not in scope
    Mutex mutex_{LockRank::Low, "state"};
    int annotated_ LAG_GUARDED_BY(mutex_) = 0;
    int value_ = 0;
};

} // namespace lag
