int
orphan()
{
    return 1;
}
