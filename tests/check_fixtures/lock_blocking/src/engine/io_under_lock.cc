// Fixture: a blocking syscall inside a critical section — write()
// while Low is held must be a [lock-across-blocking] finding.
#include "util/mutex.hh"

namespace lag
{

Mutex lowMutex{LockRank::Low, "low"};

long write(int fd, const void *buf, unsigned long n);

void
flush(int fd, const char *buf)
{
    MutexLock low(lowMutex);
    write(fd, buf, 1);
}

} // namespace lag
