// Fixture: everything in order — ranks descend, blocking happens
// outside the lock, includes are used — plus one seeded inversion
// silenced by the shared suppression syntax. lag_check must exit 0.
#include "util/mutex.hh"

namespace lag
{

Mutex lowMutex{LockRank::Low, "low"};
Mutex highMutex{LockRank::High, "high"};

long write(int fd, const void *buf, unsigned long n);

void
descend(int fd)
{
    {
        MutexLock high(highMutex);
        MutexLock low(lowMutex);
    }
    const char byte = 'x';
    write(fd, &byte, 1);
}

void
suppressed()
{
    MutexLock low(lowMutex);
    MutexLock high(highMutex); // lag-lint: allow(rank-inversion)
}

} // namespace lag
