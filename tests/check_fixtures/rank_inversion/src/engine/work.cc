// Fixture: a direct rank inversion — High acquired while Low is
// held, in one function body.
#include "util/mutex.hh"

namespace lag
{

Mutex lowMutex{LockRank::Low, "low"};
Mutex highMutex{LockRank::High, "high"};

void
work()
{
    MutexLock low(lowMutex);
    MutexLock high(highMutex);
}

} // namespace lag
