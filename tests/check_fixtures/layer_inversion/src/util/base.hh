// Fixture: the util layer reaching *up* into engine — the layer
// DAG says engine -> util, so this include is a [layer-violation].
#include "engine/top.hh"

struct Base
{
    Top top;
};
