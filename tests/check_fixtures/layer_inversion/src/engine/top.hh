struct Top
{
    int depth;
};
