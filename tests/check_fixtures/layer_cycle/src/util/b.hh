#include "util/a.hh"

struct B
{
    A *peer;
};
