// Fixture: a.hh and b.hh include each other — lag_check must
// report exactly one [layer-cycle] naming both files.
#include "util/b.hh"

struct A
{
    B *peer;
};
