// Fixture stand-in for the project mutex wrapper: just enough
// surface (the LockRank enum and the Mutex/MutexLock shapes) for
// lag_check's rank-table recovery to work on a standalone tree.
namespace lag
{

enum class LockRank
{
    Low = 10,
    High = 100,
};

class Mutex
{
  public:
    Mutex(LockRank rank, const char *name);
};

class MutexLock
{
  public:
    explicit MutexLock(Mutex &m);
};

} // namespace lag
