// Fixture: a transitive rank inversion — the inversion is only
// visible through the call graph: work() holds Low and calls
// touchHigh(), which acquires High.
#include "util/mutex.hh"

namespace lag
{

Mutex lowMutex{LockRank::Low, "low"};
Mutex highMutex{LockRank::High, "high"};

void
touchHigh()
{
    MutexLock guard(highMutex);
}

void
work()
{
    MutexLock low(lowMutex);
    touchHigh();
}

} // namespace lag
