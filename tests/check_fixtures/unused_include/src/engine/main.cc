// Fixture: helpers.hh is included but Helper is never referenced —
// an [unused-include].
#include "util/helpers.hh"

int
compute()
{
    return 3;
}
