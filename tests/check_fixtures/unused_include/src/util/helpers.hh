struct Helper
{
    int scale;
};
