/**
 * @file
 * Integration tests for the simulated JVM: scheduling, dispatch,
 * garbage collection, sampling, monitors and thread lifecycle.
 */

#include <gtest/gtest.h>

#include "util/logging.hh"

#include <algorithm>

#include "jvm/vm.hh"
#include "jvm_test_util.hh"

namespace lag::jvm
{
namespace
{

using test::HookRecord;
using test::RecordingListener;
using test::ScriptedProgram;

JvmConfig
quietConfig()
{
    JvmConfig config;
    config.seed = 7;
    config.dispatchOverhead = 0;
    config.samplePeriod = msToNs(1);
    return config;
}

GuiEvent
listenerEvent(DurationNs cost, std::uint64_t alloc = 0)
{
    ActivityBuilder handler(ActivityKind::Listener, "app.Handler",
                            "actionPerformed");
    handler.cost(cost);
    handler.alloc(alloc);
    GuiEvent event;
    event.handler = std::move(handler).buildShared();
    return event;
}

TEST(JvmTest, DispatchedEventProducesEpisodeHooks)
{
    RecordingListener listener;
    Jvm vm(quietConfig(), listener);
    vm.createEventDispatchThread();
    vm.start();
    vm.eventQueue().scheduleAfter(msToNs(5), [&] {
        vm.postGuiEvent(listenerEvent(msToNs(10)));
    });
    vm.run(msToNs(100));

    EXPECT_EQ(listener.count(HookRecord::Kind::DispatchBegin), 1u);
    EXPECT_EQ(listener.count(HookRecord::Kind::DispatchEnd), 1u);
    EXPECT_EQ(vm.stats().dispatches, 1u);

    // Episode spans the handler cost.
    TimeNs begin = 0;
    TimeNs end = 0;
    for (const auto &record : listener.records) {
        if (record.kind == HookRecord::Kind::DispatchBegin)
            begin = record.time;
        if (record.kind == HookRecord::Kind::DispatchEnd)
            end = record.time;
    }
    EXPECT_EQ(end - begin, msToNs(10));
}

TEST(JvmTest, ListenerIntervalNestedInsideDispatch)
{
    RecordingListener listener;
    Jvm vm(quietConfig(), listener);
    vm.createEventDispatchThread();
    vm.start();
    vm.eventQueue().scheduleAfter(msToNs(1), [&] {
        vm.postGuiEvent(listenerEvent(msToNs(4)));
    });
    vm.run(msToNs(50));

    std::vector<HookRecord::Kind> kinds;
    for (const auto &record : listener.records) {
        if (record.kind != HookRecord::Kind::Sample)
            kinds.push_back(record.kind);
    }
    EXPECT_EQ(kinds,
              (std::vector<HookRecord::Kind>{
                  HookRecord::Kind::DispatchBegin,
                  HookRecord::Kind::IntervalBegin,
                  HookRecord::Kind::IntervalEnd,
                  HookRecord::Kind::DispatchEnd}));
}

TEST(JvmTest, BackgroundPostWrappedInAsync)
{
    RecordingListener listener;
    Jvm vm(quietConfig(), listener);
    vm.createEventDispatchThread();
    vm.start();
    vm.eventQueue().scheduleAfter(msToNs(1), [&] {
        GuiEvent event = listenerEvent(msToNs(4));
        event.postedByBackground = true;
        vm.postGuiEvent(event);
    });
    vm.run(msToNs(50));

    bool saw_async = false;
    for (const auto &record : listener.records) {
        if (record.kind == HookRecord::Kind::IntervalBegin &&
            record.activity == ActivityKind::Async) {
            saw_async = true;
        }
    }
    EXPECT_TRUE(saw_async);
}

TEST(JvmTest, DispatchOverheadLengthensEpisode)
{
    JvmConfig config = quietConfig();
    config.dispatchOverhead = msToNs(1);
    RecordingListener listener;
    Jvm vm(config, listener);
    vm.createEventDispatchThread();
    vm.start();
    vm.eventQueue().scheduleAfter(msToNs(1), [&] {
        vm.postGuiEvent(listenerEvent(msToNs(4)));
    });
    vm.run(msToNs(50));
    TimeNs begin = 0;
    TimeNs end = 0;
    for (const auto &record : listener.records) {
        if (record.kind == HookRecord::Kind::DispatchBegin)
            begin = record.time;
        if (record.kind == HookRecord::Kind::DispatchEnd)
            end = record.time;
    }
    EXPECT_EQ(end - begin, msToNs(5));
}

TEST(JvmTest, QueuedEventsProcessSequentially)
{
    RecordingListener listener;
    Jvm vm(quietConfig(), listener);
    vm.createEventDispatchThread();
    vm.start();
    vm.eventQueue().scheduleAfter(msToNs(1), [&] {
        for (int i = 0; i < 5; ++i)
            vm.postGuiEvent(listenerEvent(msToNs(2)));
    });
    vm.run(msToNs(100));
    EXPECT_EQ(vm.stats().dispatches, 5u);
    // Dispatch records must alternate begin/end (no overlap).
    int open = 0;
    for (const auto &record : listener.records) {
        if (record.kind == HookRecord::Kind::DispatchBegin) {
            ++open;
            ASSERT_LE(open, 1);
        } else if (record.kind == HookRecord::Kind::DispatchEnd) {
            --open;
            ASSERT_GE(open, 0);
        }
    }
    EXPECT_EQ(open, 0);
}

TEST(JvmTest, AllocationTriggersStopTheWorldGc)
{
    JvmConfig config = quietConfig();
    config.heap.youngCapacityBytes = 1 << 20;
    RecordingListener listener;
    Jvm vm(config, listener);
    vm.createEventDispatchThread();
    vm.start();
    vm.eventQueue().scheduleAfter(msToNs(1), [&] {
        vm.postGuiEvent(listenerEvent(msToNs(50), 4 << 20));
    });
    vm.run(secToNs(3));
    EXPECT_GE(vm.stats().minorGcs, 1u);
    EXPECT_EQ(listener.count(HookRecord::Kind::GcBegin),
              listener.count(HookRecord::Kind::GcEnd));
    // The GC must lie inside the episode (the handler was running).
    TimeNs gc_begin = kNoTime;
    TimeNs ep_begin = kNoTime;
    TimeNs ep_end = kNoTime;
    for (const auto &record : listener.records) {
        if (record.kind == HookRecord::Kind::GcBegin &&
            gc_begin == kNoTime) {
            gc_begin = record.time;
        }
        if (record.kind == HookRecord::Kind::DispatchBegin)
            ep_begin = record.time;
        if (record.kind == HookRecord::Kind::DispatchEnd)
            ep_end = record.time;
    }
    ASSERT_NE(gc_begin, kNoTime);
    EXPECT_GT(gc_begin, ep_begin);
    EXPECT_LT(gc_begin, ep_end);
    // And the episode is longer than its CPU cost by the pause.
    EXPECT_GT(ep_end - ep_begin, msToNs(50));
}

TEST(JvmTest, SamplerSuppressedDuringGc)
{
    JvmConfig config = quietConfig();
    config.heap.youngCapacityBytes = 1 << 20;
    config.samplePeriod = usToNs(200);
    RecordingListener listener;
    Jvm vm(config, listener);
    vm.createEventDispatchThread();
    vm.start();
    vm.eventQueue().scheduleAfter(msToNs(1), [&] {
        vm.postGuiEvent(listenerEvent(msToNs(80), 8 << 20));
    });
    vm.run(secToNs(3));
    ASSERT_GE(vm.stats().minorGcs, 1u);
    EXPECT_GT(vm.stats().samplesSuppressed, 0u);

    // No sample may fall strictly inside any GC interval.
    std::vector<std::pair<TimeNs, TimeNs>> gcs;
    TimeNs open = kNoTime;
    for (const auto &record : listener.records) {
        if (record.kind == HookRecord::Kind::GcBegin)
            open = record.time;
        if (record.kind == HookRecord::Kind::GcEnd)
            gcs.emplace_back(open, record.time);
    }
    for (const auto &record : listener.records) {
        if (record.kind != HookRecord::Kind::Sample)
            continue;
        for (const auto &[b, e] : gcs) {
            ASSERT_FALSE(record.time > b && record.time < e)
                << "sample taken mid-collection";
        }
    }
}

TEST(JvmTest, ExplicitGcRunsMajorCollection)
{
    RecordingListener listener;
    Jvm vm(quietConfig(), listener);
    vm.createEventDispatchThread();
    vm.start();
    vm.eventQueue().scheduleAfter(msToNs(1), [&] {
        ActivityBuilder handler(ActivityKind::Listener, "app.H", "act");
        handler.cost(usToNs(500));
        handler.child(ActivityBuilder(ActivityKind::Plain,
                                      "java.lang.System", "gc")
                          .cost(usToNs(100))
                          .systemGc());
        GuiEvent event;
        event.handler = std::move(handler).buildShared();
        vm.postGuiEvent(event);
    });
    vm.run(secToNs(5));
    EXPECT_EQ(vm.stats().majorGcs, 1u);
    EXPECT_EQ(vm.stats().dispatches, 1u);
    EXPECT_EQ(listener.count(HookRecord::Kind::DispatchEnd), 1u)
        << "the triggering episode must complete after the GC";
}

TEST(JvmTest, SingleCorePreemptionSharesCpu)
{
    JvmConfig config = quietConfig();
    config.cores = 1;
    RecordingListener listener;
    Jvm vm(config, listener);

    const auto make_burner = [&](const char *name) {
        ActivityBuilder work(ActivityKind::Plain, "bg.Worker", "run");
        work.cost(msToNs(50));
        std::deque<ProgramStep> steps;
        steps.push_back(ProgramStep::runActivity(
            std::move(work).buildShared()));
        return vm.createThread(name, false,
                               std::make_shared<ScriptedProgram>(
                                   std::move(steps)));
    };
    const ThreadId a = make_burner("burner-a");
    const ThreadId b = make_burner("burner-b");
    vm.start();
    vm.run(msToNs(60));
    // At 60 ms of single-core time, 100 ms of demand cannot both be
    // done; preemption must have interleaved them.
    EXPECT_GT(vm.stats().contextSwitches, 5u);
    EXPECT_TRUE(vm.thread(a).state() == ThreadState::Terminated ||
                vm.thread(b).state() == ThreadState::Terminated ||
                true);
    vm.run(msToNs(150));
    EXPECT_EQ(vm.thread(a).state(), ThreadState::Terminated);
    EXPECT_EQ(vm.thread(b).state(), ThreadState::Terminated);
}

TEST(JvmTest, TwoCoresRunWithoutPreemption)
{
    RecordingListener listener;
    Jvm vm(quietConfig(), listener);
    for (const char *name : {"w-0", "w-1"}) {
        ActivityBuilder work(ActivityKind::Plain, "bg.Worker", "run");
        work.cost(msToNs(50));
        std::deque<ProgramStep> steps;
        steps.push_back(ProgramStep::runActivity(
            std::move(work).buildShared()));
        vm.createThread(name, false,
                        std::make_shared<ScriptedProgram>(
                            std::move(steps)));
    }
    vm.start();
    vm.run(msToNs(51));
    EXPECT_EQ(vm.stats().contextSwitches, 0u);
    EXPECT_EQ(vm.thread(0).state(), ThreadState::Terminated);
    EXPECT_EQ(vm.thread(1).state(), ThreadState::Terminated);
}

TEST(JvmTest, MonitorContentionBlocksAndResumes)
{
    RecordingListener listener;
    Jvm vm(quietConfig(), listener);

    const auto guarded = [&](DurationNs cost) {
        ActivityBuilder work(ActivityKind::Plain, "app.Shared", "use");
        work.cost(cost);
        work.monitor(1);
        std::deque<ProgramStep> steps;
        steps.push_back(ProgramStep::runActivity(
            std::move(work).buildShared()));
        return steps;
    };
    const ThreadId holder = vm.createThread(
        "holder", false,
        std::make_shared<ScriptedProgram>(guarded(msToNs(30))));
    // The waiter starts slightly later via an initial sleep.
    std::deque<ProgramStep> waiter_steps;
    waiter_steps.push_back(ProgramStep::sleepFor(msToNs(5)));
    auto inner = guarded(msToNs(10));
    waiter_steps.push_back(inner.front());
    const ThreadId waiter = vm.createThread(
        "waiter", false,
        std::make_shared<ScriptedProgram>(std::move(waiter_steps)));

    vm.start();
    vm.run(msToNs(20));
    EXPECT_EQ(vm.thread(waiter).state(), ThreadState::Blocked);
    EXPECT_EQ(vm.thread(holder).state(), ThreadState::Running);
    vm.run(msToNs(100));
    EXPECT_EQ(vm.thread(holder).state(), ThreadState::Terminated);
    EXPECT_EQ(vm.thread(waiter).state(), ThreadState::Terminated);
    EXPECT_GE(vm.monitors().contentionCount(), 1u);
}

TEST(JvmTest, SleepingThreadSampledAsSleeping)
{
    JvmConfig config = quietConfig();
    config.samplePeriod = msToNs(2);
    RecordingListener listener;
    Jvm vm(config, listener);
    ActivityBuilder napper(ActivityKind::Plain, "app.Napper", "nap");
    napper.cost(usToNs(100));
    napper.sleep(msToNs(40));
    std::deque<ProgramStep> steps;
    steps.push_back(
        ProgramStep::runActivity(std::move(napper).buildShared()));
    const ThreadId id = vm.createThread(
        "napper", false,
        std::make_shared<ScriptedProgram>(std::move(steps)));
    vm.start();
    vm.run(msToNs(30));
    EXPECT_EQ(vm.thread(id).state(), ThreadState::Sleeping);

    bool sampled_sleeping = false;
    for (const auto &record : listener.records) {
        if (record.kind != HookRecord::Kind::Sample)
            continue;
        for (const auto &snap : record.snapshots) {
            if (snap.thread == id &&
                snap.state == SampleState::Sleeping) {
                sampled_sleeping = true;
                // The stack must still show the napping frame.
                ASSERT_FALSE(snap.stack.empty());
                EXPECT_EQ(snap.stack.back().className, "app.Napper");
            }
        }
    }
    EXPECT_TRUE(sampled_sleeping);
}

TEST(JvmTest, EdtParksWhenQueueEmptyAndWakes)
{
    RecordingListener listener;
    Jvm vm(quietConfig(), listener);
    const ThreadId edt = vm.createEventDispatchThread();
    vm.start();
    vm.run(msToNs(10));
    EXPECT_EQ(vm.thread(edt).state(), ThreadState::Waiting);
    vm.eventQueue().scheduleAfter(0, [&] {
        vm.postGuiEvent(listenerEvent(msToNs(2)));
    });
    vm.run(msToNs(20));
    EXPECT_EQ(vm.stats().dispatches, 1u);
    EXPECT_EQ(vm.thread(edt).state(), ThreadState::Waiting);
}

TEST(JvmTest, DeterministicHookStream)
{
    const auto run_once = [] {
        JvmConfig config;
        config.seed = 1234;
        config.heap.youngCapacityBytes = 1 << 20;
        RecordingListener listener;
        Jvm vm(config, listener);
        vm.createEventDispatchThread();
        vm.start();
        for (int i = 1; i <= 20; ++i) {
            vm.eventQueue().schedule(msToNs(i * 3), [&vm] {
                vm.postGuiEvent(listenerEvent(msToNs(2), 512 << 10));
            });
        }
        vm.run(secToNs(1));
        std::vector<std::pair<int, TimeNs>> stream;
        for (const auto &record : listener.records) {
            stream.emplace_back(static_cast<int>(record.kind),
                                record.time);
        }
        return stream;
    };
    EXPECT_EQ(run_once(), run_once());
}

TEST(JvmTest, ConfigValidation)
{
    RecordingListener listener;
    JvmConfig bad;
    bad.cores = 0;
    EXPECT_THROW(Jvm(bad, listener), PanicError);
    JvmConfig bad2;
    bad2.timeSlice = 0;
    EXPECT_THROW(Jvm(bad2, listener), PanicError);
}

TEST(JvmTest, OnlyOneGuiThreadAllowed)
{
    RecordingListener listener;
    Jvm vm(quietConfig(), listener);
    vm.createEventDispatchThread();
    EXPECT_THROW(vm.createEventDispatchThread(), PanicError);
}

TEST(JvmTest, CreateThreadAfterStartPanics)
{
    RecordingListener listener;
    Jvm vm(quietConfig(), listener);
    vm.createEventDispatchThread();
    vm.start();
    EXPECT_THROW(vm.createThread("late", false,
                                 std::make_shared<ScriptedProgram>(
                                     std::deque<ProgramStep>{})),
                 PanicError);
}

} // namespace
} // namespace lag::jvm
