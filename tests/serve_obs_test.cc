/**
 * @file
 * Serve-layer observability tests — the request-scoped tracing
 * tentpole end to end: a cold store load under a minted trace
 * context must stamp the engine-pool spans it causes with that
 * request's id (visible in the Chrome-trace export), /metricsz must
 * negotiate Prometheus exposition that the strict checker accepts,
 * the X-Lag-Trace-Id response header must correlate with
 * /debugz/requests, and requests over --slow-request-ms must be
 * flagged in the flight recorder.
 *
 * The flight recorder and span buffers are process-global; tests
 * arm/enable them up front and never assume they start empty.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstddef>
#include <filesystem>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "app/study.hh"
#include "engine/pool.hh"
#include "obs/chrome_trace.hh"
#include "obs/flightrec.hh"
#include "obs/json_check.hh"
#include "obs/metrics.hh"
#include "obs/prom_check.hh"
#include "obs/span.hh"
#include "obs/trace_context.hh"
#include "serve/client.hh"
#include "serve/http.hh"
#include "serve/router.hh"
#include "serve/server.hh"
#include "serve/store.hh"

namespace lag::serve
{
namespace
{

namespace fs = std::filesystem;

/** Scoped cache directory: clean before and after the test. */
struct CacheDir
{
    std::string path;

    explicit CacheDir(std::string p) : path(std::move(p))
    {
        fs::remove_all(path);
    }

    ~CacheDir() { fs::remove_all(path); }
};

/** A tiny quick study (first 2 apps, 2 sessions each) with a
 * private cache dir. */
app::StudyConfig
tinyStudy(const std::string &cache_dir)
{
    app::StudyConfig config = app::StudyConfig::quickStudy(5);
    config.apps.resize(2);
    config.sessionsPerApp = 2;
    config.cacheDir = cache_dir;
    return config;
}

/** RAII guard so a failing test cannot leak spans-enabled state. */
struct SpansOn
{
    SpansOn() { obs::setSpansEnabled(true); }
    ~SpansOn() { obs::setSpansEnabled(false); }
};

/** Arm the process-wide flight recorder (first call wins; live
 * rings only, no dump file). */
void
armRecorder()
{
    obs::FlightRecorder::instance().configure(
        obs::FlightRecorderOptions{});
}

/**
 * A live server whose store was loaded cold under a minted trace
 * context — the "one request caused all this engine work" shape the
 * tracing tentpole must attribute.
 */
struct ObsServer
{
    engine::ThreadPool pool{2};
    HotStore store;
    obs::TraceContext loadTrace;
    HttpServer server;

    explicit ObsServer(const app::StudyConfig &config,
                       ServerConfig server_config = {})
        : store(config, pool),
          server(server_config, loadedRoutes(), pool)
    {
        server.start();
    }

    ~ObsServer() { server.stop(); }

    Router
    loadedRoutes()
    {
        loadTrace = obs::mintTraceContext();
        {
            obs::TraceContextScope scope(loadTrace);
            store.load();
        }
        Router router;
        store.installRoutes(router);
        return router;
    }

    /** GET @p target; asserts transport success only — bodies here
     * are JSON *or* Prometheus text, checked per test. */
    ClientResult
    get(const std::string &target)
    {
        ClientOptions options;
        options.port = server.port();
        const ClientResult result =
            httpRequest(options, "GET", target);
        EXPECT_TRUE(result.ok) << target << ": " << result.error;
        return result;
    }
};

TEST(ServeObs, ColdLoadStampsEngineSpansWithTheRequestTrace)
{
    armRecorder();
    const SpansOn on;
    const CacheDir cache_dir("lagalyzer-cache-serve-obs-trace");
    ObsServer live(tinyStudy(cache_dir.path));
    const obs::TraceContext ctx = live.loadTrace;

    // Walk every thread's span buffer: the load's own span must be
    // stamped, and so must spans recorded on *other* threads — the
    // engine-pool workers the load fanned out to.
    bool load_span_stamped = false;
    std::size_t stamped_buffers = 0;
    for (const auto &buffer : obs::spanBuffers()) {
        bool any = false;
        const std::size_t published = buffer->published();
        for (std::size_t i = 0; i < published; ++i) {
            const obs::SpanEvent &event = buffer->at(i);
            if (event.traceHi != ctx.hi ||
                event.traceLo != ctx.lo)
                continue;
            any = true;
            if (std::string_view(event.name) ==
                "serve.store.load")
                load_span_stamped = true;
        }
        if (any)
            ++stamped_buffers;
    }
    EXPECT_TRUE(load_span_stamped);
    // The loading thread plus at least one pool worker.
    EXPECT_GE(stamped_buffers, 2u);

    // And the attribution survives into the Chrome-trace export:
    // multiple events carry the id as a "trace" arg.
    const std::string json = obs::chromeTraceJson();
    const std::string needle =
        "\"trace\":\"" + obs::traceIdHex(ctx) + "\"";
    const std::size_t first = json.find(needle);
    EXPECT_NE(first, std::string::npos);
    EXPECT_NE(json.find(needle, first + 1), std::string::npos);
}

TEST(ServeObs, MetricsEndpointServesPromOnRequest)
{
    armRecorder();
    const CacheDir cache_dir("lagalyzer-cache-serve-obs-prom");
    ObsServer live(tinyStudy(cache_dir.path));

    // Default stays the bespoke JSON dump.
    const ClientResult as_json = live.get("/metricsz");
    EXPECT_EQ(as_json.status, 200);
    EXPECT_EQ(as_json.header("content-type"), "application/json");
    EXPECT_TRUE(obs::checkJson(as_json.body).ok);

    // ?format=prom switches to exposition text the strict checker
    // (the same one `trace_check --prom` runs) accepts.
    ClientResult prom = live.get("/metricsz?format=prom");
    EXPECT_EQ(prom.status, 200);
    EXPECT_EQ(prom.header("content-type"),
              "text/plain; version=0.0.4; charset=utf-8");
    const obs::PromCheckResult check = obs::checkProm(prom.body);
    EXPECT_TRUE(check.ok) << "line " << check.line << ": "
                          << check.message << "\n"
                          << prom.body;

    // The request counter and the per-route latency histograms
    // appear once a request has fully retired (they are recorded
    // after the response goes out, so poll briefly).
    bool routed = false;
    for (int attempt = 0; attempt < 200 && !routed; ++attempt) {
        prom = live.get("/metricsz?format=prom");
        routed = prom.body.find(
                     "lag_serve_route_latency_us_bucket{route=") !=
                 std::string::npos;
        if (!routed)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(5));
    }
    EXPECT_TRUE(routed) << prom.body;
    EXPECT_NE(prom.body.find("lag_serve_requests_total"),
              std::string::npos)
        << prom.body;
}

TEST(ServeObs, MetricsAcceptHeaderNegotiatesProm)
{
    // Content negotiation is pure dispatch logic — no live server
    // or loaded store needed.
    const CacheDir cache_dir("lagalyzer-cache-serve-obs-accept");
    engine::ThreadPool pool(2);
    HotStore store(tinyStudy(cache_dir.path), pool);
    Router router;
    store.installRoutes(router);

    HttpRequest request;
    request.method = "GET";
    request.path = "/metricsz";
    request.headers.emplace_back("accept", "text/plain");
    const HttpResponse negotiated = router.dispatch(request);
    EXPECT_EQ(negotiated.status, 200);
    EXPECT_EQ(negotiated.contentType,
              "text/plain; version=0.0.4; charset=utf-8");
    EXPECT_TRUE(obs::checkProm(negotiated.body).ok)
        << negotiated.body;

    // No Accept preference: JSON.
    request.headers.clear();
    const HttpResponse plain = router.dispatch(request);
    EXPECT_EQ(plain.contentType, "application/json");
    EXPECT_TRUE(obs::checkJson(plain.body).ok);

    // Explicit ?format=prom wins regardless of Accept.
    request.headers.emplace_back("accept", "application/json");
    request.query.emplace_back("format", "prom");
    const HttpResponse forced = router.dispatch(request);
    EXPECT_EQ(forced.contentType,
              "text/plain; version=0.0.4; charset=utf-8");
    EXPECT_TRUE(obs::checkProm(forced.body).ok);
}

TEST(ServeObs, TraceHeaderCorrelatesWithDebugRequests)
{
    armRecorder();
    const SpansOn on;
    const CacheDir cache_dir("lagalyzer-cache-serve-obs-debug");
    ObsServer live(tinyStudy(cache_dir.path));

    // Every response names its request's trace id.
    const ClientResult health = live.get("/healthz");
    EXPECT_EQ(health.status, 200);
    const std::string trace(health.header("x-lag-trace-id"));
    ASSERT_EQ(trace.size(), 32u) << trace;
    obs::TraceContext parsed;
    ASSERT_TRUE(obs::parseTraceIdHex(trace, parsed));

    // The request lands in /debugz/requests. Its summary is
    // recorded just after the response is written, so poll.
    std::string body;
    for (int attempt = 0; attempt < 200; ++attempt) {
        const ClientResult debug = live.get("/debugz/requests");
        EXPECT_EQ(debug.status, 200);
        body = debug.body;
        if (body.find(trace) != std::string::npos)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    EXPECT_TRUE(obs::checkJson(body).ok) << body;
    EXPECT_NE(body.find(trace), std::string::npos) << body;
    EXPECT_NE(body.find("/healthz"), std::string::npos) << body;

    // The ?trace= filter narrows to that request and attaches its
    // span tree — the serve.request span is stamped with this id.
    const ClientResult filtered =
        live.get("/debugz/requests?trace=" + trace);
    EXPECT_EQ(filtered.status, 200);
    EXPECT_TRUE(obs::checkJson(filtered.body).ok) << filtered.body;
    EXPECT_NE(filtered.body.find(trace), std::string::npos);
    EXPECT_NE(filtered.body.find("\"spans\""), std::string::npos)
        << filtered.body;
    EXPECT_NE(filtered.body.find("serve.request"),
              std::string::npos)
        << filtered.body;

    // Malformed filter values are a client error, not a crash.
    EXPECT_EQ(live.get("/debugz/requests?trace=xyz").status, 400);

    // The live flight-recorder view is well-formed too.
    const ClientResult rec = live.get("/debugz/flightrecorder");
    EXPECT_EQ(rec.status, 200);
    const obs::JsonCheckResult shape =
        obs::checkFlightrec(rec.body);
    EXPECT_TRUE(shape.ok)
        << shape.message << " at byte " << shape.errorOffset;
}

TEST(ServeObs, SlowRequestsAreFlaggedInTheFlightRecorder)
{
    armRecorder();
    engine::ThreadPool pool(2);
    Router router;
    router.addExact("GET", "/slowz", [](const HttpRequest &) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        HttpResponse response;
        response.body = "{\"ok\":1}";
        return response;
    });
    ServerConfig config;
    config.slowRequestMs = 1;
    HttpServer server(config, std::move(router), pool);
    server.start();

    ClientOptions options;
    options.port = server.port();
    const ClientResult result =
        httpRequest(options, "GET", "/slowz");
    EXPECT_TRUE(result.ok) << result.error;
    EXPECT_EQ(result.status, 200);

    // The summary (slow=true) and the slow-request marker are
    // recorded after the response goes out; poll for both.
    bool flagged = false;
    bool marked = false;
    for (int attempt = 0; attempt < 200 && !(flagged && marked);
         ++attempt) {
        flagged = false;
        for (const obs::RequestSummary &request :
             obs::FlightRecorder::instance().recentRequests()) {
            if (request.target == "/slowz" && request.slow)
                flagged = true;
        }
        marked = obs::FlightRecorder::instance().liveJson().find(
                     "slow-request") != std::string::npos;
        if (!(flagged && marked))
            std::this_thread::sleep_for(
                std::chrono::milliseconds(5));
    }
    EXPECT_TRUE(flagged);
    EXPECT_TRUE(marked);
    server.stop();
}

} // namespace
} // namespace lag::serve
