/**
 * @file
 * Unit tests for the activity-tree interpreter (VThread) against a
 * mock ExecContext — no scheduler, no VM.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "jvm/activity.hh"
#include "jvm/thread.hh"
#include "util/logging.hh"

namespace lag::jvm
{
namespace
{

/** Minimal ExecContext recording interval hooks and posts. */
class MockContext : public ExecContext
{
  public:
    TimeNs now = 0;
    bool monitor_available = true;
    std::vector<std::string> log;
    int posts = 0;

    TimeNs execNow() const override { return now; }

    bool
    tryAcquireMonitor(ThreadId, int monitor) override
    {
        log.push_back("acquire:" + std::to_string(monitor) +
                      (monitor_available ? ":ok" : ":blocked"));
        return monitor_available;
    }

    void
    releaseMonitor(ThreadId, int monitor) override
    {
        log.push_back("release:" + std::to_string(monitor));
    }

    void postGuiEvent(const GuiEvent &) override { ++posts; }

    void
    intervalBegin(ThreadId, ActivityKind kind, const Frame &frame)
        override
    {
        log.push_back(std::string("begin:") + activityKindName(kind) +
                      ":" + frame.className);
    }

    void
    intervalEnd(ThreadId, ActivityKind kind) override
    {
        log.push_back(std::string("end:") + activityKindName(kind));
    }
};

/** A thread with a never-consulted program (tasks installed by the
 * tests directly). */
VThread
makeThread()
{
    class NullProgram : public ThreadProgram
    {
        ProgramStep
        next(Jvm &, VThread &) override
        {
            return ProgramStep::exitThread();
        }
    };
    return VThread(0, "test", false, std::make_shared<NullProgram>(),
                   {{"java.lang.Thread", "run"}});
}

/** Drive the interpreter, satisfying CPU needs instantly. */
void
runToCompletion(VThread &thread, MockContext &ctx)
{
    for (int guard = 0; guard < 10000; ++guard) {
        const Need need = thread.advance(ctx);
        switch (need.kind) {
          case Need::Kind::Cpu:
            ctx.now += need.amount;
            thread.consumeCpu(need.amount);
            break;
          case Need::Kind::Sleep:
          case Need::Kind::Wait:
            ctx.now += need.amount;
            thread.completeTimedOp();
            break;
          case Need::Kind::TriggerGc:
            break; // instantaneous in this mock
          case Need::Kind::BlockedOnMonitor:
            FAIL() << "unexpected monitor block";
            return;
          case Need::Kind::TaskDone:
            return;
        }
    }
    FAIL() << "interpreter did not terminate";
}

TEST(VThreadTest, SimpleLeafConsumesExactCost)
{
    VThread thread = makeThread();
    MockContext ctx;
    ActivityBuilder leaf(ActivityKind::Listener, "app.Foo", "run");
    leaf.cost(1000);
    thread.beginTask(std::move(leaf).buildShared());

    const Need need = thread.advance(ctx);
    ASSERT_EQ(need.kind, Need::Kind::Cpu);
    // One child-less node has one chunk with the entire cost.
    EXPECT_EQ(need.amount, 1000);
    thread.consumeCpu(1000);
    EXPECT_EQ(thread.advance(ctx).kind, Need::Kind::TaskDone);
    EXPECT_TRUE(thread.taskDone());
}

TEST(VThreadTest, IntervalHooksFireForNonPlainNodes)
{
    VThread thread = makeThread();
    MockContext ctx;
    ActivityBuilder root(ActivityKind::Listener, "app.Handler", "act");
    root.cost(100);
    root.child(ActivityBuilder(ActivityKind::Plain, "app.Work", "w")
                   .cost(50));
    root.child(ActivityBuilder(ActivityKind::Paint, "app.View", "paint")
                   .cost(50));
    thread.beginTask(std::move(root).buildShared());
    runToCompletion(thread, ctx);

    // Plain nodes never appear; listener wraps paint.
    EXPECT_EQ(ctx.log,
              (std::vector<std::string>{"begin:listener:app.Handler",
                                        "begin:paint:app.View",
                                        "end:paint", "end:listener"}));
}

TEST(VThreadTest, SelfCostInterleavesAroundChildren)
{
    VThread thread = makeThread();
    MockContext ctx;
    ActivityBuilder root(ActivityKind::Plain, "a.A", "m");
    root.cost(90);
    root.child(ActivityBuilder(ActivityKind::Plain, "a.B", "m").cost(10));
    root.child(ActivityBuilder(ActivityKind::Plain, "a.C", "m").cost(10));
    thread.beginTask(std::move(root).buildShared());

    // Expect chunks 30,10(child),30,10(child),30: total 110.
    std::vector<DurationNs> chunks;
    while (true) {
        const Need need = thread.advance(ctx);
        if (need.kind == Need::Kind::TaskDone)
            break;
        ASSERT_EQ(need.kind, Need::Kind::Cpu);
        chunks.push_back(need.amount);
        thread.consumeCpu(need.amount);
    }
    EXPECT_EQ(chunks,
              (std::vector<DurationNs>{30, 10, 30, 10, 30}));
}

TEST(VThreadTest, ChunkRemainderGoesToFinalChunk)
{
    VThread thread = makeThread();
    MockContext ctx;
    ActivityBuilder root(ActivityKind::Plain, "a.A", "m");
    root.cost(100);
    root.child(ActivityBuilder(ActivityKind::Plain, "a.B", "m").cost(1));
    root.child(ActivityBuilder(ActivityKind::Plain, "a.C", "m").cost(1));
    thread.beginTask(std::move(root).buildShared());
    DurationNs total = 0;
    std::vector<DurationNs> chunks;
    while (true) {
        const Need need = thread.advance(ctx);
        if (need.kind == Need::Kind::TaskDone)
            break;
        chunks.push_back(need.amount);
        total += need.amount;
        thread.consumeCpu(need.amount);
    }
    // 100/3 = 33 with remainder 1 -> final chunk is 34.
    EXPECT_EQ(total, 102);
    ASSERT_EQ(chunks.size(), 5u);
    EXPECT_EQ(chunks.back(), 34);
}

TEST(VThreadTest, PartialConsumptionResumesChunk)
{
    VThread thread = makeThread();
    MockContext ctx;
    ActivityBuilder leaf(ActivityKind::Plain, "a.A", "m");
    leaf.cost(1000);
    thread.beginTask(std::move(leaf).buildShared());
    Need need = thread.advance(ctx);
    ASSERT_EQ(need.amount, 1000);
    thread.consumeCpu(400); // preempted mid-chunk
    need = thread.advance(ctx);
    ASSERT_EQ(need.kind, Need::Kind::Cpu);
    EXPECT_EQ(need.amount, 600);
}

TEST(VThreadTest, StackTracksEntryAndExit)
{
    VThread thread = makeThread();
    MockContext ctx;
    ActivityBuilder root(ActivityKind::Listener, "a.Outer", "m");
    root.cost(10);
    root.child(
        ActivityBuilder(ActivityKind::Plain, "a.Inner", "m").cost(10));
    thread.beginTask(std::move(root).buildShared());

    // Base stack only before starting.
    EXPECT_EQ(thread.stack().size(), 1u);
    Need need = thread.advance(ctx); // enters Outer, first chunk
    EXPECT_EQ(thread.stack().back().className, "a.Outer");
    thread.consumeCpu(need.amount);
    need = thread.advance(ctx); // into Inner
    EXPECT_EQ(thread.stack().back().className, "a.Inner");
    EXPECT_EQ(thread.stack().size(), 3u);
    thread.consumeCpu(need.amount);
    runToCompletion(thread, ctx);
    EXPECT_EQ(thread.stack().size(), 1u) << "stack restored after task";
}

TEST(VThreadTest, SleepAndWaitSurfaceOnce)
{
    VThread thread = makeThread();
    MockContext ctx;
    ActivityBuilder node(ActivityKind::Plain, "a.A", "m");
    node.cost(10);
    node.sleep(500);
    node.wait(700);
    thread.beginTask(std::move(node).buildShared());

    Need need = thread.advance(ctx);
    ASSERT_EQ(need.kind, Need::Kind::Sleep);
    EXPECT_EQ(need.amount, 500);
    need = thread.advance(ctx);
    ASSERT_EQ(need.kind, Need::Kind::Wait);
    EXPECT_EQ(need.amount, 700);
    need = thread.advance(ctx);
    ASSERT_EQ(need.kind, Need::Kind::Cpu) << "sleep/wait happen once";
}

TEST(VThreadTest, MonitorAcquireAndRelease)
{
    VThread thread = makeThread();
    MockContext ctx;
    ActivityBuilder node(ActivityKind::Plain, "a.A", "m");
    node.cost(10);
    node.monitor(3);
    thread.beginTask(std::move(node).buildShared());
    runToCompletion(thread, ctx);
    ASSERT_EQ(ctx.log.size(), 2u);
    EXPECT_EQ(ctx.log[0], "acquire:3:ok");
    EXPECT_EQ(ctx.log[1], "release:3");
}

TEST(VThreadTest, BlockedMonitorThenGranted)
{
    VThread thread = makeThread();
    MockContext ctx;
    ctx.monitor_available = false;
    ActivityBuilder node(ActivityKind::Plain, "a.A", "m");
    node.cost(10);
    node.monitor(7);
    thread.beginTask(std::move(node).buildShared());

    Need need = thread.advance(ctx);
    ASSERT_EQ(need.kind, Need::Kind::BlockedOnMonitor);
    EXPECT_EQ(need.monitor, 7);
    // Still blocked until granted; the context is only asked once.
    need = thread.advance(ctx);
    ASSERT_EQ(need.kind, Need::Kind::BlockedOnMonitor);
    thread.grantMonitor(7);
    need = thread.advance(ctx);
    ASSERT_EQ(need.kind, Need::Kind::Cpu);
    thread.consumeCpu(need.amount);
    EXPECT_EQ(thread.advance(ctx).kind, Need::Kind::TaskDone);
    // Release must still happen on exit.
    EXPECT_EQ(ctx.log.back(), "release:7");
}

TEST(VThreadTest, ExplicitGcSurfaces)
{
    VThread thread = makeThread();
    MockContext ctx;
    ActivityBuilder node(ActivityKind::Plain, "java.lang.System", "gc");
    node.cost(10);
    node.systemGc();
    thread.beginTask(std::move(node).buildShared());
    EXPECT_EQ(thread.advance(ctx).kind, Need::Kind::TriggerGc);
    EXPECT_EQ(thread.advance(ctx).kind, Need::Kind::Cpu);
}

TEST(VThreadTest, PostAtEndFires)
{
    VThread thread = makeThread();
    MockContext ctx;
    GuiEvent event;
    event.handler = ActivityBuilder(ActivityKind::Plain, "x.Y", "m")
                        .buildShared();
    ActivityBuilder node(ActivityKind::Plain, "a.A", "m");
    node.cost(10);
    node.postAtEnd(event);
    node.postAtEnd(event);
    thread.beginTask(std::move(node).buildShared());
    runToCompletion(thread, ctx);
    EXPECT_EQ(ctx.posts, 2);
}

TEST(VThreadTest, AllocationProRata)
{
    VThread thread = makeThread();
    MockContext ctx;
    ActivityBuilder node(ActivityKind::Plain, "a.A", "m");
    node.cost(1000);
    node.alloc(4000);
    thread.beginTask(std::move(node).buildShared());
    Need need = thread.advance(ctx);
    EXPECT_EQ(thread.consumeCpu(250), 1000u);
    EXPECT_EQ(thread.consumeCpu(750), 3000u);
    (void)need;
}

TEST(VThreadTest, ZeroCostTreeCompletesWithoutCpu)
{
    VThread thread = makeThread();
    MockContext ctx;
    ActivityBuilder root(ActivityKind::Listener, "a.A", "m");
    root.child(ActivityBuilder(ActivityKind::Paint, "a.B", "m"));
    thread.beginTask(std::move(root).buildShared());
    EXPECT_EQ(thread.advance(ctx).kind, Need::Kind::TaskDone);
    EXPECT_EQ(ctx.log.size(), 4u); // both begin/end pairs fired
}

TEST(VThreadTest, ConsumeMoreThanChunkPanics)
{
    VThread thread = makeThread();
    MockContext ctx;
    ActivityBuilder node(ActivityKind::Plain, "a.A", "m");
    node.cost(100);
    thread.beginTask(std::move(node).buildShared());
    thread.advance(ctx);
    EXPECT_THROW(thread.consumeCpu(101), PanicError);
}

TEST(VThreadTest, BeginTaskWhileBusyPanics)
{
    VThread thread = makeThread();
    MockContext ctx;
    ActivityBuilder node(ActivityKind::Plain, "a.A", "m");
    node.cost(100);
    thread.beginTask(std::move(node).buildShared());
    thread.advance(ctx);
    auto another =
        ActivityBuilder(ActivityKind::Plain, "a.B", "m").buildShared();
    EXPECT_THROW(thread.beginTask(another), PanicError);
}

TEST(VThreadTest, SampleStateMapping)
{
    VThread thread = makeThread();
    thread.setState(ThreadState::Running);
    EXPECT_EQ(thread.sampleState(), SampleState::Runnable);
    thread.setState(ThreadState::Runnable);
    EXPECT_EQ(thread.sampleState(), SampleState::Runnable);
    thread.setState(ThreadState::AtSafepoint);
    EXPECT_EQ(thread.sampleState(), SampleState::Runnable);
    thread.setState(ThreadState::Blocked);
    EXPECT_EQ(thread.sampleState(), SampleState::Blocked);
    thread.setState(ThreadState::Waiting);
    EXPECT_EQ(thread.sampleState(), SampleState::Waiting);
    thread.setState(ThreadState::Sleeping);
    EXPECT_EQ(thread.sampleState(), SampleState::Sleeping);
    thread.setState(ThreadState::Terminated);
    EXPECT_THROW(thread.sampleState(), PanicError);
}

TEST(ActivityNodeTest, SubtreeAccessors)
{
    ActivityBuilder root(ActivityKind::Listener, "a.A", "m");
    root.cost(100);
    root.child(ActivityBuilder(ActivityKind::Paint, "a.B", "m")
                   .cost(50)
                   .child(ActivityBuilder(ActivityKind::Native, "a.C",
                                          "m")
                              .cost(25)));
    const ActivityNode tree = std::move(root).build();
    EXPECT_EQ(tree.subtreeCost(), 175);
    EXPECT_EQ(tree.subtreeSize(), 3u);
    EXPECT_EQ(tree.subtreeDepth(), 3u);
}

} // namespace
} // namespace lag::jvm
