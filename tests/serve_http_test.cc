/**
 * @file
 * serve HTTP-layer tests: the strict parser over malformed and
 * hostile inputs (fuzz), the size caps (413 / header budget), the
 * per-connection deadlines (408), the router's 400/404/405/503
 * paths end-to-end against a live HttpServer, and concurrent
 * clients hammering one server — the concurrency surface a
 * `-DLAG_SANITIZE=thread` build audits (label: engine).
 */

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "engine/pool.hh"
#include "obs/json_check.hh"
#include "serve/client.hh"
#include "serve/http.hh"
#include "serve/router.hh"
#include "serve/server.hh"

namespace lag::serve
{
namespace
{

/** Raw one-shot exchange: connect, send @p bytes, read to EOF.
 * Returns the raw response ("" on connect failure). */
std::string
rawExchange(std::uint16_t port, const std::string &bytes,
            int timeout_ms = 5000)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return {};
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) < 0) {
        ::close(fd);
        return {};
    }
    std::size_t sent = 0;
    while (sent < bytes.size()) {
        const ssize_t n = ::send(fd, bytes.data() + sent,
                                 bytes.size() - sent, MSG_NOSIGNAL);
        if (n <= 0)
            break;
        sent += static_cast<std::size_t>(n);
    }
    std::string response;
    char chunk[2048];
    while (true) {
        pollfd entry{};
        entry.fd = fd;
        entry.events = POLLIN;
        if (::poll(&entry, 1, timeout_ms) <= 0)
            break;
        const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n <= 0)
            break;
        response.append(chunk, static_cast<std::size_t>(n));
    }
    ::close(fd);
    return response;
}

/** A tiny live server echoing {"ok":true} on GET /ping. */
struct TestServer
{
    engine::ThreadPool pool{2};
    HttpServer server;

    explicit TestServer(ServerConfig config = {})
        : server(std::move(config), makeRouter(), pool)
    {
        server.start();
    }

    ~TestServer() { server.stop(); }

    static Router
    makeRouter()
    {
        Router router;
        router.addExact("GET", "/ping", [](const HttpRequest &) {
            HttpResponse response;
            response.body = "{\"ok\":true}";
            return response;
        });
        router.addExact("POST", "/echo",
                        [](const HttpRequest &request) {
                            HttpResponse response;
                            response.body = "{\"bytes\":" +
                                std::to_string(request.body.size()) +
                                "}";
                            return response;
                        });
        return router;
    }

    ClientOptions
    client() const
    {
        ClientOptions options;
        options.port = server.port();
        return options;
    }
};

ParseStatus
parse(const std::string &data, HttpRequest &out,
      ParseLimits limits = {})
{
    return parseRequest(data, limits, out);
}

TEST(ServeHttp, ParsesSimpleGetWithQuery)
{
    HttpRequest request;
    ASSERT_EQ(parse("GET /v1/patterns?app=Gantt%20Project&limit=3&x "
                    "HTTP/1.1\r\nHost: h\r\n\r\n",
                    request),
              ParseStatus::Ok);
    EXPECT_EQ(request.method, "GET");
    EXPECT_EQ(request.path, "/v1/patterns");
    ASSERT_NE(request.queryParam("app"), nullptr);
    EXPECT_EQ(*request.queryParam("app"), "Gantt Project");
    ASSERT_NE(request.queryParam("limit"), nullptr);
    EXPECT_EQ(*request.queryParam("limit"), "3");
    ASSERT_NE(request.queryParam("x"), nullptr);
    EXPECT_EQ(*request.queryParam("x"), "");
    EXPECT_EQ(request.queryParam("absent"), nullptr);
    EXPECT_EQ(request.header("host"), "h");
}

TEST(ServeHttp, ParsesPostBody)
{
    HttpRequest request;
    ASSERT_EQ(parse("POST /v1/refresh HTTP/1.1\r\n"
                    "Content-Length: 5\r\n\r\nhello",
                    request),
              ParseStatus::Ok);
    EXPECT_EQ(request.method, "POST");
    EXPECT_EQ(request.body, "hello");
}

TEST(ServeHttp, IncompleteUntilTerminatorAndBodyArrive)
{
    HttpRequest request;
    EXPECT_EQ(parse("GET / HTTP/1.1\r\nHost: h\r\n", request),
              ParseStatus::Incomplete);
    EXPECT_EQ(parse("POST / HTTP/1.1\r\nContent-Length: 5\r\n\r\nhel",
                    request),
              ParseStatus::Incomplete);
}

TEST(ServeHttp, MalformedRequestsAreBadRequest)
{
    // One table, one reason each: every entry must map to a
    // definite 400, never a crash or an Incomplete stall.
    const char *cases[] = {
        "\r\n\r\n",                                  // empty line
        "GET\r\n\r\n",                               // no target
        "GET /\r\n\r\n",                             // no version
        "GET / HTTP/2.0\r\n\r\n",                    // bad version
        "G@T / HTTP/1.1\r\n\r\n",                    // non-token method
        "GET relative HTTP/1.1\r\n\r\n",             // no leading /
        "GET /%zz HTTP/1.1\r\n\r\n",                 // bad escape
        "GET /%2 HTTP/1.1\r\n\r\n",                  // short escape
        "GET /%00 HTTP/1.1\r\n\r\n",                 // encoded NUL
        "GET /a?b=%G1 HTTP/1.1\r\n\r\n",             // bad query escape
        "GET / HTTP/1.1\r\nNoColon\r\n\r\n",         // header no colon
        "GET / HTTP/1.1\r\n: v\r\n\r\n",             // empty name
        "GET / HTTP/1.1\r\nBad Name: v\r\n\r\n",     // space in name
        "GET / HTTP/1.1\r\nA: 1\r\n continued\r\n\r\n", // folding
        "GET / HTTP/1.1\r\nContent-Length: x\r\n\r\n",  // CL junk
        "GET / HTTP/1.1\r\nContent-Length: 5x\r\n\r\n", // CL suffix
        "GET / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
        "GET / HTTP/1.1\r\nContent-Length: 1\r\n\r\nab", // extra byte
    };
    for (const char *data : cases) {
        HttpRequest request;
        EXPECT_EQ(parse(data, request), ParseStatus::BadRequest)
            << "input: " << data;
    }
}

TEST(ServeHttp, ConflictingContentLengthsAreBadRequest)
{
    // RFC 9110 §8.6: multiple differing Content-Length values make
    // the message framing ambiguous — request-smuggling territory —
    // and must be rejected, not first-or-last-value resolved.
    HttpRequest request;
    EXPECT_EQ(parse("POST /echo HTTP/1.1\r\n"
                    "Content-Length: 5\r\n"
                    "Content-Length: 6\r\n\r\nhello!",
                    request),
              ParseStatus::BadRequest);
    // Order must not matter: the larger value first smuggles the
    // same way.
    EXPECT_EQ(parse("POST /echo HTTP/1.1\r\n"
                    "Content-Length: 6\r\n"
                    "Content-Length: 5\r\n\r\nhello!",
                    request),
              ParseStatus::BadRequest);
}

TEST(ServeHttp, RepeatedIdenticalContentLengthIsAccepted)
{
    // ... but identical repeats are unambiguous and stay valid per
    // the same section.
    HttpRequest request;
    ASSERT_EQ(parse("POST /echo HTTP/1.1\r\n"
                    "Content-Length: 5\r\n"
                    "Content-Length: 5\r\n\r\nhello",
                    request),
              ParseStatus::Ok);
    EXPECT_EQ(request.body, "hello");
}

TEST(ServeHttp, EncodedNulInQueryIsBadRequest)
{
    // %00 was already rejected in the path; the decoded query key
    // and value must refuse embedded NULs the same way, or handlers
    // compare C-string-truncated parameter names.
    HttpRequest request;
    EXPECT_EQ(parse("GET /a?%00key=1 HTTP/1.1\r\n\r\n", request),
              ParseStatus::BadRequest)
        << "NUL in decoded query key";
    EXPECT_EQ(parse("GET /a?key=%00 HTTP/1.1\r\n\r\n", request),
              ParseStatus::BadRequest)
        << "NUL in decoded query value";
    EXPECT_EQ(parse("GET /a?k%001=v HTTP/1.1\r\n\r\n", request),
              ParseStatus::BadRequest)
        << "NUL mid-key";
}

TEST(ServeHttp, HeaderBudgetIsFatalEvenWithoutTerminator)
{
    ParseLimits limits;
    limits.maxHeaderBytes = 64;
    HttpRequest request;
    // Over budget with no terminator: waiting cannot help.
    const std::string dribble =
        "GET / HTTP/1.1\r\nX: " + std::string(100, 'a');
    EXPECT_EQ(parse(dribble, request, limits),
              ParseStatus::BadRequest);
    // Over budget with a terminator: same verdict.
    const std::string over = "GET / HTTP/1.1\r\nX: " +
                             std::string(100, 'a') + "\r\n\r\n";
    EXPECT_EQ(parse(over, request, limits),
              ParseStatus::BadRequest);
}

TEST(ServeHttp, HeaderCountCapped)
{
    ParseLimits limits;
    limits.maxHeaderCount = 4;
    std::string data = "GET / HTTP/1.1\r\n";
    for (int i = 0; i < 6; ++i)
        data += "H" + std::to_string(i) + ": v\r\n";
    data += "\r\n";
    HttpRequest request;
    EXPECT_EQ(parse(data, request, limits),
              ParseStatus::BadRequest);
}

TEST(ServeHttp, OversizedBodyIsTooLarge)
{
    ParseLimits limits;
    limits.maxBodyBytes = 8;
    HttpRequest request;
    // The verdict comes from the declared length alone — no body
    // bytes need to arrive before the 413.
    EXPECT_EQ(parse("POST / HTTP/1.1\r\nContent-Length: 9\r\n\r\n",
                    request, limits),
              ParseStatus::TooLarge);
}

TEST(ServeHttp, FuzzedGarbageNeverCrashesTheParser)
{
    // Deterministic garbage, three flavors: pure noise, noise with
    // HTTP-ish framing bytes, and truncations of a valid request.
    std::mt19937 rng(0x1a6f00dU);
    const std::string valid =
        "POST /v1/episodes?app=X&pattern=0abc HTTP/1.1\r\n"
        "Host: h\r\nContent-Length: 4\r\n\r\nbody";
    for (int round = 0; round < 2000; ++round) {
        std::string data;
        const int flavor = round % 3;
        const std::size_t len = rng() % 200;
        if (flavor == 0) {
            for (std::size_t i = 0; i < len; ++i)
                data.push_back(static_cast<char>(rng() & 0xff));
        } else if (flavor == 1) {
            const char framing[] = {'\r', '\n', ':', ' ', '%',
                                    '?',  '&',  '=', '/'};
            for (std::size_t i = 0; i < len; ++i) {
                data.push_back(
                    (rng() & 1) != 0
                        ? framing[rng() % sizeof(framing)]
                        : static_cast<char>('A' + (rng() % 26)));
            }
        } else {
            data = valid.substr(0, rng() % valid.size());
        }
        HttpRequest request;
        // Any verdict is fine; crashing or throwing is not.
        (void)parseRequest(data, ParseLimits{}, request);
    }
}

TEST(ServeHttp, ResponsesSerializeStrictJsonErrors)
{
    const HttpResponse error = errorResponse(404, "no \"thing\"");
    EXPECT_TRUE(obs::checkJson(error.body).ok) << error.body;
    const std::string wire = serializeResponse(error);
    EXPECT_NE(wire.find("HTTP/1.1 404 Not Found\r\n"),
              std::string::npos);
    EXPECT_NE(wire.find("Connection: close\r\n"),
              std::string::npos);
    EXPECT_NE(wire.find("Content-Length: " +
                        std::to_string(error.body.size())),
              std::string::npos);
}

TEST(ServeHttp, EndToEndStatusPaths)
{
    ServerConfig config;
    config.limits.maxBodyBytes = 16;
    TestServer ts(config);
    const ClientOptions client = ts.client();

    const ClientResult ok = httpRequest(client, "GET", "/ping");
    ASSERT_TRUE(ok.ok) << ok.error;
    EXPECT_EQ(ok.status, 200);
    EXPECT_EQ(ok.body, "{\"ok\":true}");

    const ClientResult missing =
        httpRequest(client, "GET", "/nope");
    ASSERT_TRUE(missing.ok) << missing.error;
    EXPECT_EQ(missing.status, 404);
    EXPECT_TRUE(obs::checkJson(missing.body).ok) << missing.body;

    const ClientResult wrong_method =
        httpRequest(client, "POST", "/ping");
    ASSERT_TRUE(wrong_method.ok) << wrong_method.error;
    EXPECT_EQ(wrong_method.status, 405);
    EXPECT_TRUE(obs::checkJson(wrong_method.body).ok);

    const ClientResult too_large = httpRequest(
        client, "POST", "/echo", std::string(100, 'x'));
    ASSERT_TRUE(too_large.ok) << too_large.error;
    EXPECT_EQ(too_large.status, 413);

    const std::string malformed =
        rawExchange(ts.server.port(), "GARBAGE\r\n\r\n");
    EXPECT_NE(malformed.find("HTTP/1.1 400 "), std::string::npos)
        << malformed;
}

TEST(ServeHttp, ReadDeadlineAnswers408)
{
    ServerConfig config;
    config.readTimeoutMs = 150;
    TestServer ts(config);
    // Connect, send half a request, then stall past the deadline.
    const std::string response = rawExchange(
        ts.server.port(), "GET /ping HTTP/1.1\r\n", 5000);
    EXPECT_NE(response.find("HTTP/1.1 408 "), std::string::npos)
        << response;
}

TEST(ServeHttp, AdmissionGateAnswers503)
{
    ServerConfig config;
    config.maxConnections = 0; // every arrival over the cap
    TestServer ts(config);
    const ClientResult rejected =
        httpRequest(ts.client(), "GET", "/ping");
    ASSERT_TRUE(rejected.ok) << rejected.error;
    EXPECT_EQ(rejected.status, 503);
    EXPECT_TRUE(obs::checkJson(rejected.body).ok);
}

TEST(ServeHttp, ConcurrentClientsAllSucceed)
{
    TestServer ts;
    const ClientOptions client = ts.client();
    constexpr int kThreads = 8;
    constexpr int kRequestsPerThread = 16;

    std::vector<std::thread> threads;
    std::vector<int> failures(kThreads, 0);
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (int i = 0; i < kRequestsPerThread; ++i) {
                const ClientResult result =
                    httpRequest(client, "GET", "/ping");
                if (!result.ok || result.status != 200 ||
                    result.body != "{\"ok\":true}")
                    ++failures[static_cast<std::size_t>(t)];
            }
        });
    }
    for (std::thread &thread : threads)
        thread.join();
    for (int t = 0; t < kThreads; ++t)
        EXPECT_EQ(failures[static_cast<std::size_t>(t)], 0)
            << "thread " << t;
}

TEST(ServeHttp, StopDrainsAndStaysIdempotent)
{
    auto ts = std::make_unique<TestServer>();
    const ClientOptions client = ts->client();
    const ClientResult before =
        httpRequest(client, "GET", "/ping");
    ASSERT_TRUE(before.ok);
    ts->server.stop();
    ts->server.stop(); // second stop is a no-op
    const ClientResult after = httpRequest(client, "GET", "/ping");
    EXPECT_FALSE(after.ok); // nobody listening any more
}

} // namespace
} // namespace lag::serve
