/**
 * @file
 * Tests for error reporting: panic must be observable, assertions
 * must carry context.
 */

#include <gtest/gtest.h>

#include <string>

#include "util/logging.hh"

namespace lag
{
namespace
{

TEST(LoggingTest, PanicThrowsWithMessage)
{
    try {
        lag_panic("broken: ", 42);
        FAIL() << "panic did not throw";
    } catch (const PanicError &err) {
        const std::string what = err.what();
        EXPECT_NE(what.find("broken: 42"), std::string::npos);
        EXPECT_NE(what.find("util_logging_test"), std::string::npos)
            << "panic should carry the source location";
    }
}

TEST(LoggingTest, AssertPassesOnTrue)
{
    EXPECT_NO_THROW(lag_assert(1 + 1 == 2, "math"));
}

TEST(LoggingTest, AssertThrowsOnFalseWithCondition)
{
    try {
        lag_assert(1 == 2, "values: ", 1, " vs ", 2);
        FAIL() << "assert did not throw";
    } catch (const PanicError &err) {
        const std::string what = err.what();
        EXPECT_NE(what.find("1 == 2"), std::string::npos);
        EXPECT_NE(what.find("values: 1 vs 2"), std::string::npos);
    }
}

TEST(LoggingTest, ThresholdControlsEmission)
{
    const LogLevel before = logThreshold();
    setLogThreshold(LogLevel::Error);
    EXPECT_EQ(logThreshold(), LogLevel::Error);
    // These must not crash while suppressed.
    warn("suppressed warning");
    inform("suppressed info");
    setLogThreshold(before);
}

} // namespace
} // namespace lag
