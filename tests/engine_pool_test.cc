/**
 * @file
 * Tests for the work-stealing thread pool: completion guarantees,
 * nested submission, stealing under contention, exception capture
 * and lifecycle. Run these under -DLAG_SANITIZE=thread (`ctest -L
 * engine` in such a build) to audit the locking discipline.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <stdexcept>
#include <thread>
#include <vector>

#include "engine/pool.hh"

namespace lag::engine
{
namespace
{

TEST(EnginePool, RunsEveryTask)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.workerCount(), 4u);

    std::atomic<int> count{0};
    constexpr int kTasks = 2000;
    for (int i = 0; i < kTasks; ++i)
        pool.submit([&count] { ++count; });
    pool.waitIdle();
    EXPECT_EQ(count.load(), kTasks);
}

TEST(EnginePool, DefaultConcurrencyAtLeastOne)
{
    EXPECT_GE(ThreadPool::defaultConcurrency(), 1u);
    ThreadPool pool; // workers = defaultConcurrency()
    EXPECT_EQ(pool.workerCount(), ThreadPool::defaultConcurrency());
}

TEST(EnginePool, SingleWorkerStillCompletes)
{
    ThreadPool pool(1);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&count] { ++count; });
    pool.waitIdle();
    EXPECT_EQ(count.load(), 100);
}

TEST(EnginePool, TasksCanSubmitTasks)
{
    // waitIdle must cover work submitted from inside workers — the
    // task graph releases dependents exactly this way.
    ThreadPool pool(3);
    std::atomic<int> count{0};
    for (int i = 0; i < 50; ++i) {
        pool.submit([&pool, &count] {
            ++count;
            pool.submit([&pool, &count] {
                ++count;
                pool.submit([&count] { ++count; });
            });
        });
    }
    pool.waitIdle();
    EXPECT_EQ(count.load(), 150);
}

TEST(EnginePool, StealsUnderContention)
{
    // One long task occupies a worker while short ones pile up
    // behind it; with stealing, the other workers drain them long
    // before the sleeper finishes.
    ThreadPool pool(4);
    std::atomic<int> shortDone{0};
    std::atomic<bool> release{false};

    pool.submit([&pool, &shortDone, &release] {
        // Submitted from a worker → lands on its own deque; the
        // other workers must steal these to make progress.
        for (int i = 0; i < 200; ++i)
            pool.submit([&shortDone] { ++shortDone; });
        while (!release.load())
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
    });

    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(30);
    while (shortDone.load() < 200 &&
           std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    EXPECT_EQ(shortDone.load(), 200)
        << "short tasks were not stolen while a worker was busy";
    release.store(true);
    pool.waitIdle();
}

TEST(EnginePool, WaitIdleRethrowsFirstTaskException)
{
    ThreadPool pool(2);
    std::atomic<int> ran{0};
    for (int i = 0; i < 20; ++i) {
        pool.submit([&ran, i] {
            ++ran;
            if (i == 7)
                throw std::runtime_error("task 7 failed");
        });
    }
    EXPECT_THROW(pool.waitIdle(), std::runtime_error);
    EXPECT_EQ(ran.load(), 20) << "one failure must not stop the rest";

    // The error was consumed; the pool stays usable.
    pool.submit([&ran] { ++ran; });
    pool.waitIdle();
    EXPECT_EQ(ran.load(), 21);
}

TEST(EnginePool, DestructorDrainsOutstandingWork)
{
    std::atomic<int> count{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 500; ++i)
            pool.submit([&count] { ++count; });
        // No waitIdle: the destructor must drain before joining.
    }
    EXPECT_EQ(count.load(), 500);
}

TEST(EnginePool, RepeatedConstructDestruct)
{
    for (int round = 0; round < 20; ++round) {
        ThreadPool pool(2);
        std::atomic<int> count{0};
        for (int i = 0; i < 20; ++i)
            pool.submit([&count] { ++count; });
        pool.waitIdle();
        EXPECT_EQ(count.load(), 20);
    }
}

TEST(EnginePool, ManyExternalSubmitters)
{
    // Several non-worker threads hammer the injector queue at once.
    ThreadPool pool(3);
    std::atomic<int> count{0};
    std::vector<std::thread> submitters;
    for (int t = 0; t < 4; ++t) {
        submitters.emplace_back([&pool, &count] {
            for (int i = 0; i < 250; ++i)
                pool.submit([&count] { ++count; });
        });
    }
    for (auto &thread : submitters)
        thread.join();
    pool.waitIdle();
    EXPECT_EQ(count.load(), 1000);
}

} // namespace
} // namespace lag::engine
