/**
 * @file
 * Tests for the Session builder: interval-tree construction, nesting
 * validation, GC copies, episode extraction and sample ranges.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/session.hh"
#include "trace_builder.hh"

namespace lag::core
{
namespace
{

using trace::IntervalKind;
using trace::TraceError;
using trace::TraceGcKind;
using trace::TraceThreadState;

TEST(SessionTest, BuildsSimpleEpisodeTree)
{
    test::TraceBuilder builder;
    builder.dispatchBegin(msToNs(10))
        .intervalBegin(msToNs(11), IntervalKind::Listener, "app.A",
                       "act")
        .intervalBegin(msToNs(12), IntervalKind::Paint, "app.B",
                       "paint")
        .intervalEnd(msToNs(15), IntervalKind::Paint)
        .intervalEnd(msToNs(18), IntervalKind::Listener)
        .dispatchEnd(msToNs(20));
    const Session session = builder.buildSession(secToNs(1));

    ASSERT_EQ(session.episodes().size(), 1u);
    const Episode &episode = session.episodes()[0];
    EXPECT_EQ(episode.duration(), msToNs(10));
    const IntervalNode &root = session.episodeRoot(episode);
    EXPECT_EQ(root.type, IntervalType::Dispatch);
    ASSERT_EQ(root.children.size(), 1u);
    const IntervalNode &listener = root.children[0];
    EXPECT_EQ(listener.type, IntervalType::Listener);
    EXPECT_EQ(session.symbol(listener.classSym), "app.A");
    ASSERT_EQ(listener.children.size(), 1u);
    EXPECT_EQ(listener.children[0].type, IntervalType::Paint);
    EXPECT_EQ(listener.children[0].duration(), msToNs(3));
}

TEST(SessionTest, SiblingIntervalsStaySiblings)
{
    test::TraceBuilder builder;
    builder.dispatchBegin(0)
        .intervalBegin(1, IntervalKind::Paint, "a.P1", "paint")
        .intervalEnd(msToNs(4), IntervalKind::Paint)
        .intervalBegin(msToNs(5), IntervalKind::Paint, "a.P2", "paint")
        .intervalEnd(msToNs(9), IntervalKind::Paint)
        .dispatchEnd(msToNs(10));
    const Session session = builder.buildSession(secToNs(1));
    const IntervalNode &root =
        session.episodeRoot(session.episodes()[0]);
    ASSERT_EQ(root.children.size(), 2u);
    EXPECT_EQ(session.symbol(root.children[0].classSym), "a.P1");
    EXPECT_EQ(session.symbol(root.children[1].classSym), "a.P2");
}

TEST(SessionTest, GcCopiedToEveryThread)
{
    test::TraceBuilder builder;
    const ThreadId worker = builder.addThread("Worker");
    builder.gc(msToNs(10), msToNs(25), TraceGcKind::Major);
    const Session session = builder.buildSession(secToNs(1));

    ASSERT_EQ(session.threads().size(), 2u);
    for (const auto &tree : session.threads()) {
        ASSERT_EQ(tree.roots.size(), 1u)
            << "thread " << tree.name << " missing its GC copy";
        EXPECT_EQ(tree.roots[0].type, IntervalType::Gc);
        EXPECT_EQ(tree.roots[0].gcKind, TraceGcKind::Major);
        EXPECT_EQ(tree.roots[0].duration(), msToNs(15));
    }
    (void)worker;
}

TEST(SessionTest, GcNestsIntoDeepestContainingInterval)
{
    // The paper's Figure 1: a GC inside a native call inside paints.
    test::TraceBuilder builder;
    builder.dispatchBegin(0)
        .intervalBegin(msToNs(1), IntervalKind::Paint, "s.JFrame",
                       "paint")
        .intervalBegin(msToNs(2), IntervalKind::Native,
                       "sun.java2d.loops.DrawLine", "DrawLine")
        .gc(msToNs(3), msToNs(9), TraceGcKind::Minor)
        .intervalEnd(msToNs(12), IntervalKind::Native)
        .intervalEnd(msToNs(14), IntervalKind::Paint)
        .dispatchEnd(msToNs(15));
    const Session session = builder.buildSession(secToNs(1));
    const IntervalNode &root =
        session.episodeRoot(session.episodes()[0]);
    const IntervalNode &paint = root.children.at(0);
    const IntervalNode &native = paint.children.at(0);
    ASSERT_EQ(native.type, IntervalType::Native);
    ASSERT_EQ(native.children.size(), 1u);
    EXPECT_EQ(native.children[0].type, IntervalType::Gc);
    EXPECT_EQ(native.children[0].duration(), msToNs(6));
}

TEST(SessionTest, GcBetweenEpisodesBecomesRoot)
{
    test::TraceBuilder builder;
    builder.dispatchBegin(0).dispatchEnd(msToNs(5));
    builder.gc(msToNs(10), msToNs(20));
    builder.dispatchBegin(msToNs(30)).dispatchEnd(msToNs(35));
    const Session session = builder.buildSession(secToNs(1));
    const auto &roots = session.threadTree(0).roots;
    ASSERT_EQ(roots.size(), 3u);
    EXPECT_EQ(roots[0].type, IntervalType::Dispatch);
    EXPECT_EQ(roots[1].type, IntervalType::Gc);
    EXPECT_EQ(roots[2].type, IntervalType::Dispatch);
    // Only the dispatches are episodes.
    EXPECT_EQ(session.episodes().size(), 2u);
}

TEST(SessionTest, SampleRangesAssigned)
{
    test::TraceBuilder builder;
    builder.sample(msToNs(5), TraceThreadState::Runnable);  // before
    builder.dispatchBegin(msToNs(10)).dispatchEnd(msToNs(30));
    builder.rawSample([] {
        trace::TraceSample s;
        s.time = msToNs(15);
        return s;
    }());
    builder.rawSample([] {
        trace::TraceSample s;
        s.time = msToNs(25);
        return s;
    }());
    builder.rawSample([] {
        trace::TraceSample s;
        s.time = msToNs(40);
        return s;
    }());
    const Session session = builder.buildSession(secToNs(1));
    const Episode &episode = session.episodes()[0];
    EXPECT_EQ(episode.firstSample, 1u);
    EXPECT_EQ(episode.lastSample, 3u);
}

TEST(SessionTest, PerceptibleCount)
{
    test::TraceBuilder builder;
    builder.dispatchBegin(0).dispatchEnd(msToNs(50));
    builder.dispatchBegin(msToNs(60)).dispatchEnd(msToNs(200));
    builder.dispatchBegin(msToNs(210)).dispatchEnd(msToNs(310));
    const Session session = builder.buildSession(secToNs(1));
    EXPECT_EQ(session.perceptibleCount(msToNs(100)), 2u);
    EXPECT_EQ(session.perceptibleCount(msToNs(500)), 0u);
}

TEST(SessionTest, UnterminatedIntervalRejected)
{
    test::TraceBuilder builder;
    builder.dispatchBegin(0).intervalBegin(
        1, IntervalKind::Listener, "a.A", "m");
    EXPECT_THROW(builder.buildSession(secToNs(1)), TraceError);
}

TEST(SessionTest, MismatchedEndTypeRejected)
{
    test::TraceBuilder builder;
    builder.dispatchBegin(0)
        .intervalBegin(1, IntervalKind::Listener, "a.A", "m")
        .dispatchEnd(msToNs(5)); // ends dispatch with listener open
    EXPECT_THROW(builder.buildSession(secToNs(1)), TraceError);
}

TEST(SessionTest, EndWithoutBeginRejected)
{
    test::TraceBuilder builder;
    builder.intervalEnd(msToNs(5), IntervalKind::Paint);
    EXPECT_THROW(builder.buildSession(secToNs(1)), TraceError);
}

TEST(SessionTest, GcCrossingIntervalBoundaryRejected)
{
    // A GC that overlaps an interval without containment means the
    // world was not stopped — the trace is inconsistent.
    test::TraceBuilder builder;
    builder.dispatchBegin(0)
        .intervalBegin(msToNs(1), IntervalKind::Paint, "a.P", "paint")
        .intervalEnd(msToNs(10), IntervalKind::Paint)
        .dispatchEnd(msToNs(11));
    builder.raw().events.push_back([] {
        trace::TraceEvent e;
        e.type = trace::EventType::GcBegin;
        e.time = msToNs(5);
        return e;
    }());
    builder.raw().events.push_back([] {
        trace::TraceEvent e;
        e.type = trace::EventType::GcEnd;
        e.time = msToNs(20);
        return e;
    }());
    // Re-sort events by time so validate() passes and the builder
    // sees a GC crossing the paint boundary.
    auto &events = builder.raw().events;
    std::stable_sort(events.begin(), events.end(),
                     [](const trace::TraceEvent &a,
                        const trace::TraceEvent &b) {
                         return a.time < b.time;
                     });
    EXPECT_THROW(builder.buildSession(secToNs(1)), TraceError);
}

TEST(SessionTest, OverlappingGcRejected)
{
    test::TraceBuilder builder;
    auto &events = builder.raw().events;
    trace::TraceEvent b1;
    b1.type = trace::EventType::GcBegin;
    b1.time = 10;
    trace::TraceEvent b2 = b1;
    b2.time = 20;
    events.push_back(b1);
    events.push_back(b2);
    EXPECT_THROW(builder.buildSession(secToNs(1)), TraceError);
}

TEST(SessionTest, GuiThreadLookup)
{
    test::TraceBuilder builder;
    builder.addThread("W");
    const Session session = builder.buildSession(secToNs(1));
    EXPECT_EQ(session.guiThread(), 0u);
    EXPECT_THROW(session.threadTree(99), TraceError);
}

TEST(SessionTest, EpisodesSortedByBeginAcrossSamples)
{
    test::TraceBuilder builder;
    for (int i = 0; i < 5; ++i) {
        builder.dispatchBegin(msToNs(10 * i))
            .dispatchEnd(msToNs(10 * i + 5));
    }
    const Session session = builder.buildSession(secToNs(1));
    ASSERT_EQ(session.episodes().size(), 5u);
    for (std::size_t i = 1; i < 5; ++i) {
        EXPECT_GT(session.episodes()[i].begin,
                  session.episodes()[i - 1].begin);
    }
}

TEST(IntervalNodeTest, TypeTimeSkipsNestedSameType)
{
    IntervalNode root;
    root.type = IntervalType::Dispatch;
    root.begin = 0;
    root.end = 100;
    IntervalNode outer_native;
    outer_native.type = IntervalType::Native;
    outer_native.begin = 10;
    outer_native.end = 50;
    IntervalNode inner_native;
    inner_native.type = IntervalType::Native;
    inner_native.begin = 20;
    inner_native.end = 30;
    outer_native.children.push_back(inner_native);
    root.children.push_back(outer_native);
    // Inner native must not be double counted.
    EXPECT_EQ(root.typeTime(IntervalType::Native), 40);
    EXPECT_EQ(root.typeTime(IntervalType::Gc), 0);
}

TEST(IntervalNodeTest, DescendantsAndDepth)
{
    test::TraceBuilder builder;
    builder.dispatchBegin(0)
        .intervalBegin(1, IntervalKind::Listener, "a.A", "m")
        .intervalBegin(2, IntervalKind::Paint, "a.B", "m")
        .intervalEnd(3, IntervalKind::Paint)
        .intervalBegin(4, IntervalKind::Paint, "a.C", "m")
        .intervalEnd(5, IntervalKind::Paint)
        .intervalEnd(6, IntervalKind::Listener)
        .dispatchEnd(7);
    const Session session = builder.buildSession(secToNs(1));
    const IntervalNode &root =
        session.episodeRoot(session.episodes()[0]);
    EXPECT_EQ(root.descendantCount(), 3u);
    EXPECT_EQ(root.depth(), 3u);
}

} // namespace
} // namespace lag::core
