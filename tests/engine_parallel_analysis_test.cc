/**
 * @file
 * Within-session parallel analysis: sharding math, and the
 * deterministic-merge contract — the sharded analysis serializes
 * byte-identically to the serial path at any worker count, whether
 * the trace was decoded via mmap or a stream and whether the
 * session was built on an arena or the heap.
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "app/study.hh"
#include "core/pattern.hh"
#include "engine/parallel_analysis.hh"
#include "engine/pool.hh"
#include "engine/result_cache.hh"
#include "trace/io.hh"

namespace lag::engine
{
namespace
{

namespace fs = std::filesystem;

/** Scoped cache directory: clean before and after the test. */
struct CacheDir
{
    std::string path;

    explicit CacheDir(std::string p) : path(std::move(p))
    {
        fs::remove_all(path);
    }

    ~CacheDir() { fs::remove_all(path); }
};

/** One short quick-study session to analyze. */
core::Session
testSession(const std::string &cache_dir)
{
    app::StudyConfig config = app::StudyConfig::quickStudy(5);
    config.apps.resize(1);
    config.cacheDir = cache_dir;
    config.jobs = 2;
    app::Study study(config);
    study.ensureTraces();
    return study.loadSession(0, 0);
}

TEST(EpisodeShards, CoverContiguouslyAndEvenly)
{
    const auto ranges = episodeShards(10, 3);
    ASSERT_EQ(ranges.size(), 3u);
    // Remainder episodes land in the first shards.
    EXPECT_EQ(ranges[0], (std::pair<std::size_t, std::size_t>{0, 4}));
    EXPECT_EQ(ranges[1], (std::pair<std::size_t, std::size_t>{4, 7}));
    EXPECT_EQ(ranges[2],
              (std::pair<std::size_t, std::size_t>{7, 10}));
}

TEST(EpisodeShards, DegenerateInputs)
{
    // No episodes: one empty range, never zero ranges.
    auto ranges = episodeShards(0, 4);
    ASSERT_EQ(ranges.size(), 1u);
    EXPECT_EQ(ranges[0], (std::pair<std::size_t, std::size_t>{0, 0}));

    // More shards than episodes: one episode per shard.
    ranges = episodeShards(3, 16);
    ASSERT_EQ(ranges.size(), 3u);
    for (std::size_t k = 0; k < ranges.size(); ++k) {
        EXPECT_EQ(ranges[k].first, k);
        EXPECT_EQ(ranges[k].second, k + 1);
    }

    // Zero shard count coerces to one covering range.
    ranges = episodeShards(5, 0);
    ASSERT_EQ(ranges.size(), 1u);
    EXPECT_EQ(ranges[0], (std::pair<std::size_t, std::size_t>{0, 5}));
}

TEST(EpisodeShards, ShardCountScalesWithWorkersAndWork)
{
    // Serial pool or tiny sessions: never shard.
    EXPECT_EQ(shardCountFor(1, 100000), 1u);
    EXPECT_EQ(shardCountFor(8, 10), 1u);
    EXPECT_EQ(shardCountFor(8, 127), 1u);

    // Enough work: bounded by both worker fan-out and shard size.
    EXPECT_EQ(shardCountFor(2, 100000), 8u);
    EXPECT_EQ(shardCountFor(8, 256), 4u);
}

TEST(ParallelAnalysis, ByteIdenticalAcrossWorkerCounts)
{
    const CacheDir dir("lagalyzer-cache-test-par-analysis");
    const core::Session session = testSession(dir.path);
    const DurationNs threshold = msToNs(100);

    const std::string serial = serializeSessionAnalysis(
        analyzeSession(session, threshold));

    for (const std::uint32_t jobs : {1u, 2u, 8u}) {
        ThreadPool pool(jobs);
        const std::string parallel = serializeSessionAnalysis(
            analyzeSessionParallel(session, threshold, pool));
        EXPECT_EQ(parallel, serial)
            << "analysis diverges at jobs=" << jobs;
    }
}

TEST(ParallelAnalysis, MinedPatternsMatchSerialMiner)
{
    const CacheDir dir("lagalyzer-cache-test-par-mine");
    const core::Session session = testSession(dir.path);
    const DurationNs threshold = msToNs(100);

    const core::PatternMiner miner(threshold);
    const core::PatternSet serial = miner.mine(session);

    ThreadPool pool(8);
    const core::PatternSet parallel =
        minePatternsParallel(session, threshold, pool);

    ASSERT_EQ(parallel.patterns.size(), serial.patterns.size());
    for (std::size_t i = 0; i < serial.patterns.size(); ++i) {
        const core::Pattern &a = serial.patterns[i];
        const core::Pattern &b = parallel.patterns[i];
        EXPECT_EQ(b.key, a.key) << "pattern " << i;
        EXPECT_EQ(b.signature, a.signature) << "pattern " << i;
        EXPECT_EQ(b.episodes, a.episodes) << "pattern " << i;
        EXPECT_EQ(b.occurrence, a.occurrence) << "pattern " << i;
        EXPECT_EQ(b.minLag, a.minLag) << "pattern " << i;
        EXPECT_EQ(b.maxLag, a.maxLag) << "pattern " << i;
        EXPECT_EQ(b.totalLag, a.totalLag) << "pattern " << i;
        EXPECT_EQ(b.perceptibleCount, a.perceptibleCount)
            << "pattern " << i;
        EXPECT_EQ(b.firstPerceptible, a.firstPerceptible)
            << "pattern " << i;
        EXPECT_EQ(b.descendants, a.descendants) << "pattern " << i;
        EXPECT_EQ(b.depth, a.depth) << "pattern " << i;
    }
    EXPECT_EQ(parallel.coveredEpisodes, serial.coveredEpisodes);
    EXPECT_EQ(parallel.structurelessEpisodes,
              serial.structurelessEpisodes);
}

TEST(ParallelAnalysis, MappedAndStreamDecodesAnalyzeIdentically)
{
    const CacheDir dir("lagalyzer-cache-test-par-mmap");
    app::StudyConfig config = app::StudyConfig::quickStudy(5);
    config.apps.resize(1);
    config.cacheDir = dir.path;
    app::Study study(config);
    const auto paths = study.ensureTraces();
    const std::string &path = paths[0][0];

    const trace::Trace mapped =
        trace::readTraceFile(path, trace::TraceReadMode::Mapped);
    const trace::Trace streamed =
        trace::readTraceFile(path, trace::TraceReadMode::Stream);

    const DurationNs threshold = msToNs(100);
    const std::string a = serializeSessionAnalysis(analyzeSession(
        core::Session::fromTrace(mapped), threshold));
    const std::string b = serializeSessionAnalysis(analyzeSession(
        core::Session::fromTrace(streamed), threshold));
    EXPECT_EQ(a, b);
}

TEST(ParallelAnalysis, ArenaAndHeapSessionsAnalyzeIdentically)
{
    const CacheDir dir("lagalyzer-cache-test-par-arena");
    app::StudyConfig config = app::StudyConfig::quickStudy(5);
    config.apps.resize(1);
    config.cacheDir = dir.path;
    app::Study study(config);
    const auto paths = study.ensureTraces();
    const trace::Trace traceData = trace::readTraceFile(paths[0][0]);

    core::SessionBuildOptions heap;
    heap.useArena = false;
    const core::Session arenaSession =
        core::Session::fromTrace(traceData);
    const core::Session heapSession =
        core::Session::fromTrace(traceData, heap);
    EXPECT_NE(arenaSession.arena(), nullptr);
    EXPECT_EQ(heapSession.arena(), nullptr);

    const DurationNs threshold = msToNs(100);
    EXPECT_EQ(serializeSessionAnalysis(
                  analyzeSession(arenaSession, threshold)),
              serializeSessionAnalysis(
                  analyzeSession(heapSession, threshold)));
}

} // namespace
} // namespace lag::engine
