/**
 * @file
 * Edge-case tests for the simulated JVM: wakeups racing with
 * collections, back-to-back GCs, instrumentation overhead, slice
 * renewal, and GUI-queue bookkeeping.
 */

#include <gtest/gtest.h>

#include "jvm/vm.hh"
#include "jvm_test_util.hh"

namespace lag::jvm
{
namespace
{

using test::HookRecord;
using test::RecordingListener;
using test::ScriptedProgram;

JvmConfig
quiet()
{
    JvmConfig config;
    config.seed = 77;
    config.dispatchOverhead = 0;
    config.heap.youngCapacityBytes = 1ull << 40;
    return config;
}

GuiEvent
burner(DurationNs cost, std::uint64_t alloc = 0)
{
    ActivityBuilder handler(ActivityKind::Listener, "app.H", "act");
    handler.cost(cost);
    handler.alloc(alloc);
    GuiEvent event;
    event.handler = std::move(handler).buildShared();
    return event;
}

TEST(JvmEdgeTest, SleeperWakingDuringGcResumesAfterwards)
{
    JvmConfig config = quiet();
    config.heap.youngCapacityBytes = 1 << 20;
    config.heap.minorPauseMedian = msToNs(50);
    config.heap.minorPauseMin = msToNs(50);
    config.heap.minorPauseMax = msToNs(50);
    RecordingListener listener;
    Jvm vm(config, listener);
    vm.createEventDispatchThread();
    // A sleeper whose wake lands inside the collection.
    ActivityBuilder napper(ActivityKind::Plain, "bg.Napper", "nap");
    napper.cost(usToNs(100));
    napper.sleep(msToNs(20));
    std::deque<ProgramStep> steps;
    steps.push_back(
        ProgramStep::runActivity(std::move(napper).buildShared()));
    const ThreadId sleeper = vm.createThread(
        "sleeper", false,
        std::make_shared<ScriptedProgram>(std::move(steps)));
    vm.start();
    // Trigger a GC right away: allocation-heavy episode.
    vm.eventQueue().scheduleAfter(msToNs(1), [&vm] {
        vm.postGuiEvent(burner(msToNs(30), 8 << 20));
    });
    vm.run(secToNs(2));
    EXPECT_GE(vm.stats().minorGcs, 1u);
    EXPECT_EQ(vm.thread(sleeper).state(), ThreadState::Terminated)
        << "the sleeper must finish its work after the collection";
}

TEST(JvmEdgeTest, BackToBackCollections)
{
    JvmConfig config = quiet();
    config.heap.youngCapacityBytes = 1 << 20;
    RecordingListener listener;
    Jvm vm(config, listener);
    vm.createEventDispatchThread();
    vm.start();
    // 64 MB of allocation through a 1 MB young generation: dozens of
    // collections in quick succession.
    vm.eventQueue().scheduleAfter(msToNs(1), [&vm] {
        vm.postGuiEvent(burner(msToNs(200), 64 << 20));
    });
    vm.run(secToNs(10));
    EXPECT_GE(vm.stats().minorGcs, 30u);
    EXPECT_EQ(listener.count(HookRecord::Kind::GcBegin),
              listener.count(HookRecord::Kind::GcEnd));
    EXPECT_EQ(listener.count(HookRecord::Kind::DispatchEnd), 1u)
        << "the episode must complete despite the GC storm";
}

TEST(JvmEdgeTest, PromotionEventuallyForcesMajor)
{
    JvmConfig config = quiet();
    config.heap.youngCapacityBytes = 1 << 20;
    config.heap.oldCapacityBytes = 512 << 10;
    config.heap.promoteFraction = 0.25;
    RecordingListener listener;
    Jvm vm(config, listener);
    vm.createEventDispatchThread();
    vm.start();
    vm.eventQueue().scheduleAfter(msToNs(1), [&vm] {
        vm.postGuiEvent(burner(msToNs(400), 32 << 20));
    });
    vm.run(secToNs(20));
    EXPECT_GE(vm.stats().majorGcs, 1u)
        << "promoted survivors must fill the old generation";
}

TEST(JvmEdgeTest, InstrumentationOverheadLengthensIntervals)
{
    const auto measure = [](DurationNs overhead) {
        JvmConfig config;
        config.seed = 5;
        config.dispatchOverhead = 0;
        config.heap.youngCapacityBytes = 1ull << 40;
        config.instrumentationOverhead = overhead;
        RecordingListener listener;
        Jvm vm(config, listener);
        vm.createEventDispatchThread();
        vm.start();
        vm.eventQueue().scheduleAfter(msToNs(1), [&vm] {
            ActivityBuilder handler(ActivityKind::Listener, "app.H",
                                    "act");
            handler.cost(msToNs(10));
            handler.child(ActivityBuilder(ActivityKind::Paint,
                                          "app.P", "paint")
                              .cost(msToNs(5)));
            GuiEvent event;
            event.handler = std::move(handler).buildShared();
            vm.postGuiEvent(event);
        });
        vm.run(secToNs(1));
        TimeNs begin = 0;
        TimeNs end = 0;
        for (const auto &record : listener.records) {
            if (record.kind == HookRecord::Kind::DispatchBegin)
                begin = record.time;
            if (record.kind == HookRecord::Kind::DispatchEnd)
                end = record.time;
        }
        return end - begin;
    };
    const DurationNs plain = measure(0);
    const DurationNs perturbed = measure(usToNs(500));
    // Two instrumented nodes (listener + paint) at 500 us each.
    EXPECT_EQ(perturbed - plain, msToNs(1));
}

TEST(JvmEdgeTest, SliceRenewalWhenAlone)
{
    // A lone thread with work far beyond one slice must finish in
    // exactly its CPU demand (no self-preemption penalty).
    JvmConfig config = quiet();
    config.timeSlice = msToNs(2);
    RecordingListener listener;
    Jvm vm(config, listener);
    ActivityBuilder work(ActivityKind::Plain, "bg.W", "run");
    work.cost(msToNs(50));
    std::deque<ProgramStep> steps;
    steps.push_back(
        ProgramStep::runActivity(std::move(work).buildShared()));
    const ThreadId id = vm.createThread(
        "solo", false,
        std::make_shared<ScriptedProgram>(std::move(steps)));
    vm.start();
    vm.run(msToNs(50));
    EXPECT_EQ(vm.thread(id).state(), ThreadState::Terminated);
    EXPECT_EQ(vm.stats().contextSwitches, 0u);
}

TEST(JvmEdgeTest, GuiQueueBacklogDrains)
{
    RecordingListener listener;
    Jvm vm(quiet(), listener);
    vm.createEventDispatchThread();
    vm.start();
    vm.eventQueue().scheduleAfter(msToNs(1), [&vm] {
        for (int i = 0; i < 50; ++i)
            vm.postGuiEvent(burner(msToNs(3)));
    });
    vm.run(secToNs(1));
    EXPECT_EQ(vm.stats().dispatches, 50u);
    EXPECT_TRUE(vm.guiQueue().empty());
    EXPECT_EQ(vm.guiQueue().maxDepth(), 50u)
        << "the backlog high-water mark must be visible";
    EXPECT_EQ(vm.guiQueue().totalPosted(), 50u);
}

TEST(JvmEdgeTest, ManyThreadsManyMonitorsNoDeadlock)
{
    JvmConfig config = quiet();
    config.cores = 2;
    RecordingListener listener;
    Jvm vm(config, listener);
    for (int t = 0; t < 6; ++t) {
        std::deque<ProgramStep> steps;
        for (int i = 0; i < 10; ++i) {
            ActivityBuilder work(ActivityKind::Plain, "bg.W", "run");
            work.cost(msToNs(1));
            work.monitor(t % 2); // two contended monitors
            steps.push_back(ProgramStep::runActivity(
                std::move(work).buildShared()));
        }
        vm.createThread("w-" + std::to_string(t), false,
                        std::make_shared<ScriptedProgram>(
                            std::move(steps)));
    }
    vm.start();
    vm.run(secToNs(2));
    for (const auto &thread : vm.threads()) {
        EXPECT_EQ(thread->state(), ThreadState::Terminated)
            << thread->name();
    }
}

} // namespace
} // namespace lag::jvm
