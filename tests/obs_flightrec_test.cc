/**
 * @file
 * Flight-recorder tests: configure-once semantics, the bounded
 * request/event rings (wrap, most-recent-first reads), live JSON
 * and crash-dump output both passing the strict flightrec shape
 * checker, the /debugz/requests trace filter, and the per-request
 * span tree (containment nesting across scopes).
 *
 * The recorder is a process-wide singleton configured on first call,
 * so every test funnels through configuredRecorder() — whichever
 * test runs first (or alone, under ctest's per-case processes) arms
 * the same small rings.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/flightrec.hh"
#include "obs/json_check.hh"
#include "obs/span.hh"
#include "obs/trace_context.hh"
#include "util/shutdown.hh"
#include "util/thread_name.hh"

namespace
{

using namespace lag;

constexpr const char *kDumpPath =
    "lagalyzer-flightrec-test.flightrec";

/** Configure (first call wins) and return the recorder. */
obs::FlightRecorder &
configuredRecorder()
{
    obs::FlightRecorderOptions options;
    options.spanCapacity = 64;
    options.eventCapacity = 8;
    options.requestCapacity = 4;
    options.dumpPath = kDumpPath;
    obs::FlightRecorder::instance().configure(options);
    return obs::FlightRecorder::instance();
}

/** RAII guard so a failing test cannot leak spans-enabled state. */
struct SpansOn
{
    SpansOn() { obs::setSpansEnabled(true); }
    ~SpansOn() { obs::setSpansEnabled(false); }
};

obs::RequestSummary
makeRequest(const std::string &target,
            const obs::TraceContext &ctx, int status = 200)
{
    obs::RequestSummary summary;
    summary.method = "GET";
    summary.target = target;
    summary.trace = ctx;
    summary.startNs = processElapsedNs();
    summary.durUs = 42;
    summary.status = status;
    return summary;
}

TEST(Flightrec, ConfigureFirstCallWins)
{
    obs::FlightRecorder &rec = configuredRecorder();
    EXPECT_TRUE(rec.armed());
    EXPECT_EQ(obs::armedFlightRecorder(), &rec);
    EXPECT_STREQ(rec.dumpPath(), kDumpPath);

    // A second configure with different options must be ignored:
    // rings never reallocate under concurrent writers.
    obs::FlightRecorderOptions other;
    other.requestCapacity = 999;
    other.dumpPath = "somewhere-else.flightrec";
    rec.configure(other);
    EXPECT_STREQ(rec.dumpPath(), kDumpPath);
}

TEST(Flightrec, RequestRingKeepsMostRecentFirst)
{
    obs::FlightRecorder &rec = configuredRecorder();
    for (int i = 0; i < 6; ++i)
        rec.recordRequest(makeRequest(
            "/ring-wrap-" + std::to_string(i),
            obs::mintTraceContext()));

    const std::vector<obs::RequestSummary> recent =
        rec.recentRequests();
    ASSERT_EQ(recent.size(), 4u); // ring capacity
    EXPECT_EQ(recent[0].target, "/ring-wrap-5");
    EXPECT_EQ(recent[1].target, "/ring-wrap-4");
    EXPECT_EQ(recent[3].target, "/ring-wrap-2");
    EXPECT_EQ(recent[0].status, 200);
    EXPECT_TRUE(recent[0].trace.active());
}

TEST(Flightrec, RequestsJsonFilterSelectsOneTraceWithItsSpans)
{
    obs::FlightRecorder &rec = configuredRecorder();
    const SpansOn on;

    const obs::TraceContext wanted = obs::mintTraceContext();
    const obs::TraceContext other = obs::mintTraceContext();
    {
        obs::TraceContextScope scope(wanted);
        LAG_SPAN("test.flightrec.filtered-span");
    }
    rec.recordRequest(makeRequest("/filter-wanted", wanted));
    rec.recordRequest(makeRequest("/filter-other", other, 404));

    const std::string all = rec.requestsJson(nullptr);
    EXPECT_TRUE(obs::checkJson(all).ok) << all;
    EXPECT_NE(all.find("/filter-wanted"), std::string::npos);
    EXPECT_NE(all.find("/filter-other"), std::string::npos);

    const std::string filtered = rec.requestsJson(&wanted);
    EXPECT_TRUE(obs::checkJson(filtered).ok) << filtered;
    EXPECT_NE(filtered.find("/filter-wanted"), std::string::npos);
    EXPECT_EQ(filtered.find("/filter-other"), std::string::npos);
    EXPECT_NE(filtered.find(obs::traceIdHex(wanted)),
              std::string::npos);
    // The filtered view carries the request's span tree.
    EXPECT_NE(filtered.find("\"spans\""), std::string::npos);
    EXPECT_NE(filtered.find("test.flightrec.filtered-span"),
              std::string::npos);
}

TEST(Flightrec, EventRingWrapsAndLiveJsonStaysValid)
{
    obs::FlightRecorder &rec = configuredRecorder();
    for (int i = 0; i < 20; ++i)
        rec.recordEvent("test-flightrec-wrap-event",
                        "detail-a", "detail-b");
    rec.recordEvent("test-flightrec-last-event");

    const std::string live = rec.liveJson();
    const obs::JsonCheckResult result = obs::checkFlightrec(live);
    EXPECT_TRUE(result.ok)
        << result.message << " at byte " << result.errorOffset
        << "\n" << live;
    EXPECT_NE(live.find("test-flightrec-last-event"),
              std::string::npos);
    EXPECT_NE(live.find("\"flightrec\""), std::string::npos);
}

TEST(Flightrec, SpanTreeNestsByContainment)
{
    configuredRecorder();
    const SpansOn on;
    const obs::TraceContext ctx = obs::mintTraceContext();
    {
        obs::TraceContextScope scope(ctx);
        LAG_SPAN("test.flightrec.tree-outer");
        {
            LAG_SPAN("test.flightrec.tree-inner");
        }
    }

    const std::string json = obs::spanTreeJson(ctx);
    EXPECT_TRUE(obs::checkJson(json).ok) << json;
    EXPECT_NE(json.find(obs::traceIdHex(ctx)), std::string::npos);
    const std::size_t outer =
        json.find("test.flightrec.tree-outer");
    const std::size_t inner =
        json.find("test.flightrec.tree-inner");
    ASSERT_NE(outer, std::string::npos);
    ASSERT_NE(inner, std::string::npos);
    // The outer span sorts first (earlier start) at depth 0; the
    // contained span nests at depth 1.
    EXPECT_LT(outer, inner);
    EXPECT_NE(json.find("\"depth\": 0"), std::string::npos)
        << json;
    EXPECT_NE(json.find("\"depth\": 1"), std::string::npos)
        << json;

    const std::string text = obs::spanTreeText(ctx);
    EXPECT_NE(text.find("test.flightrec.tree-outer"),
              std::string::npos);
    EXPECT_NE(text.find("  test.flightrec.tree-inner"),
              std::string::npos);
}

TEST(Flightrec, SpansReachTheRingEvenWithoutContext)
{
    configuredRecorder();
    const SpansOn on;
    {
        LAG_SPAN("test.flightrec.ringfeed");
    }
    const std::string live =
        obs::FlightRecorder::instance().liveJson();
    EXPECT_NE(live.find("test.flightrec.ringfeed"),
              std::string::npos)
        << live;
}

TEST(Flightrec, DumpToPathWritesValidCrashDump)
{
    obs::FlightRecorder &rec = configuredRecorder();
    const obs::TraceContext ctx = obs::mintTraceContext();
    rec.recordRequest(makeRequest("/crash-dump-req", ctx, 500));
    noteFatal("test-fatal-cause", "detail-one", "detail-two");

    ASSERT_TRUE(rec.dumpToPath(6));

    std::ifstream in(rec.dumpPath(), std::ios::binary);
    ASSERT_TRUE(in.good());
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string dump = buffer.str();
    std::remove(rec.dumpPath());

    const obs::JsonCheckResult result = obs::checkFlightrec(dump);
    EXPECT_TRUE(result.ok)
        << result.message << " at byte " << result.errorOffset
        << "\n" << dump;
    EXPECT_NE(dump.find("\"signal\": 6"), std::string::npos);
    EXPECT_NE(dump.find("/crash-dump-req"), std::string::npos);
    EXPECT_NE(dump.find(obs::traceIdHex(ctx)), std::string::npos);
    EXPECT_NE(dump.find("test-fatal-cause"), std::string::npos);
}

} // namespace
