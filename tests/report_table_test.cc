/**
 * @file
 * Tests for the text-table and CSV renderers.
 */

#include <gtest/gtest.h>

#include "report/table.hh"
#include "util/logging.hh"

namespace lag::report
{
namespace
{

TEST(TextTableTest, AlignsColumns)
{
    TextTable table;
    table.addColumn("name", Align::Left);
    table.addColumn("value", Align::Right);
    table.addRow({"a", "1"});
    table.addRow({"long-name", "12345"});
    const std::string out = table.render();
    EXPECT_NE(out.find("name       value"), std::string::npos);
    EXPECT_NE(out.find("a              1"), std::string::npos);
    EXPECT_NE(out.find("long-name  12345"), std::string::npos);
}

TEST(TextTableTest, SeparatorRendersRule)
{
    TextTable table;
    table.addColumn("x");
    table.addRow({"1"});
    table.addSeparator();
    table.addRow({"2"});
    const std::string out = table.render();
    // Header rule + explicit separator.
    std::size_t rules = 0;
    std::size_t pos = 0;
    while ((pos = out.find("-\n", pos)) != std::string::npos) {
        ++rules;
        pos += 2;
    }
    EXPECT_EQ(rules, 2u);
}

TEST(TextTableTest, WrongCellCountPanics)
{
    TextTable table;
    table.addColumn("a");
    table.addColumn("b");
    EXPECT_THROW(table.addRow({"only-one"}), PanicError);
}

TEST(TextTableTest, ColumnsAfterRowsPanics)
{
    TextTable table;
    table.addColumn("a");
    table.addRow({"1"});
    EXPECT_THROW(table.addColumn("late"), PanicError);
}

TEST(TextTableTest, CsvEscapesSpecials)
{
    TextTable table;
    table.addColumn("name");
    table.addColumn("note");
    table.addRow({"plain", "a,b"});
    table.addRow({"quoted", "say \"hi\""});
    table.addSeparator();
    const std::string csv = table.renderCsv();
    EXPECT_NE(csv.find("name,note"), std::string::npos);
    EXPECT_NE(csv.find("plain,\"a,b\""), std::string::npos);
    EXPECT_NE(csv.find("quoted,\"say \"\"hi\"\"\""), std::string::npos);
    EXPECT_EQ(csv.find("---"), std::string::npos)
        << "separators must not leak into CSV";
}

TEST(TextTableTest, Counts)
{
    TextTable table;
    table.addColumn("a");
    EXPECT_EQ(table.columnCount(), 1u);
    table.addRow({"1"});
    table.addRow({"2"});
    EXPECT_EQ(table.rowCount(), 2u);
}

} // namespace
} // namespace lag::report
