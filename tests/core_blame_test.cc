/**
 * @file
 * Tests for the blame drill-down (the API form of the paper's
 * "a look at the call stack samples shows..." steps).
 */

#include <gtest/gtest.h>

#include "core/blame.hh"
#include "trace_builder.hh"

namespace lag::core
{
namespace
{

using trace::TraceThreadState;

Session
blameSession()
{
    test::TraceBuilder builder;
    // Perceptible episode with 3 samples: 2 in the Apple combo box
    // (sleeping), 1 in app code (runnable).
    builder.dispatchBegin(msToNs(10)).dispatchEnd(msToNs(210));
    builder.sample(msToNs(20), TraceThreadState::Sleeping,
                   "com.apple.laf.AquaComboBoxButton",
                   "blinkSelection");
    builder.sample(msToNs(30), TraceThreadState::Sleeping,
                   "com.apple.laf.AquaComboBoxButton",
                   "blinkSelection");
    builder.sample(msToNs(40), TraceThreadState::Runnable,
                   "org.euclide.model.Solver", "compute");
    // Imperceptible episode whose samples must be excluded.
    builder.dispatchBegin(msToNs(300)).dispatchEnd(msToNs(320));
    builder.sample(msToNs(310), TraceThreadState::Runnable,
                   "org.euclide.ui.Canvas", "paintComponent");
    return builder.buildSession(secToNs(1));
}

TEST(BlameTest, RanksByInEpisodeSamples)
{
    const Session session = blameSession();
    const auto report = blameReport(session);
    ASSERT_EQ(report.size(), 2u);
    EXPECT_EQ(report[0].symbol, "com.apple.laf.AquaComboBoxButton");
    EXPECT_EQ(report[0].samples, 2u);
    EXPECT_NEAR(report[0].share, 2.0 / 3.0, 1e-9);
    EXPECT_TRUE(report[0].isLibrary);
    EXPECT_EQ(report[0].notRunnableSamples, 2u)
        << "the blink samples were sleeping, not working";
    EXPECT_EQ(report[1].symbol, "org.euclide.model.Solver");
    EXPECT_FALSE(report[1].isLibrary);
    EXPECT_EQ(report[1].notRunnableSamples, 0u);
}

TEST(BlameTest, ByMethodGrouping)
{
    const Session session = blameSession();
    BlameOptions options;
    options.byMethod = true;
    const auto report = blameReport(session, options);
    EXPECT_EQ(report[0].symbol,
              "com.apple.laf.AquaComboBoxButton.blinkSelection");
    EXPECT_TRUE(report[0].isLibrary);
}

TEST(BlameTest, ThresholdZeroIncludesEverything)
{
    const Session session = blameSession();
    BlameOptions options;
    options.perceptibleThreshold = 0;
    const auto report = blameReport(session, options);
    std::size_t total = 0;
    for (const auto &entry : report)
        total += entry.samples;
    EXPECT_EQ(total, 4u);
}

TEST(BlameTest, InclusiveAttributionCountsWholeStack)
{
    const Session session = blameSession();
    BlameOptions options;
    options.innermostOnly = false;
    const auto report = blameReport(session, options);
    // Every sample contributes its Thread.run base frame too.
    bool has_thread_run = false;
    for (const auto &entry : report)
        has_thread_run |= entry.symbol == "java.lang.Thread";
    EXPECT_TRUE(has_thread_run);
}

TEST(BlameTest, LimitTruncates)
{
    const Session session = blameSession();
    BlameOptions options;
    options.limit = 1;
    EXPECT_EQ(blameReport(session, options).size(), 1u);
}

TEST(BlameTest, EpisodesSampledIn)
{
    const Session session = blameSession();
    const auto hits = episodesSampledIn(session, "AquaComboBox");
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_EQ(hits[0], 0u);
    EXPECT_TRUE(episodesSampledIn(session, "NoSuchClass").empty());
    // Substring of the base frame hits both episodes.
    EXPECT_EQ(episodesSampledIn(session, "java.lang.Thread").size(),
              2u);
}

TEST(BlameTest, PatternsMentioning)
{
    test::TraceBuilder builder;
    builder.listenerEpisode(0, msToNs(10), "app.Alpha");
    builder.listenerEpisode(msToNs(20), msToNs(30), "app.Beta");
    const Session session = builder.buildSession(secToNs(1));
    const PatternSet set = PatternMiner(msToNs(100)).mine(session);
    EXPECT_EQ(patternsMentioning(set, "Alpha").size(), 1u);
    EXPECT_EQ(patternsMentioning(set, "app.").size(), 2u);
    EXPECT_TRUE(patternsMentioning(set, "Gamma").empty());
}

} // namespace
} // namespace lag::core
