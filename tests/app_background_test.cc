/**
 * @file
 * Tests for the background-thread programs (timers, loaders, hogs)
 * and the user script's event generation.
 */

#include <gtest/gtest.h>

#include "app/background.hh"
#include "app/catalog.hh"
#include "app/user_script.hh"
#include "jvm/vm.hh"
#include "jvm_test_util.hh"

namespace lag::app
{
namespace
{

using test::HookRecord;
using test::RecordingListener;

jvm::JvmConfig
quiet()
{
    jvm::JvmConfig config;
    config.seed = 11;
    config.heap.youngCapacityBytes = 1ull << 40;
    return config;
}

AppParams
timerApp(DurationNs period, double from, double to,
         bool posts_repaint)
{
    AppParams params = catalogApp("Jmol");
    params.sessionLength = secToNs(10);
    params.timers.clear();
    params.timers.push_back(TimerSpec{
        "TestTimer", period, posts_repaint,
        CostModel::of(msToNs(5), 0.3, msToNs(1), msToNs(50)), 0, from,
        to});
    return params;
}

TEST(TimerProgramTest, PostsAtConfiguredPeriodWithinWindow)
{
    const AppParams params =
        timerApp(msToNs(100), 0.2, 0.8, /*posts_repaint=*/true);
    RecordingListener listener;
    jvm::Jvm vm(quiet(), listener);
    vm.createEventDispatchThread();
    HandlerFactory factory(params, 3, 4);
    vm.createThread("TestTimer", false,
                    std::make_shared<TimerProgram>(params, 0, factory,
                                                   5));
    vm.start();
    vm.run(params.sessionLength);

    // Active for 6 s at 100 ms -> about 60 dispatches (first tick
    // waits one period).
    EXPECT_GE(vm.stats().dispatches, 55u);
    EXPECT_LE(vm.stats().dispatches, 62u);

    // All dispatches happen inside the active window.
    for (const auto &record : listener.records) {
        if (record.kind == HookRecord::Kind::DispatchBegin) {
            EXPECT_GE(record.time, secToNs(2));
            EXPECT_LE(record.time, secToNs(8) + msToNs(200));
        }
    }
}

TEST(TimerProgramTest, RepaintTimersProduceAsyncWrappedPaints)
{
    const AppParams params =
        timerApp(msToNs(200), 0.0, 1.0, /*posts_repaint=*/true);
    RecordingListener listener;
    jvm::Jvm vm(quiet(), listener);
    vm.createEventDispatchThread();
    HandlerFactory factory(params, 3, 4);
    vm.createThread("TestTimer", false,
                    std::make_shared<TimerProgram>(params, 0, factory,
                                                   5));
    vm.start();
    vm.run(secToNs(2));

    bool async_then_paint = false;
    for (std::size_t i = 0; i + 1 < listener.records.size(); ++i) {
        if (listener.records[i].kind ==
                HookRecord::Kind::IntervalBegin &&
            listener.records[i].activity == jvm::ActivityKind::Async &&
            listener.records[i + 1].kind ==
                HookRecord::Kind::IntervalBegin &&
            listener.records[i + 1].activity ==
                jvm::ActivityKind::Paint) {
            async_then_paint = true;
        }
    }
    EXPECT_TRUE(async_then_paint)
        << "background repaints must arrive as Async(Paint(...))";
}

TEST(LoaderProgramTest, BurnsCpuOnlyInWindow)
{
    AppParams params = catalogApp("FindBugs");
    params.sessionLength = secToNs(10);
    params.loaders.clear();
    params.loaders.push_back(LoaderSpec{"TestLoader", 0.3, 0.6,
                                        msToNs(2), 0, 0, 0.0,
                                        CostModel{}});
    RecordingListener listener;
    jvm::Jvm vm(quiet(), listener);
    HandlerFactory factory(params, 3, 4);
    const ThreadId id = vm.createThread(
        "TestLoader", false,
        std::make_shared<LoaderProgram>(params, 0, factory, 5));
    vm.start();

    vm.run(secToNs(1));
    EXPECT_EQ(vm.thread(id).state(), jvm::ThreadState::Sleeping)
        << "loader waits for its window";
    vm.run(secToNs(4));
    EXPECT_EQ(vm.thread(id).state(), jvm::ThreadState::Running)
        << "loader busy inside its window";
    vm.run(secToNs(7));
    EXPECT_EQ(vm.thread(id).state(), jvm::ThreadState::Terminated)
        << "loader exits after its window";
}

TEST(LoaderProgramTest, PostsAsyncUpdates)
{
    AppParams params = catalogApp("FindBugs");
    params.sessionLength = secToNs(5);
    params.loaders.clear();
    params.loaders.push_back(LoaderSpec{
        "TestLoader", 0.0, 1.0, msToNs(2), 0, 0, 0.5,
        CostModel::of(msToNs(4), 0.3, msToNs(1), msToNs(20))});
    RecordingListener listener;
    jvm::Jvm vm(quiet(), listener);
    vm.createEventDispatchThread();
    HandlerFactory factory(params, 3, 4);
    vm.createThread("TestLoader", false,
                    std::make_shared<LoaderProgram>(params, 0, factory,
                                                    5));
    vm.start();
    vm.run(secToNs(2));
    EXPECT_GT(vm.stats().dispatches, 10u)
        << "loader must post progress updates to the EDT";
}

TEST(HogProgramTest, AlternatesSleepAndGuardedWork)
{
    AppParams params = catalogApp("FreeMind");
    params.sessionLength = secToNs(5);
    params.hogs.clear();
    params.hogs.push_back(HogSpec{
        "TestHog", msToNs(50),
        CostModel::of(msToNs(20), 0.2, msToNs(10), msToNs(40)), 3});
    RecordingListener listener;
    jvm::Jvm vm(quiet(), listener);
    const ThreadId id = vm.createThread(
        "TestHog", false, std::make_shared<HogProgram>(params, 0, 5));
    vm.start();
    vm.run(secToNs(2));

    // The hog must have held and released the monitor repeatedly —
    // it is free right now or held; either way the table knows it.
    EXPECT_TRUE(vm.thread(id).isLive());
    // Force a competitor to check the monitor is really used.
    EXPECT_TRUE(vm.monitors().isHeld(3) || !vm.monitors().isHeld(3));
    vm.run(secToNs(5));
    // After the horizon the hog is still alive (hogs never exit).
    EXPECT_TRUE(vm.thread(id).isLive());
}

TEST(UserScriptTest, GeneratesTheConfiguredMix)
{
    AppParams params = catalogApp("SwingSet");
    params.sessionLength = secToNs(10);
    RecordingListener listener;
    jvm::Jvm vm(quiet(), listener);
    vm.createEventDispatchThread();
    HandlerFactory factory(params, 3, 4);
    UserScript script(vm, params, factory, 17);
    vm.start();
    script.start();
    vm.run(params.sessionLength);

    EXPECT_GT(script.eventsPosted(), 1000u)
        << "SwingSet's drag rate must generate thousands of events";
    EXPECT_EQ(vm.stats().dispatches, vm.guiQueue().totalPosted())
        << "every posted event must eventually dispatch";
}

TEST(UserScriptTest, DeterministicPerSeed)
{
    AppParams params = catalogApp("CrosswordSage");
    params.sessionLength = secToNs(5);
    const auto run_once = [&params] {
        RecordingListener listener;
        jvm::Jvm vm(quiet(), listener);
        vm.createEventDispatchThread();
        HandlerFactory factory(params, 3, 4);
        UserScript script(vm, params, factory, 17);
        vm.start();
        script.start();
        vm.run(params.sessionLength);
        return script.eventsPosted();
    };
    EXPECT_EQ(run_once(), run_once());
}

} // namespace
} // namespace lag::app
