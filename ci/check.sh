#!/usr/bin/env bash
# CI gate: configure with every static gate on, build, run the lint
# label, the full tier-1 suite, the perf and obs labels, an
# incremental smoke (a study run twice: the second, warm-cache pass
# must aggregate purely from .ares entries with zero trace-decode
# bytes), then an obs smoke run that records a session, analyzes it
# with --self-trace / --metrics-out, and strict-validates both files
# with trace_check. The bench smokes are collected into a
# schema-checked bench/BENCH_smoke.json artifact; the serve smoke
# additionally scrapes /metricsz?format=prom through
# `trace_check --prom`, correlates a query's X-Lag-Trace-Id with
# /debugz/requests, and a crash-dump smoke SIGABRTs a second lagd to
# prove the fatal-signal path leaves a valid .flightrec naming the
# smoke query's trace id.
# Optionally sweep the sanitizer
# matrix: `ci/check.sh --sanitize TSAN` (or ASAN / UBSAN) builds an
# instrumented tree in build-<san> and runs the engine label under
# it. Exits nonzero on the first failure.
#
# Usage:
#   ci/check.sh                  # static analysis + lint + tier-1
#   ci/check.sh --sanitize ASAN  # add one sanitizer leg
#   ci/check.sh --jobs 8         # override parallelism
set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 2)"
sanitize=""

while [ $# -gt 0 ]; do
    case "$1" in
      --sanitize) sanitize="$2"; shift 2 ;;
      --jobs) jobs="$2"; shift 2 ;;
      *) echo "ci/check.sh: unknown argument '$1'" >&2; exit 2 ;;
    esac
done

build="$root/build-ci"
echo "== configure (LAG_STATIC_ANALYSIS=ON LAG_WERROR=ON)"
cmake -S "$root" -B "$build" \
    -DLAG_STATIC_ANALYSIS=ON -DLAG_WERROR=ON >/dev/null

echo "== build"
cmake --build "$build" -j "$jobs"

echo "== lint (ctest -L lint)"
(cd "$build" && ctest -L lint --output-on-failure)

echo "== lag_check (layering + lock discipline)"
"$build/tools/lag_check" --root "$root" --summary \
    --json "$build/lag_check_report.json" src tools

echo "== clang-tidy (new findings vs ci/clang_tidy_baseline)"
"$root/tools/run_clang_tidy.sh" "$build"

echo "== tier-1 suite"
(cd "$build" && ctest --output-on-failure -j "$jobs")

echo "== perf smoke (ctest -L perf)"
(cd "$build" && ctest -L perf --output-on-failure)

echo "== micro smoke (node-vs-flat hot-path equivalence + rates)"
bench_art="$build/bench/BENCH_smoke.json"
mkdir -p "$build/bench"
(cd "$build" && bench/bench_micro --smoke) | tee "$bench_art.micro"

echo "== pipeline smoke (stage throughput JSON lines)"
(cd "$build" && bench/bench_perf_pipeline --smoke --jobs 4) \
    | tee "$bench_art.pipeline"

echo "== bench artifact (BENCH_smoke.json, schema-checked)"
grep -h '^{' "$bench_art.micro" "$bench_art.pipeline" > "$bench_art"
rm -f "$bench_art.micro" "$bench_art.pipeline"
"$build/tools/trace_check" --jsonl "$bench_art"

echo "== incremental smoke (warm cache must not touch the decoder)"
(cd "$build" && bench/bench_perf_pipeline --incremental-smoke --jobs 4)

echo "== serve suite (ctest -L serve)"
(cd "$build" && ctest -L serve --output-on-failure)

echo "== serve smoke (lagd up, query, refresh, drain)"
serve_dir="$build/serve-smoke"
rm -rf "$serve_dir"
mkdir -p "$serve_dir"
"$build/src/serve/lagd" --quick 2 --port 0 --jobs 4 \
    --cache-dir "$serve_dir/cache" \
    --port-file "$serve_dir/port" >"$serve_dir/lagd.out" 2>&1 &
lagd_pid=$!
for _ in $(seq 1 100); do
    [ -s "$serve_dir/port" ] && break
    kill -0 "$lagd_pid" 2>/dev/null || {
        echo "lagd died during startup" >&2
        cat "$serve_dir/lagd.out" >&2
        exit 1
    }
    sleep 0.2
done
[ -s "$serve_dir/port" ] || {
    echo "lagd never wrote its port file" >&2
    exit 1
}
port="$(cat "$serve_dir/port")"
lq="$build/tools/lag_query"
"$lq" --port "$port" /healthz >/dev/null
"$lq" --port "$port" "/v1/apps" > "$serve_dir/apps.json"
"$lq" --port "$port" --print-trace-id \
    "/v1/patterns?app=GanttProject&sort=total_lag&limit=5" \
    > "$serve_dir/patterns.json" 2> "$serve_dir/patterns.trace"
"$lq" --port "$port" "/v1/figures/table3" > "$serve_dir/table3.json"
"$lq" --port "$port" --post /v1/refresh > "$serve_dir/refresh.json"
for f in apps patterns table3 refresh; do
    "$build/tools/trace_check" "$serve_dir/$f.json"
done

echo "== prometheus scrape (/metricsz?format=prom through trace_check)"
"$lq" --port "$port" "/metricsz?format=prom" \
    | "$build/tools/trace_check" --prom -

echo "== request tracing (/debugz/requests shows the smoke queries)"
trace_id="$(sed -n 's/^trace-id: //p' "$serve_dir/patterns.trace")"
[ -n "$trace_id" ] && [ "$trace_id" != "none" ] || {
    echo "lag_query --print-trace-id produced no trace id" >&2
    cat "$serve_dir/patterns.trace" >&2
    exit 1
}
# The summary is recorded just after the response goes out, so
# allow a few retries before calling it missing.
debug_ok=0
for _ in $(seq 1 50); do
    "$lq" --port "$port" /debugz/requests \
        > "$serve_dir/requests.json" 2>/dev/null || true
    if grep -q "$trace_id" "$serve_dir/requests.json" &&
        grep -q "/v1/patterns" "$serve_dir/requests.json"; then
        debug_ok=1
        break
    fi
    sleep 0.1
done
[ "$debug_ok" = 1 ] || {
    echo "/debugz/requests never showed trace $trace_id" >&2
    cat "$serve_dir/requests.json" >&2
    exit 1
}
"$build/tools/trace_check" "$serve_dir/requests.json"
"$lq" --port "$port" "/debugz/requests?trace=$trace_id" \
    > "$serve_dir/request_tree.json"
grep -q '"spans"' "$serve_dir/request_tree.json" || {
    echo "/debugz/requests?trace= missing the span tree" >&2
    exit 1
}
"$lq" --port "$port" /debugz/flightrecorder \
    > "$serve_dir/flightrec.json"
"$build/tools/trace_check" --flightrec "$serve_dir/flightrec.json"
# Unknown app must fail the query tool (exit 1 on a non-2xx).
if "$lq" --port "$port" "/v1/patterns?app=no-such-app" \
    >/dev/null 2>&1; then
    echo "lag_query should have failed on a 404" >&2
    exit 1
fi
kill -TERM "$lagd_pid"
wait "$lagd_pid" || {
    echo "lagd did not exit cleanly on SIGTERM" >&2
    cat "$serve_dir/lagd.out" >&2
    exit 1
}
grep -q "shut down cleanly" "$serve_dir/lagd.out" || {
    echo "lagd missing clean-shutdown line" >&2
    cat "$serve_dir/lagd.out" >&2
    exit 1
}

echo "== crash-dump smoke (SIGABRT must leave a valid .flightrec)"
crash_dir="$build/crash-smoke"
rm -rf "$crash_dir"
mkdir -p "$crash_dir"
# Reuse the warm cache from the serve smoke so startup is instant.
"$build/src/serve/lagd" --quick 2 --port 0 --jobs 4 \
    --cache-dir "$serve_dir/cache" \
    --flightrec-path "$crash_dir/crash.flightrec" \
    --port-file "$crash_dir/port" >"$crash_dir/lagd.out" 2>&1 &
crash_pid=$!
for _ in $(seq 1 100); do
    [ -s "$crash_dir/port" ] && break
    kill -0 "$crash_pid" 2>/dev/null || {
        echo "lagd died during crash-smoke startup" >&2
        cat "$crash_dir/lagd.out" >&2
        exit 1
    }
    sleep 0.2
done
crash_port="$(cat "$crash_dir/port")"
"$lq" --port "$crash_port" --print-trace-id "/v1/apps" \
    > /dev/null 2> "$crash_dir/apps.trace"
crash_trace="$(sed -n 's/^trace-id: //p' "$crash_dir/apps.trace")"
# Let the request summary land in the ring before the abort.
crash_seen=0
for _ in $(seq 1 50); do
    if "$lq" --port "$crash_port" /debugz/requests 2>/dev/null \
        | grep -q "$crash_trace"; then
        crash_seen=1
        break
    fi
    sleep 0.1
done
[ "$crash_seen" = 1 ] || {
    echo "crash-smoke query never appeared in /debugz/requests" >&2
    exit 1
}
kill -ABRT "$crash_pid"
rc=0
wait "$crash_pid" || rc=$?
[ "$rc" = 134 ] || {
    echo "lagd should have died on SIGABRT (got rc=$rc)" >&2
    exit 1
}
[ -s "$crash_dir/crash.flightrec" ] || {
    echo "SIGABRT left no flight-recorder dump" >&2
    cat "$crash_dir/lagd.out" >&2
    exit 1
}
"$build/tools/trace_check" --flightrec "$crash_dir/crash.flightrec"
grep -q "$crash_trace" "$crash_dir/crash.flightrec" || {
    echo "crash dump missing the smoke query's trace id" >&2
    exit 1
}

echo "== ingest smoke (lagd --follow vs the batch answer)"
ingest_dir="$build/ingest-smoke"
rm -rf "$ingest_dir"
mkdir -p "$ingest_dir/watch"
"$build/examples/record_session" GanttProject 10 0 \
    "$ingest_dir/source.lag" >/dev/null
rm -rf "$ingest_dir/source.lag.cache"
replay="$build/tools/lag_replay"
# The batch reference: the exact /v1/patterns body lagd must serve
# once the streamed copy of this trace completes.
"$replay" "$ingest_dir/source.lag" --batch-json \
    > "$ingest_dir/batch.json"
"$build/src/serve/lagd" --quick 2 --port 0 --jobs 4 \
    --follow "$ingest_dir/watch" --epoch-ms 50 \
    --cache-dir "$ingest_dir/cache" \
    --port-file "$ingest_dir/port" >"$ingest_dir/lagd.out" 2>&1 &
ingest_pid=$!
for _ in $(seq 1 100); do
    [ -s "$ingest_dir/port" ] && break
    kill -0 "$ingest_pid" 2>/dev/null || {
        echo "lagd --follow died during startup" >&2
        cat "$ingest_dir/lagd.out" >&2
        exit 1
    }
    sleep 0.2
done
ingest_port="$(cat "$ingest_dir/port")"
# Replay the trace into the watched directory, paced so the write
# overlaps several epochs (mid-record flushes via the prime chunk).
"$replay" "$ingest_dir/source.lag" \
    "$ingest_dir/watch/session.lag" --rps 20000 \
    > "$ingest_dir/replay.out" &
replay_pid=$!
ingest_ok=0
for _ in $(seq 1 200); do
    "$lq" --port "$ingest_port" /v1/ingest \
        > "$ingest_dir/ingest.json" 2>/dev/null || true
    if grep -q '"all_complete":true' "$ingest_dir/ingest.json"; then
        ingest_ok=1
        break
    fi
    sleep 0.1
done
wait "$replay_pid" || {
    echo "lag_replay failed" >&2
    cat "$ingest_dir/replay.out" >&2
    exit 1
}
[ "$ingest_ok" = 1 ] || {
    echo "/v1/ingest never reported all_complete" >&2
    cat "$ingest_dir/ingest.json" >&2
    cat "$ingest_dir/lagd.out" >&2
    exit 1
}
"$build/tools/trace_check" "$ingest_dir/ingest.json"
"$lq" --port "$ingest_port" "/v1/patterns?app=GanttProject" \
    > "$ingest_dir/live.json"
# Byte-for-byte the batch answer (both tools newline-terminate):
# the live-ingest correctness contract, end to end over HTTP.
cmp "$ingest_dir/batch.json" "$ingest_dir/live.json" || {
    echo "live /v1/patterns diverges from the batch answer" >&2
    exit 1
}
kill -TERM "$ingest_pid"
wait "$ingest_pid" || {
    echo "lagd --follow did not exit cleanly on SIGTERM" >&2
    cat "$ingest_dir/lagd.out" >&2
    exit 1
}

echo "== obs suite (ctest -L obs)"
(cd "$build" && ctest -L obs --output-on-failure)

echo "== obs smoke (--self-trace / --metrics-out validate)"
smoke="$build/obs-smoke"
mkdir -p "$smoke"
"$build/examples/record_session" GanttProject 30 0 \
    "$smoke/session.lag" >/dev/null
rm -rf "$smoke/session.lag.cache"
"$build/examples/analyze_trace" "$smoke/session.lag" --jobs 4 \
    --self-trace "$smoke/self.json" \
    --metrics-out "$smoke/metrics.json" >/dev/null
"$build/tools/trace_check" --chrome "$smoke/self.json"
"$build/tools/trace_check" "$smoke/metrics.json"

if [ -n "$sanitize" ]; then
    san_lc="$(echo "$sanitize" | tr '[:upper:]' '[:lower:]')"
    san_build="$root/build-$san_lc"
    echo "== sanitizer leg: $sanitize"
    cmake -S "$root" -B "$san_build" \
        -DLAG_SANITIZE="$sanitize" -DLAG_WERROR=ON >/dev/null
    cmake --build "$san_build" -j "$jobs"
    (cd "$san_build" && ctest -L engine --output-on-failure -j "$jobs")
fi

echo "== ci/check.sh: all gates passed"
