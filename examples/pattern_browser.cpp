/**
 * @file
 * The Pattern Browser (paper §II.E) as a terminal application.
 *
 * "LagAlyzer presents the user with a table of patterns [...]. By
 * selecting a pattern in the table, the developer can reveal a list
 * of all the episodes in that pattern as well as an episode sketch
 * of the first episode."
 *
 * Usage:
 *   ./pattern_browser <trace.lag>            interactive browsing
 *   ./pattern_browser <trace.lag> --demo     scripted walkthrough
 *
 * Interactive commands:
 *   <n>    select pattern row n        f  toggle perceptible filter
 *   j / k  next / previous episode     s  dump episode sketch (SVG)
 *   q      quit
 */

#include <cstring>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>

#include "core/browser.hh"
#include "core/pattern.hh"
#include "core/session.hh"
#include "report/table.hh"
#include "trace/io.hh"
#include "util/strings.hh"
#include "viz/sketch.hh"

namespace
{

using namespace lag;

void
printPatternTable(const core::PatternBrowserModel &browser)
{
    report::TextTable table;
    table.addColumn("row", report::Align::Right);
    table.addColumn("episodes", report::Align::Right);
    table.addColumn("perc", report::Align::Right);
    table.addColumn("min", report::Align::Right);
    table.addColumn("avg", report::Align::Right);
    table.addColumn("max", report::Align::Right);
    table.addColumn("total", report::Align::Right);
    table.addColumn("class", report::Align::Left);
    table.addColumn("signature", report::Align::Left);

    const auto &set = browser.patterns();
    const std::size_t show =
        std::min<std::size_t>(20, browser.visibleRows().size());
    for (std::size_t row = 0; row < show; ++row) {
        const core::Pattern &p =
            set.patterns[browser.visibleRows()[row]];
        std::string sig = p.signature.substr(0, 40);
        if (p.signature.size() > 40)
            sig += "...";
        table.addRow({std::to_string(row),
                      std::to_string(p.episodes.size()),
                      std::to_string(p.perceptibleCount),
                      formatDurationNs(p.minLag),
                      formatDurationNs(p.avgLag()),
                      formatDurationNs(p.maxLag),
                      formatDurationNs(p.totalLag),
                      core::occurrenceClassName(p.occurrence), sig});
    }
    std::cout << '\n'
              << (browser.perceptibleOnly()
                      ? "[filter: perceptible patterns only]\n"
                      : "")
              << table.render();
    if (browser.visibleRows().size() > show) {
        std::cout << "... and " << browser.visibleRows().size() - show
                  << " more rows\n";
    }
}

void
printSelection(const core::PatternBrowserModel &browser)
{
    if (!browser.hasSelection()) {
        std::cout << "(no pattern selected)\n";
        return;
    }
    const core::Pattern &pattern = browser.selectedPattern();
    const core::Session &session = browser.session();
    std::cout << "\nPattern " << pattern.signature << "\n  "
              << pattern.episodes.size() << " episodes, "
              << pattern.perceptibleCount << " perceptible ("
              << core::occurrenceClassName(pattern.occurrence)
              << ")\n  episodes at:";
    const std::size_t list =
        std::min<std::size_t>(8, pattern.episodes.size());
    for (std::size_t i = 0; i < list; ++i) {
        const auto &episode =
            session.episodes()[pattern.episodes[i]];
        std::cout << ' ' << formatDouble(nsToSec(episode.begin), 1)
                  << "s/"
                  << formatDurationNs(episode.duration());
    }
    if (pattern.episodes.size() > list)
        std::cout << " ...";
    std::cout << "\n\nEpisode " << browser.currentEpisodeIndex() + 1
              << '/' << pattern.episodes.size() << ":\n"
              << viz::renderAsciiSketch(session,
                                        browser.currentEpisode(), 100);
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::cerr << "usage: pattern_browser <trace.lag> [--demo]\n";
        return 2;
    }
    const bool demo =
        argc > 2 && std::strcmp(argv[2], "--demo") == 0;

    std::optional<core::Session> loaded;
    try {
        loaded =
            core::Session::fromTrace(trace::readTraceFile(argv[1]));
    } catch (const trace::TraceError &err) {
        std::cerr << "cannot open '" << argv[1] << "': " << err.what()
                  << '\n';
        return 1;
    }
    const core::Session &session = *loaded;
    const core::PatternSet set =
        core::PatternMiner(msToNs(100)).mine(session);
    core::PatternBrowserModel browser(session, set);

    std::cout << "LagAlyzer pattern browser — "
              << session.meta().appName << ", "
              << session.episodes().size() << " episodes, "
              << set.patterns.size() << " patterns\n";
    printPatternTable(browser);

    if (demo) {
        // Scripted walkthrough: filter, select, browse, sketch.
        std::cout << "\n--- demo: toggling perceptible filter ---\n";
        browser.setPerceptibleOnly(true);
        printPatternTable(browser);
        if (!browser.visibleRows().empty()) {
            std::cout << "\n--- demo: selecting row 0 ---\n";
            browser.selectRow(0);
            printSelection(browser);
            std::cout << "\n--- demo: next episode ---\n";
            browser.nextEpisode();
            printSelection(browser);
        }
        return 0;
    }

    std::string line;
    while (std::cout << "\nbrowser> " && std::getline(std::cin, line)) {
        if (line.empty())
            continue;
        if (line == "q")
            break;
        if (line == "f") {
            browser.setPerceptibleOnly(!browser.perceptibleOnly());
            printPatternTable(browser);
        } else if (line == "j" && browser.hasSelection()) {
            browser.nextEpisode();
            printSelection(browser);
        } else if (line == "k" && browser.hasSelection()) {
            browser.prevEpisode();
            printSelection(browser);
        } else if (line == "s" && browser.hasSelection()) {
            const std::string path = "browser_sketch.svg";
            viz::renderEpisodeSketch(session,
                                     browser.currentEpisode())
                .writeFile(path);
            std::cout << "sketch written to " << path << '\n';
        } else {
            std::istringstream parse(line);
            std::size_t row = 0;
            if (parse >> row && row < browser.visibleRows().size()) {
                browser.selectRow(row);
                printSelection(browser);
            } else {
                std::cout << "commands: <row> | f | j | k | s | q\n";
            }
        }
    }
    return 0;
}
