/**
 * @file
 * Quickstart: the 60-second tour of the LagAlyzer API.
 *
 * 1. Simulate a short interactive session of one application under
 *    the LiLa tracing agent (the "measurement side").
 * 2. Load the trace into a core::Session (the "analysis side").
 * 3. Mine episode patterns and print the Pattern Browser table.
 * 4. Render the slowest episode as an ASCII episode sketch and as
 *    an SVG file.
 *
 * Run:  ./quickstart [app-name] [seconds]
 */

#include <cstdlib>
#include <iostream>

#include "app/catalog.hh"
#include "app/session_runner.hh"
#include "core/overview.hh"
#include "core/pattern.hh"
#include "core/session.hh"
#include "report/table.hh"
#include "util/strings.hh"
#include "viz/sketch.hh"

int
main(int argc, char **argv)
{
    using namespace lag;

    const std::string app_name = argc > 1 ? argv[1] : "GanttProject";
    const int seconds = argc > 2 ? std::atoi(argv[2]) : 45;

    // --- Measurement side -------------------------------------------
    app::AppParams params = app::catalogApp(app_name);
    params.sessionLength = secToNs(seconds);
    std::cout << "Simulating a " << seconds << " s session of "
              << params.name << " (" << params.description << ") ...\n";
    app::SessionRunResult run = app::runSession(params, /*session=*/0);
    std::cout << "  user events posted: " << run.userEvents
              << ", episodes dispatched: " << run.vmStats.dispatches
              << ", GCs: " << run.vmStats.minorGcs << " minor / "
              << run.vmStats.majorGcs << " major\n\n";

    // --- Analysis side ----------------------------------------------
    core::Session session =
        core::Session::fromTrace(std::move(run.trace));
    core::PatternMiner miner(msToNs(100));
    core::PatternSet patterns = miner.mine(session);

    std::cout << "Traced episodes (>= 3 ms): "
              << session.episodes().size() << ", filtered short ones: "
              << session.meta().filteredShortEpisodes
              << ", perceptible (>= 100 ms): "
              << session.perceptibleCount(msToNs(100)) << "\n\n";

    // Pattern Browser table (paper SII.E), top patterns only.
    report::TextTable table;
    table.addColumn("#", report::Align::Right);
    table.addColumn("episodes", report::Align::Right);
    table.addColumn("perceptible", report::Align::Right);
    table.addColumn("min", report::Align::Right);
    table.addColumn("avg", report::Align::Right);
    table.addColumn("max", report::Align::Right);
    table.addColumn("total", report::Align::Right);
    table.addColumn("class", report::Align::Left);
    table.addColumn("signature (truncated)", report::Align::Left);
    const std::size_t show =
        std::min<std::size_t>(10, patterns.patterns.size());
    for (std::size_t i = 0; i < show; ++i) {
        const core::Pattern &p = patterns.patterns[i];
        std::string sig = p.signature.substr(0, 44);
        if (p.signature.size() > 44)
            sig += "...";
        table.addRow({std::to_string(i + 1),
                      std::to_string(p.episodes.size()),
                      std::to_string(p.perceptibleCount),
                      formatDurationNs(p.minLag),
                      formatDurationNs(p.avgLag()),
                      formatDurationNs(p.maxLag),
                      formatDurationNs(p.totalLag),
                      core::occurrenceClassName(p.occurrence), sig});
    }
    std::cout << "Top patterns (" << patterns.patterns.size()
              << " total, " << patterns.coveredEpisodes
              << " episodes covered):\n"
              << table.render() << '\n';

    // --- Episode sketch ---------------------------------------------
    const core::Episode *slowest = nullptr;
    for (const auto &episode : session.episodes()) {
        if (slowest == nullptr ||
            episode.duration() > slowest->duration()) {
            slowest = &episode;
        }
    }
    if (slowest != nullptr) {
        std::cout << "Slowest episode as an ASCII sketch:\n"
                  << viz::renderAsciiSketch(session, *slowest, 100)
                  << '\n';
        viz::SvgDocument svg =
            viz::renderEpisodeSketch(session, *slowest);
        svg.writeFile("quickstart_sketch.svg");
        std::cout << "SVG sketch written to quickstart_sketch.svg\n";
    }
    return 0;
}
