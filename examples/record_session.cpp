/**
 * @file
 * The "profiler side": run one of the Table II application models
 * under the LiLa tracing agent and write the session trace to disk.
 * This is what the paper's authors did by sitting in front of each
 * application with LiLa attached.
 *
 * Usage: ./record_session [app] [seconds] [session-index] [out.lag]
 *
 * The resulting file can be inspected with analyze_trace and
 * pattern_browser.
 */

#include <cstdlib>
#include <iostream>

#include "app/catalog.hh"
#include "app/session_runner.hh"
#include "trace/io.hh"
#include "util/strings.hh"

int
main(int argc, char **argv)
{
    using namespace lag;

    const std::string app_name = argc > 1 ? argv[1] : "JEdit";
    const int seconds = argc > 2 ? std::atoi(argv[2]) : 60;
    const auto session_index = static_cast<std::uint32_t>(
        argc > 3 ? std::atoi(argv[3]) : 0);
    const std::string out_path =
        argc > 4 ? argv[4]
                 : app_name + "_s" + std::to_string(session_index) +
                       ".lag";

    app::AppParams params = app::catalogApp(app_name);
    params.sessionLength = secToNs(seconds);

    std::cout << "Recording a " << seconds << " s session of "
              << params.name << " (session " << session_index
              << ", seed " << app::sessionSeed(params, session_index)
              << ") ...\n";
    app::SessionRunResult result =
        app::runSession(params, session_index);

    std::cout << "  episodes dispatched: " << result.vmStats.dispatches
              << " (filtered short: "
              << formatCount(result.trace.meta.filteredShortEpisodes)
              << ")\n"
              << "  GCs: " << result.vmStats.minorGcs << " minor / "
              << result.vmStats.majorGcs << " major\n"
              << "  samples: " << result.trace.samples.size() << "\n"
              << "  in-episode time: "
              << formatDurationNs(result.trace.meta.totalInEpisodeTime)
              << " of " << seconds << " s\n";

    trace::writeTraceFile(result.trace, out_path);
    std::cout << "Trace written to " << out_path << " ("
              << formatCount(trace::serializeTrace(result.trace).size())
              << " bytes)\n";
    std::cout << "Analyze it with: ./analyze_trace " << out_path
              << '\n';
    return 0;
}
