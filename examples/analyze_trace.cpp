/**
 * @file
 * The "LagAlyzer side": load a .lag trace file and run the complete
 * analysis suite — overview statistics (Table III row), pattern
 * mining, triggers, location, concurrency and GUI-thread states —
 * then render the slowest perceptible episode as an SVG sketch.
 *
 * Usage: ./analyze_trace <trace.lag> [--threshold-ms N] [--jobs N]
 *                        [--self-trace OUT.json] [--metrics-out OUT]
 *
 * With --jobs > 1 the per-episode analyses shard the episode axis
 * across an engine::ThreadPool; the output is byte-identical to the
 * serial run (see src/engine/parallel_analysis.hh).
 *
 * Results are cached in <trace.lag>.cache keyed by the trace
 * identity and threshold: a re-run of the same analysis renders
 * from the cache instead of re-mining. The tables always render
 * from a cache round-trip, so what you see is exactly what a cached
 * re-run would show.
 *
 * --self-trace writes a Chrome trace-event JSON of the run's own
 * spans (open in ui.perfetto.dev); --metrics-out dumps the engine
 * counters. See src/obs/.
 *
 * (Produce a trace with ./record_session first.)
 */

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <optional>
#include <sstream>

#include "app/params.hh"
#include "core/blame.hh"
#include "core/browser.hh"
#include "core/session.hh"
#include "engine/parallel_analysis.hh"
#include "engine/pool.hh"
#include "engine/result_cache.hh"
#include "obs/scope.hh"
#include "report/table.hh"
#include "trace/io.hh"
#include "util/strings.hh"
#include "viz/sketch.hh"

namespace
{

/** Cache key: everything that determines the analysis result. */
std::string
analysisFingerprint(const lag::trace::TraceMeta &meta,
                    lag::DurationNs threshold)
{
    std::ostringstream out;
    out << meta.appName << ';' << meta.sessionIndex << ';'
        << meta.seed << ';' << meta.startTime << ';' << meta.endTime
        << ';' << threshold;
    return out.str();
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace lag;

    const obs::ObsOptions obs_options =
        app::parseObsOptions(argc, argv);
    obs::install(obs_options);
    const std::uint32_t jobs = app::parseJobsOption(argc, argv);
    if (argc < 2) {
        std::cerr << "usage: analyze_trace <trace.lag> "
                     "[--threshold-ms N] [--jobs N] "
                     "[--self-trace OUT.json] [--metrics-out OUT]\n";
        return 2;
    }
    const std::string path = argv[1];
    DurationNs threshold = msToNs(100);
    for (int i = 2; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--threshold-ms") == 0)
            threshold = msToNs(std::atoi(argv[i + 1]));
    }

    std::optional<core::Session> loaded;
    try {
        loaded = core::Session::fromTrace(trace::readTraceFile(path));
    } catch (const trace::TraceError &err) {
        std::cerr << "cannot analyze '" << path << "': " << err.what()
                  << '\n';
        return 1;
    }
    const core::Session &session = *loaded;

    std::cout << "=== " << session.meta().appName << ", session "
              << session.meta().sessionIndex << " ===\n\n";

    // Analysis goes through the on-disk result cache next to the
    // trace: a hit skips mining entirely, a miss computes, stores,
    // and reloads so every run renders a cache round-trip.
    const engine::ResultCache cache(
        path + ".cache", analysisFingerprint(session.meta(),
                                             threshold));
    const std::string &app_name = session.meta().appName;
    const std::uint32_t session_index = session.meta().sessionIndex;
    std::optional<engine::SessionAnalysis> analysis =
        cache.load(app_name, session_index);
    if (!analysis) {
        if (jobs > 1) {
            engine::ThreadPool pool(jobs);
            cache.store(app_name, session_index,
                        engine::analyzeSessionParallel(
                            session, threshold, pool));
        } else {
            cache.store(app_name, session_index,
                        engine::analyzeSession(session, threshold));
        }
        analysis = cache.load(app_name, session_index);
    }
    if (!analysis) {
        std::cerr << "analysis cache round-trip failed for '" << path
                  << "'\n";
        return 1;
    }
    const auto &overview = analysis->overview;
    const auto &triggers = analysis->triggers;
    const auto &location = analysis->location;
    const auto &concurrency = analysis->concurrency;
    const auto &states = analysis->states;

    report::TextTable ov;
    ov.addColumn("metric", report::Align::Left);
    ov.addColumn("value", report::Align::Right);
    ov.addRow({"end-to-end time",
               formatDouble(overview.e2eSeconds, 1) + " s"});
    ov.addRow({"in-episode time",
               formatDouble(overview.inEpsPercent, 1) + " %"});
    ov.addRow({"episodes < 3 ms (filtered)",
               formatCount(overview.shortCount)});
    ov.addRow({"episodes >= 3 ms (traced)",
               formatCount(overview.tracedCount)});
    ov.addRow({"episodes >= " + formatDurationNs(threshold),
               formatCount(overview.perceptibleCount)});
    ov.addRow({"perceptible per in-episode minute",
               formatDouble(overview.longPerMin, 1)});
    ov.addRow({"distinct patterns",
               formatCount(overview.distinctPatterns)});
    ov.addRow({"episodes covered by patterns",
               formatCount(overview.coveredEpisodes)});
    ov.addRow({"singleton patterns",
               formatDouble(overview.oneEpPercent, 0) + " %"});
    ov.addRow({"mean tree size (Descs)",
               formatDouble(overview.meanDescs, 1)});
    ov.addRow({"mean tree depth",
               formatDouble(overview.meanDepth, 1)});
    std::cout << "Overview (Table III row):\n" << ov.render() << '\n';

    report::TextTable an;
    an.addColumn("analysis", report::Align::Left);
    an.addColumn("all episodes", report::Align::Right);
    an.addColumn("perceptible", report::Align::Right);
    an.addRow({"trigger: input", formatPercent(triggers.all.input),
               formatPercent(triggers.perceptible.input)});
    an.addRow({"trigger: output", formatPercent(triggers.all.output),
               formatPercent(triggers.perceptible.output)});
    an.addRow({"trigger: async", formatPercent(triggers.all.async),
               formatPercent(triggers.perceptible.async)});
    an.addRow({"trigger: unspecified",
               formatPercent(triggers.all.unspecified),
               formatPercent(triggers.perceptible.unspecified)});
    an.addSeparator();
    an.addRow({"time in runtime library",
               formatPercent(location.all.libraryFraction),
               formatPercent(location.perceptible.libraryFraction)});
    an.addRow({"time in application",
               formatPercent(location.all.appFraction),
               formatPercent(location.perceptible.appFraction)});
    an.addRow({"time in GC", formatPercent(location.all.gcFraction),
               formatPercent(location.perceptible.gcFraction)});
    an.addRow({"time in native calls",
               formatPercent(location.all.nativeFraction),
               formatPercent(location.perceptible.nativeFraction)});
    an.addSeparator();
    an.addRow({"mean runnable threads",
               formatDouble(concurrency.meanRunnableAll, 2),
               formatDouble(concurrency.meanRunnablePerceptible, 2)});
    an.addRow({"GUI thread blocked",
               formatPercent(states.all.blocked),
               formatPercent(states.perceptible.blocked)});
    an.addRow({"GUI thread waiting",
               formatPercent(states.all.waiting),
               formatPercent(states.perceptible.waiting)});
    an.addRow({"GUI thread sleeping",
               formatPercent(states.all.sleeping),
               formatPercent(states.perceptible.sleeping)});
    std::cout << "Characterization (paper SIV):\n" << an.render()
              << '\n';

    // Blame report: which code the GUI thread was in during
    // perceptible episodes (the paper's manual drill-down, SIV).
    // Works on the session itself — sample-level detail is not part
    // of the cached analysis.
    core::BlameOptions blame_options;
    blame_options.perceptibleThreshold = threshold;
    blame_options.byMethod = true;
    blame_options.limit = 8;
    const auto blame = core::blameReport(session, blame_options);
    if (!blame.empty()) {
        report::TextTable bl;
        bl.addColumn("sampled in (perceptible episodes)",
                     report::Align::Left);
        bl.addColumn("samples", report::Align::Right);
        bl.addColumn("share", report::Align::Right);
        bl.addColumn("not-runnable", report::Align::Right);
        bl.addColumn("origin", report::Align::Left);
        for (const auto &entry : blame) {
            bl.addRow({entry.symbol, std::to_string(entry.samples),
                       formatPercent(entry.share),
                       std::to_string(entry.notRunnableSamples),
                       entry.isLibrary ? "library" : "application"});
        }
        std::cout << "Blame (innermost sampled frames):\n"
                  << bl.render() << '\n';
    }

    // Slowest perceptible episode as a sketch.
    const core::Episode *slowest = nullptr;
    for (const auto &episode : session.episodes()) {
        if (slowest == nullptr ||
            episode.duration() > slowest->duration()) {
            slowest = &episode;
        }
    }
    if (slowest != nullptr) {
        const std::string svg_path = path + ".sketch.svg";
        viz::renderEpisodeSketch(session, *slowest)
            .writeFile(svg_path);
        std::cout << "Slowest episode ("
                  << formatDurationNs(slowest->duration())
                  << ") sketched to " << svg_path << '\n';
    }
    return 0;
}
